#!/usr/bin/env python
"""The VLDB'06 demonstration, scripted (paper, Section 6 + Figure 5).

Four sensor networks on three GSN nodes: an RFID network and a MICA2 mote
network sharing node 1, a wireless camera network on node 2, a second
mote network on node 3. The script walks the same stations the conference
demo did:

1. query the pre-configured setup through the web interface;
2. an *active query* integrating several networks (average light and
   temperature over the last 10 minutes);
3. the RFID *notification* scenario: a tag passes the reader and the
   subscriber receives the camera picture plus current light and
   temperature from the other networks;
4. an audience-triggered event: covering a mote's light sensor fires a
   darkness alarm.

Run:  python examples/demo_deployment.py
"""

from repro.interfaces.web import WebInterface
from repro.simulation.networks import build_demo_deployment
from repro.wrappers.camera import CameraWrapper
from repro.wrappers.motes import MoteWrapper
from repro.wrappers.rfid import RFIDReaderWrapper


def main() -> None:
    # A scaled-down floor plan (the full paper testbed is 22 motes and
    # 15 cameras; pass motes=22, cameras=15 for the real thing).
    with build_demo_deployment(motes=6, cameras=3, rfid_readers=1) as demo:
        demo.run_for(15_000)  # let the networks warm up for 15 s

        # ---- station 1: browse the running system -------------------------
        web1 = WebInterface(demo.node1)
        overview = web1.overview()
        print(f"node 1 hosts: {overview['virtual_sensors']}")
        print(f"directory: {len(demo.network.directory)} published sensors")

        latest = web1.latest_reading("mote-1")
        print(f"mote-1 latest reading: {latest['latest']['values']}")

        # ---- station 2: an active query across a network ------------------
        # "query for the average light intensity and temperature in the
        # last 10 minutes" — over every mote on node 1.
        ten_minutes_ago = demo.node1.now() - 600_000
        mote_tables = " union all ".join(
            f"select light, temperature from vs_mote_{i} "
            f"where timed >= {ten_minutes_ago}"
            for i in range(1, 4)
        )
        result = demo.node1.query(
            f"select avg(light) as avg_light, "
            f"avg(temperature) as avg_temp from ({mote_tables}) all_motes"
        )
        print("\nactive query (10-minute average over mote network 1):")
        print(result.pretty())

        # ---- station 3: the RFID -> camera notification --------------------
        # "when the RFID reader recognizes an RFID tag, a picture ... would
        # be returned from the camera network together with the current
        # light intensity and temperature taken from the other networks".
        received = []

        def on_tag(element) -> None:
            camera = _wrapper(demo.node2, "camera-1", CameraWrapper)
            picture = camera.snapshot()
            light_temp = demo.node3.query(
                "select light, temperature from vs_mote_6 "
                "order by timed desc limit 1"
            ).first()
            received.append({
                "tag": element["tag_id"],
                "picture_bytes": len(picture["image"]),
                "context": light_temp,
            })

        demo.node1.sensor("rfid-1").add_listener(on_tag)

        reader = _wrapper(demo.node1, "rfid-1", RFIDReaderWrapper)
        reader.detect("tag-alice")          # Alice walks past the reader
        demo.run_for(1_000)

        print("\nRFID notification scenario:")
        for event in received:
            print(f"  tag={event['tag']} picture={event['picture_bytes']}B "
                  f"light/temp at mote network 2: {event['context']}")

        # ---- station 4: audience-triggered events ---------------------------
        # "hiding the light sensor on the motes" — a darkness alarm.
        alarm_sub = demo.node1.register_query(
            "select node_id, light from vs_mote_2 "
            "where light < 50 order by timed desc limit 1",
            channel="queue", client="audience", name="darkness-alarm",
        )
        mote = _wrapper(demo.node1, "mote-2", MoteWrapper)
        mote.cover_light_sensor()
        demo.run_for(3_000)
        mote.uncover_light_sensor()

        queue = demo.node1.notifications.channel("queue")
        alarms = [n for n in queue.drain()
                  if n["subscription"] == "darkness-alarm" and n["rows"]]
        print(f"\ndarkness alarm fired {len(alarms)} time(s); "
              f"sample: {alarms[-1]['rows'][0] if alarms else None}")
        demo.node1.unregister_query(alarm_sub.id)

        # ---- wrap up ---------------------------------------------------------
        print("\nper-node element counts:")
        for container in demo.containers:
            produced = sum(container.sensor(name).elements_produced
                           for name in container.sensor_names())
            print(f"  {container.name}: {produced} elements "
                  f"across {len(container.sensor_names())} sensors")


def _wrapper(container, sensor_name, expected_type):
    """Reach into a deployed sensor's wrapper (demo-only introspection)."""
    sensor = container.sensor(sensor_name)
    wrapper = sensor.wrappers["src"]
    assert isinstance(wrapper, expected_type), wrapper
    return wrapper


if __name__ == "__main__":
    main()
