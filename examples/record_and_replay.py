#!/usr/bin/env python
"""Record a live deployment, then reproduce it exactly from the trace.

The ops workflow behind the ``replay`` wrapper: a field deployment is
recorded to CSV; back at the desk, the trace is replayed through a fresh
GSN node — the same descriptors, the same SQL — and produces the same
output stream. Debugging with real data, no hardware on the desk.

Run:  python examples/record_and_replay.py
"""

import os
import tempfile

from repro import GSNContainer
from repro.tools.dashboard import write_dashboard
from repro.tools.trace import TraceRecorder, load_trace_csv

FIELD_SENSOR = """
<virtual-sensor name="field-probe">
  <output-structure>
    <field name="value" type="double"/>
    <field name="phase" type="double"/>
  </output-structure>
  <storage permanent-storage="true" size="1h"/>
  <input-stream name="in">
    <stream-source alias="s" storage-size="1">
      <address wrapper="generator">
        <predicate key="signal" val="sine"/>
        <predicate key="amplitude" val="50"/>
        <predicate key="period" val="8000"/>
        <predicate key="interval" val="500"/>
      </address>
      <query>select * from wrapper</query>
    </stream-source>
    <query>select value, phase from s</query>
  </input-stream>
</virtual-sensor>
"""

#: Back at the desk: the same kind of analysis sensor, but its input is
#: the recorded trace instead of a device.
DESK_SENSOR = """
<virtual-sensor name="desk-analysis">
  <output-structure>
    <field name="smoothed" type="double"/>
  </output-structure>
  <storage permanent-storage="true"/>
  <input-stream name="in">
    <stream-source alias="trace" storage-size="2s">
      <address wrapper="replay">
        <predicate key="file" val="__TRACE__"/>
      </address>
      <query>select avg(value) as v from wrapper</query>
    </stream-source>
    <query>select v as smoothed from trace</query>
  </input-stream>
</virtual-sensor>
"""


def main() -> None:
    trace_path = os.path.join(tempfile.mkdtemp(prefix="gsn-"), "field.csv")

    # ---- in the field: record 10 s of a live sensor -----------------------
    with GSNContainer("field-node") as field:
        field.deploy(FIELD_SENSOR)
        recorder = TraceRecorder(field, "field-probe")
        field.run_for(10_000)
        recorder.stop()
        rows = recorder.save_csv(trace_path)
        print(f"recorded {rows} elements to {trace_path}")
        live = field.query(
            "select count(*) n, min(value) lo, max(value) hi "
            "from vs_field_probe"
        ).first()
        print(f"live stream:   {live}")

    # ---- at the desk: replay the trace through an analysis sensor ---------
    with GSNContainer("desk-node") as desk:
        desk.deploy(DESK_SENSOR.replace("__TRACE__", trace_path))
        desk.run_for(60_000)  # replay preserves the original gaps
        analysed = desk.query(
            "select count(*) n, min(smoothed) lo, max(smoothed) hi "
            "from vs_desk_analysis"
        ).first()
        print(f"desk analysis: {analysed}")

        # The raw trace and the replayed stream carry identical samples.
        raw = load_trace_csv(trace_path)
        assert analysed["n"] == len(raw), "every trace row replayed"

        dashboard = os.path.join(os.path.dirname(trace_path), "desk.html")
        write_dashboard(desk, dashboard)
        print(f"desk dashboard written to {dashboard}")


if __name__ == "__main__":
    main()
