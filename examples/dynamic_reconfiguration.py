#!/usr/bin/env python
"""On-the-fly reconfiguration while the system runs (paper, Section 6).

"The audience are invited to add, remove, and reconfigure virtual sensors
while the system is running and processing queries." This example does all
three against one node that keeps serving a standing query throughout —
plus failure injection: a source disconnects mid-run and replays its
buffered elements on reconnect.

Run:  python examples/dynamic_reconfiguration.py
"""

from repro import DataType, GSNContainer
from repro.interfaces.client import GSNClient
from repro.interfaces.web import WebInterface


def main() -> None:
    with GSNContainer("live") as node:
        client = GSNClient(node)
        web = WebInterface(node)

        # Initial deployment: a light sensor sampling fast.
        client.deploy(
            client.descriptor("lab-light")
            .describe("light level in the lab")
            .output(light=DataType.INTEGER)
            .storage(permanent=True, history="5m")
            .predicate("type", "light")
            .stream("in", "select * from src")
            .source("src", "mica2", {"interval": "250", "node-id": "5"},
                    query="select avg(light) as light from wrapper",
                    window="2s", disconnect_buffer=8)
        )
        watcher = client.watch(
            "select count(*) as n from vs_lab_light", name="volume-watch"
        )
        node.run_for(5_000)
        print("after 5 s:", client.query(
            "select count(*) as rows_kept from vs_lab_light")[0])

        # ---- ADD a second sensor while running -----------------------------
        client.deploy(
            client.descriptor("lab-temp")
            .output(temperature=DataType.INTEGER)
            .storage(permanent=True, history="5m")
            .stream("in", "select * from src")
            .source("src", "mica2", {"interval": "1000", "node-id": "6"},
                    query="select avg(temperature) as temperature "
                          "from wrapper", window="5s",
                    disconnect_buffer=8)
        )
        node.run_for(5_000)
        print("added lab-temp; node now hosts:", node.sensor_names())

        # ---- RECONFIGURE lab-light on the fly: slow it down 4x -------------
        # (the standing query keeps firing across the swap)
        before = node.sensor("lab-light").elements_produced
        node.reconfigure(
            client.descriptor("lab-light")
            .output(light=DataType.INTEGER)
            .storage(permanent=True, history="5m")
            .predicate("type", "light")
            .stream("in", "select * from src")
            .source("src", "mica2", {"interval": "1000", "node-id": "5"},
                    query="select avg(light) as light from wrapper",
                    window="2s")
            .build()
        )
        node.run_for(5_000)
        after = node.sensor("lab-light").elements_produced
        print(f"reconfigured lab-light 250ms -> 1000ms "
              f"(produced {before} before, {after} after restart)")

        # ---- failure injection: disconnect / reconnect ----------------------
        source = node.sensor("lab-temp").ism.stream("in").source("src")
        source.disconnect()
        node.run_for(3_000)   # elements pile into the disconnect buffer
        buffered = source.buffer.pending
        replayed = source.reconnect()
        print(f"outage of 3 s: buffered {buffered}, "
              f"replayed {len(replayed)} on reconnect; quality: "
              f"{source.quality.report.disconnect_count} disconnect(s)")

        # ---- REMOVE one sensor ----------------------------------------------
        client.undeploy("lab-temp")
        print("removed lab-temp; node now hosts:", node.sensor_names())

        # The watcher survived everything.
        notifications = client.notifications()
        mine = [n for n in notifications
                if n["subscription"] == "volume-watch"]
        print(f"standing query fired {len(mine)} times across all changes")
        node.unregister_query(watcher)

        # Full monitor document, as the demo's web UI showed it.
        monitor = web.monitor()["monitor"]
        print("\nfinal monitor snapshot:")
        print("  sensors:", monitor["virtual_sensors"]["deployed"])
        print("  queries executed:", monitor["queries"]["queries_executed"])
        print("  plan cache:", monitor["queries"]["plan_cache"])


if __name__ == "__main__":
    main()
