#!/usr/bin/env python
"""Quickstart: deploy a virtual sensor from XML and query it.

This is the paper's Figure 1 scenario end to end: a declarative XML
deployment descriptor, "without any programming effort", turned into a
running averaged-temperature sensor whose output stream is queried in
plain SQL and watched through a standing query.

Run:  python examples/quickstart.py
"""

from repro import GSNContainer

AVERAGED_TEMPERATURE = """
<virtual-sensor name="avg-temp" priority="10">
  <life-cycle pool-size="10" />
  <output-structure>
    <field name="temperature" type="integer"/>
  </output-structure>
  <storage permanent-storage="true" size="10s" />
  <addressing>
    <predicate key="type" val="temperature"/>
    <predicate key="location" val="bc143"/>
  </addressing>
  <input-stream name="dummy" rate="100">
    <stream-source alias="src1" sampling-rate="1"
                   storage-size="1h" disconnect-buffer="10">
      <address wrapper="mica2">
        <predicate key="interval" val="500"/>
        <predicate key="node-id" val="1"/>
      </address>
      <query>select avg(temperature) as temperature from WRAPPER</query>
    </stream-source>
    <query>select * from src1</query>
  </input-stream>
</virtual-sensor>
"""


def main() -> None:
    with GSNContainer("quickstart") as node:
        # Deployment is just handing over the XML.
        sensor = node.deploy(AVERAGED_TEMPERATURE)
        print(f"deployed {sensor.name!r}; "
              f"output schema: {sensor.output_schema}")

        # Watch the stream with a standing query on the default queue
        # channel: every new output element re-evaluates it.
        node.register_query(
            "select max(temperature) as max_temp from vs_avg_temp",
            channel="queue", client="quickstart", name="hot-watch",
        )

        # Run 30 seconds of simulated time; the mote ticks every 500 ms.
        node.run_for(30_000)

        print("\nRetained output stream (10 s history):")
        print(node.query("select * from vs_avg_temp order by timed").pretty())

        print("\nAggregate over the retained history:")
        print(node.query(
            "select count(*) as readings, avg(temperature) as mean_temp, "
            "min(temperature) as low, max(temperature) as high "
            "from vs_avg_temp"
        ).pretty())

        queue = node.notifications.channel("queue")
        print(f"\nstanding query fired {queue.pending} times; last result:")
        print(queue.peek())

        status = sensor.status()
        print(f"\nsensor processed {status['elements_produced']} elements, "
              f"mean pipeline latency "
              f"{status['processing']['mean_ms']:.3f} ms")


if __name__ == "__main__":
    main()
