"""Seeded-bad module for the async-safety pass: GSN905 (unbounded
asyncio queue).

The ingest queue has no ``maxsize``: a producer outrunning the consumer
grows it without limit, there is no shed point, and the process dies of
memory instead of back-pressure. Warning severity — rejected under
``--strict-warnings``.

``gsn-lint --async --strict-warnings
examples/bad/gsn905_unbounded_async_queue.py`` reports GSN905 at the
queue construction.
"""

import asyncio


class UnboundedBuffer:
    def __init__(self) -> None:
        self._inbox = asyncio.Queue()  # GSN905: no backpressure bound

    async def produce(self, item: object) -> None:
        await self._inbox.put(item)

    async def consume(self) -> object:
        return await self._inbox.get()
