"""Seeded-bad module for the async-safety pass: GSN904 (event-loop
thread-affinity violation).

``submit`` runs on whatever thread calls it, yet it schedules work with
``loop.call_soon`` — which is bound to the loop's own thread — and
mutates ``pending``, declared ``# owned-by: loop``, without routing
through ``call_soon_threadsafe``. Both are silent corruption on CPython
(the loop may never wake) and crashes elsewhere.

``gsn-lint --async examples/bad/gsn904_foreign_thread_loop.py`` reports
GSN904 at both sites.
"""

import asyncio


class LoopFeeder:
    def __init__(self) -> None:
        self._loop = asyncio.new_event_loop()
        self.pending = 0  # owned-by: loop

    async def run(self) -> None:
        while self.pending:
            self.pending -= 1
            await asyncio.sleep(0)

    def submit(self) -> None:
        self._loop.call_soon(print)  # GSN904: loop-bound API, foreign thread
        self.pending += 1  # GSN904: loop-owned state, foreign thread
