"""Seeded-bad module for the async-safety pass: GSN901 (blocking call
reachable from a coroutine).

``poll`` blocks the event loop directly with ``time.sleep``; ``drain``
blocks it one call deep — the sync helper ``_pull`` does a synchronous
queue ``get``, and a timeout does not help: every task on the loop
stalls for its full duration.

``gsn-lint --async examples/bad/gsn901_blocking_in_coroutine.py``
reports GSN901 at both blocking sites.
"""

import asyncio
import queue
import time


class PollingReader:
    def __init__(self) -> None:
        self._queue = queue.Queue(64)

    async def poll(self) -> None:
        while True:
            time.sleep(0.1)  # GSN901: stalls every task on the loop
            await asyncio.sleep(0)

    async def drain(self) -> None:
        while True:
            self._pull()
            await asyncio.sleep(0)

    def _pull(self) -> None:
        # GSN901 via drain(): sync queue get on the loop thread.
        self._queue.get(timeout=0.5)
