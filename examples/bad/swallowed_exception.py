"""Seeded-bad input: a broad ``except`` that swallows the error.

``read_sample`` catches ``Exception`` and silently substitutes a
default — no re-raise, no log line, no error counter. A flaky source
degrades into garbage readings with zero operator-visible signal.
``gsn-lint`` (flow pass) must report GSN601.
"""


def read_sample(source):
    try:
        return int(source.readline())
    except Exception:
        pass
    return -1


def read_all(sources):
    return [read_sample(source) for source in sources]
