"""Seeded-bad module for the async-safety pass: GSN903 (unawaited
coroutine / fire-and-forget task).

``kick`` drops the task returned by ``asyncio.ensure_future`` — if the
worker coroutine raises, the exception vanishes exactly like a dying
thread (the GSN602 failure mode, one tier up). ``misfire`` calls the
coroutine like a function: the coroutine object is created, never
scheduled, and the body never runs.

``gsn-lint --async examples/bad/gsn903_fire_and_forget.py`` reports
GSN903 at both sites.
"""

import asyncio


class TaskSpawner:
    async def worker(self) -> None:
        await asyncio.sleep(0.01)
        raise RuntimeError("lost: nobody holds the task")

    def kick(self) -> None:
        asyncio.ensure_future(self.worker())  # GSN903: result dropped

    def misfire(self) -> None:
        self.worker()  # GSN903: coroutine created, never awaited
