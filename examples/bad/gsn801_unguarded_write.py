"""Seeded-bad module for the data-race pass: GSN801 (unguarded write).

A sampler thread overwrites ``last_reading`` while ``snapshot`` — called
from the owning (main) thread — reads it. The scalar is shared across
the two entry points and nothing guards the write.

``gsn-lint --race examples/bad/gsn801_unguarded_write.py`` reports
GSN801 at the write site in ``_sample``.
"""

import threading
import time


class LastReadingCache:
    def __init__(self) -> None:
        self.last_reading = None
        self._stop = False
        self._thread = None

    def start(self) -> None:
        self._thread = threading.Thread(target=self._sample, daemon=True)
        self._thread.start()

    def _sample(self) -> None:
        while not self._stop:
            self.last_reading = time.time()  # GSN801: no lock anywhere
            time.sleep(0.1)

    def snapshot(self):
        return self.last_reading

    def stop(self) -> None:
        self._stop = True
