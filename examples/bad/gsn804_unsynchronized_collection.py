"""Seeded-bad module for the data-race pass: GSN804 (unsynchronized
collection).

The collector thread appends to ``events`` while ``recent`` iterates a
copy from the main thread. In-place mutation of a plain list shared
across entry points is flagged even though each individual ``append``
is atomic under the GIL — ``list(self.events)`` can still observe a
half-consistent sequence relative to other mutators like ``clear``.

``gsn-lint --race examples/bad/gsn804_unsynchronized_collection.py``
reports GSN804 at the ``append`` in ``_collect``.
"""

import threading


class EventLog:
    def __init__(self) -> None:
        self.events = []
        self._thread = None

    def start(self) -> None:
        self._thread = threading.Thread(target=self._collect, daemon=True)
        self._thread.start()

    def _collect(self) -> None:
        self.events.append("tick")  # GSN804: no lock guards the list

    def recent(self):
        return list(self.events)
