"""Seeded-bad module for the data-race pass: GSN803 (compound update).

``hits += 1`` from the counting thread is a read-modify-write: two
threads interleaving between the read and the write lose increments.
There is no lock at all, so no single site is "the inconsistent one" —
the compound shape itself is the finding.

``gsn-lint --race examples/bad/gsn803_compound_update.py`` reports
GSN803 at the increment in ``_count``.
"""

import threading


class HitCounter:
    def __init__(self) -> None:
        self.hits = 0
        self._thread = None

    def start(self) -> None:
        self._thread = threading.Thread(target=self._count, daemon=True)
        self._thread.start()

    def _count(self) -> None:
        self.hits += 1  # GSN803: unguarded read-modify-write

    def total(self) -> int:
        return self.hits
