"""Seeded-bad input: two classes acquiring two locks in opposite order.

``Forward.transfer`` takes REGISTRY_LOCK then JOURNAL_LOCK;
``Backward.audit`` takes them the other way around. Two threads running
one of each can deadlock — ``gsn-lint --deadlock`` must report GSN501.
"""

import threading

REGISTRY_LOCK = threading.Lock()
JOURNAL_LOCK = threading.Lock()

_registry = {}
_journal = []


class Forward:
    def transfer(self, key, value):
        with REGISTRY_LOCK:
            _registry[key] = value
            with JOURNAL_LOCK:
                _journal.append((key, value))


class Backward:
    def audit(self):
        with JOURNAL_LOCK:
            entries = list(_journal)
            with REGISTRY_LOCK:
                return [key for key, _ in entries if key in _registry]
