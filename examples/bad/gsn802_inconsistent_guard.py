"""Seeded-bad module for the data-race pass: GSN802 (inconsistent guard).

``readings`` declares its guard (with the canonical registry name, so
GSN806 stays quiet) and the pump thread honors it — but ``reset``
writes the counter lock-free. The declaration makes the expectation
explicit, so the one deviating site is the bug.

``gsn-lint --race examples/bad/gsn802_inconsistent_guard.py`` reports
GSN802 at the write in ``reset`` (the locklint pass flags the same line
as GSN401 — the two passes agree on declared guards).
"""

import threading


class SensorStats:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.readings = 0  # guarded-by: SensorStats._lock
        self._thread = None

    def start(self) -> None:
        self._thread = threading.Thread(target=self._pump, daemon=True)
        self._thread.start()

    def _pump(self) -> None:
        with self._lock:
            self.readings += 1

    def reset(self) -> None:
        self.readings = 0  # GSN802: declared guard not held here
