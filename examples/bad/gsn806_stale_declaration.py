"""Seeded-bad module for the data-race pass: GSN806 (stale/non-canonical
guarded-by declaration).

The locking itself is correct — every access to ``entries`` holds
``self._lock`` — but the declaration names the lock by its bare
attribute instead of its registry name (``ConfigCache._lock``), so
tooling that joins declarations across classes cannot tell this
``_lock`` from any other. GSN806 is a warning: the code runs fine, the
*documentation* of the discipline is what is off.

``gsn-lint --race examples/bad/gsn806_stale_declaration.py`` reports
GSN806 at the declaration site (exit 1 under ``--strict-warnings``).
"""

import threading


class ConfigCache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.entries = {}  # guarded-by: _lock  (GSN806: not the registry name)
        self._thread = None

    def start(self) -> None:
        self._thread = threading.Thread(target=self._refresh, daemon=True)
        self._thread.start()

    def _refresh(self) -> None:
        with self._lock:
            self.entries["refreshed"] = True

    def get(self, key):
        with self._lock:
            return self.entries.get(key)
