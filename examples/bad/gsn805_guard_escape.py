"""Seeded-bad module for the data-race pass: GSN805 (guard escape).

Every mutation of ``samples`` correctly holds the declared lock — but
``all_samples`` returns the list *itself*, so the caller iterates (or
mutates) the collection outside the lock the discipline promised. The
guarded reference has escaped its lock scope.

``gsn-lint --race examples/bad/gsn805_guard_escape.py`` reports GSN805
at the ``return`` in ``all_samples``; the fix is returning a copy
(``list(self.samples)``), which ``recent`` demonstrates.
"""

import threading


class SampleBuffer:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.samples = []  # guarded-by: SampleBuffer._lock
        self._thread = None

    def start(self) -> None:
        self._thread = threading.Thread(target=self._fill, daemon=True)
        self._thread.start()

    def _fill(self) -> None:
        with self._lock:
            self.samples.append(1.0)

    def all_samples(self):
        return self.samples  # GSN805: guarded reference escapes the lock

    def recent(self):
        with self._lock:
            return list(self.samples)  # correct: a copy escapes, not the ref
