"""Seeded-bad module for the concurrency lint (GSN4xx rules).

Running ``gsn-lint examples/bad/unguarded_counter.py`` reports:

- GSN401 — ``bump`` writes the guarded counter without the lock and
  ``record`` mutates the guarded list without the lock;
- GSN402 — ``history`` declares a lock attribute the class never has;
- GSN403 — ``flush`` calls a ``requires-lock`` method lock-free.
"""

import threading


class UnguardedCounter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0  # guarded-by: _lock
        self.events = []  # guarded-by: _lock
        self.history = []  # guarded-by: _history_lock

    def bump(self) -> None:
        self.value += 1  # GSN401: no lock held

    def record(self, event: str) -> None:
        self.events.append(event)  # GSN401: mutation without the lock

    def _drain(self) -> list:  # requires-lock: _lock
        drained, self.events = self.events, []
        return drained

    def flush(self) -> list:
        return self._drain()  # GSN403: caller does not hold _lock

    def safe_bump(self) -> None:
        with self._lock:
            self.value += 1  # correct: lock held
