"""Seeded-bad module for the async-safety pass: GSN902 (sync lock held
across an await point).

``update`` suspends inside ``with self._lock:`` — the coroutine parks
with the lock held, so any thread (or other task resolving to a thread
hand-off) that needs the lock deadlocks against a frame that cannot run
until the loop resumes it.

``gsn-lint --async examples/bad/gsn902_lock_across_await.py`` reports
GSN902 at the await (and GSN901 for taking the sync lock on the loop at
all).
"""

import asyncio
import threading


class SharedCounter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0  # guarded-by: SharedCounter._lock

    async def update(self) -> None:
        with self._lock:
            self.value += 1
            await asyncio.sleep(0.01)  # GSN902: parked with the lock held
