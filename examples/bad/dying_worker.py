"""Seeded-bad input: a worker thread whose entry point can die.

``poll_device`` raises ``RuntimeError`` when the device disappears and
``ValueError`` on a malformed reading; neither is caught inside the
loop, so the first bad reading kills the thread and the sensor keeps
looking deployed while producing nothing — the classic
deployed-but-dead failure. ``gsn-lint`` (flow pass) must report GSN602
at the ``Thread(...)`` construction site.
"""

import threading


def poll_device(device, sink):
    while True:
        reading = device.take()
        if reading is None:
            raise RuntimeError("device went away")
        if len(reading) != 2:
            raise ValueError("malformed reading")
        sink.append(reading)


def start(device, sink):
    worker = threading.Thread(target=poll_device, args=(device, sink),
                              daemon=True)
    worker.start()
    return worker
