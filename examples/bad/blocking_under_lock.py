"""Seeded-bad input: blocking operations while holding a lock.

Every consumer of ``Poller`` serializes on ``_lock`` for the full
duration of the sleep and the unbounded queue read — ``gsn-lint
--deadlock`` must report GSN502.
"""

import queue
import threading
import time


class Poller:
    def __init__(self):
        self._lock = threading.Lock()
        self._queue = queue.Queue()
        self.polled = 0

    def poll(self):
        with self._lock:
            time.sleep(0.1)
            self.polled += 1

    def drain(self):
        with self._lock:
            return self._queue.get()
