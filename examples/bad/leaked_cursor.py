"""Seeded-bad input: a cursor that leaks on the early and raising paths.

``stale_rows`` closes its cursor only on the happy path: the early
``return`` skips the ``close()``, and any exception from ``execute`` or
``fetchall`` leaks it too. Under load the connection runs out of
cursors. ``gsn-lint`` (flow pass) must report GSN603 — the fix is a
``with`` block or a ``finally``.
"""


def stale_rows(conn, table, cutoff):
    cur = conn.cursor()
    cur.execute("select name, seen_at from " + table)
    if cur.rowcount == 0:
        return []
    rows = [row for row in cur.fetchall() if row[1] < cutoff]
    cur.close()
    return rows
