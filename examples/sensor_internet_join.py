#!/usr/bin/env python
"""A small "Sensor Internet": deriving new sensors from remote ones.

The paper's vision: "a new sensor network which is based on the data
produced by other (heterogeneous) sensor networks can be created by just
providing some declarative configurations and without any software
programming efforts."

Three organizations run their own GSN nodes on one peer network:

- ``campus-a`` runs a mote network publishing temperature (location bc143),
- ``campus-b`` runs a mote network publishing temperature (location bc180),
- ``weather-hub`` owns no hardware at all: it deploys a *derived* virtual
  sensor whose two input streams are remote wrappers, discovered purely by
  predicates (``type=mote`` + ``location=...``), and joins them in SQL.

Run:  python examples/sensor_internet_join.py
"""

from repro import GSNContainer, PeerNetwork
from repro.gsntime.clock import VirtualClock
from repro.gsntime.scheduler import EventScheduler
from repro.simulation.networks import mote_descriptor

#: The derived sensor: no hardware, only logical addressing + SQL.
CAMPUS_COMPARISON = """
<virtual-sensor name="campus-comparison">
  <output-structure>
    <field name="temp_a" type="integer"/>
    <field name="temp_b" type="integer"/>
    <field name="spread" type="integer"/>
  </output-structure>
  <storage permanent-storage="true" size="1h"/>
  <addressing>
    <predicate key="type" val="derived"/>
    <predicate key="coverage" val="both-campuses"/>
  </addressing>
  <input-stream name="both">
    <stream-source alias="a" storage-size="10s">
      <address wrapper="remote">
        <predicate key="type" val="mote"/>
        <predicate key="location" val="bc143"/>
      </address>
      <query>select avg(temperature) as t from WRAPPER</query>
    </stream-source>
    <stream-source alias="b" storage-size="10s">
      <address wrapper="remote">
        <predicate key="type" val="mote"/>
        <predicate key="location" val="bc180"/>
      </address>
      <query>select avg(temperature) as t from WRAPPER</query>
    </stream-source>
    <query>
      select a.t as temp_a, b.t as temp_b,
             a.t - b.t as spread
      from a, b
    </query>
  </input-stream>
</virtual-sensor>
"""


def main() -> None:
    clock = VirtualClock()
    scheduler = EventScheduler(clock)
    internet = PeerNetwork(scheduler=scheduler, latency_ms=5)

    campus_a = GSNContainer("campus-a", network=internet,
                            clock=clock, scheduler=scheduler)
    campus_b = GSNContainer("campus-b", network=internet,
                            clock=clock, scheduler=scheduler)
    hub = GSNContainer("weather-hub", network=internet,
                       clock=clock, scheduler=scheduler)
    try:
        # Each campus deploys its own motes, in its own container.
        campus_a.deploy(mote_descriptor("roof-mote", node_id=11,
                                        interval_ms=1000, location="bc143",
                                        temperature_base=14.0))  # outdoors
        campus_b.deploy(mote_descriptor("lab-mote", node_id=27,
                                        interval_ms=1500, location="bc180",
                                        temperature_base=23.0))  # indoors

        # The hub discovers both by predicates and joins them — it never
        # names a host, a port, or a wrapper implementation.
        hub.deploy(CAMPUS_COMPARISON)

        scheduler.run_for(30_000)

        print("derived stream on the hub (last rows):")
        print(hub.query(
            "select * from vs_campus_comparison order by timed desc limit 5"
        ).pretty())

        print("\nlargest spread observed:")
        print(hub.query(
            "select max(spread) as max_spread, min(spread) as min_spread "
            "from vs_campus_comparison"
        ).pretty())

        # The derived sensor is itself discoverable: a fourth party could
        # now build on top of it the same way.
        entry = internet.directory.lookup_one({"type": "derived"})
        print(f"\ndirectory entry for the derived sensor: "
              f"{entry.container}/{entry.sensor} {entry.predicate_dict()}")

        print(f"\nbus traffic: {internet.bus.status()}")
    finally:
        hub.shutdown()
        campus_b.shutdown()
        campus_a.shutdown()


if __name__ == "__main__":
    main()
