"""Integration tests for the ``strict=True`` pre-deploy gate: the
gsn-lint analysis rejecting descriptors the basic validator accepts."""

import pytest

from repro.container import GSNContainer
from repro.descriptors.validation import validate_descriptor
from repro.exceptions import DeploymentError, ValidationError
from repro.wrappers.registry import default_registry

# The basic validator accepts this: the source query parses, reads only
# WRAPPER, and the window spec is fine. Only schema inference can tell
# that the mote wrapper never produces ``missing_col``.
SUBTLY_BROKEN = """
<virtual-sensor name="subtle">
  <output-structure>
    <field name="avg_temp" type="double"/>
  </output-structure>
  <input-stream name="in">
    <stream-source alias="s" storage-size="10">
      <address wrapper="mica2"/>
      <query>select missing_col from WRAPPER</query>
    </stream-source>
    <query>select avg(missing_col) as avg_temp from s</query>
  </input-stream>
</virtual-sensor>
"""

HEALTHY = """
<virtual-sensor name="healthy">
  <output-structure>
    <field name="avg_temp" type="double"/>
  </output-structure>
  <input-stream name="in">
    <stream-source alias="s" storage-size="10">
      <address wrapper="mica2"/>
      <query>select temperature from WRAPPER</query>
    </stream-source>
    <query>select avg(temperature) as avg_temp from s</query>
  </input-stream>
</virtual-sensor>
"""


class TestStrictDeploy:
    def test_old_validator_accepts_the_broken_descriptor(self, container):
        sensor = container.deploy(SUBTLY_BROKEN)
        assert sensor.name == "subtle"

    def test_strict_rejects_what_the_validator_accepted(self, container):
        with pytest.raises(DeploymentError) as excinfo:
            container.deploy(SUBTLY_BROKEN, strict=True)
        assert "GSN101" in str(excinfo.value)
        assert "subtle" not in container.sensor_names()

    def test_strict_accepts_a_healthy_descriptor(self, container):
        sensor = container.deploy(HEALTHY, strict=True)
        assert sensor.name == "healthy"

    def test_strict_reconfigure(self, container):
        container.deploy(HEALTHY, strict=True)
        broken = HEALTHY.replace('name="healthy"', 'name="healthy"').replace(
            "select temperature from WRAPPER",
            "select missing_col from WRAPPER",
        ).replace("avg(temperature)", "avg(missing_col)")
        with pytest.raises(DeploymentError):
            container.reconfigure(broken, strict=True)

    def test_preexisting_findings_do_not_block_unrelated_deploys(
            self, container):
        # A sensor deployed non-strictly with an error finding must not
        # poison later strict deploys of healthy descriptors.
        container.deploy(SUBTLY_BROKEN)
        sensor = container.deploy(HEALTHY, strict=True)
        assert sensor.name == "healthy"


class TestValidatorRegistryParam:
    def test_registry_turns_select_star_into_a_static_check(self):
        from repro.descriptors.xml_io import descriptor_from_xml

        xml = HEALTHY.replace(
            '<field name="avg_temp" type="double"/>',
            '<field name="humidity" type="double"/>',
        ).replace("select avg(temperature) as avg_temp from s",
                  "select * from s")
        descriptor = descriptor_from_xml(xml)
        assert validate_descriptor(descriptor) == []
        with pytest.raises(ValidationError) as excinfo:
            validate_descriptor(descriptor, registry=default_registry())
        assert "GSN105" in str(excinfo.value)

    def test_registry_warnings_are_returned_not_raised(self):
        from repro.descriptors.xml_io import descriptor_from_xml

        xml = HEALTHY.replace(
            "select avg(temperature) as avg_temp from s",
            "select avg(temperature) as avg_temp, temperature from s",
        )
        warnings = validate_descriptor(descriptor_from_xml(xml),
                                       registry=default_registry())
        assert any("GSN106" in warning for warning in warnings)
