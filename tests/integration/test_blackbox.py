"""The container's black box, end to end.

Acceptance criteria from the issue:

- forcing a worker past its restart budget produces a black-box dump
  whose journal contains the triggering crash-witness event, the
  transition into DEGRADED, and at least one sampled trace;
- ``GET /healthz`` flips from ok (200) to degraded (503);
- ``gsn-top`` renders the live vitals from a real server.
"""

import contextlib
import json
import time
import urllib.error
import urllib.request

import pytest

from repro import GSNContainer
from repro.analysis import crashwitness
from repro.interfaces.http_server import GSNHttpServer
from repro.interfaces.web import WebInterface
from repro.tools import top as gsn_top

from tests.conftest import simple_mote_descriptor


@contextlib.contextmanager
def session_expected():
    witness = crashwitness.active()
    if witness is None:
        yield
        return
    with witness.expected():
        yield


def wait_until(predicate, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def _corrupt(task):
    raise RuntimeError("worker heap corrupted")


def _degrade(node, sensor, monkeypatch):
    """Drive the sensor's pool past its restart budget."""
    pool = sensor.lifecycle.pool
    monkeypatch.setattr(pool, "_run", _corrupt)
    with session_expected():
        node.run_for(2_000)
        # Wait for the *sensor* state, not pool.degraded: the LCM
        # callback (and its black-box dump) runs after the pool flag
        # flips, on the crashed worker's thread.
        assert wait_until(lambda: sensor.status()["state"] == "degraded")
    return pool


class TestBlackBoxDump:
    def test_degradation_dumps_the_full_story(self, monkeypatch):
        with GSNContainer("boxed", synchronous=False) as node:
            sensor = node.deploy(
                simple_mote_descriptor(name="boxed-probe", interval_ms=100))
            # Let the sensor run healthy first so the trace ring has
            # sampled triggers for the dump to carry.
            node.run_for(1_000)
            assert wait_until(lambda: len(node.traces) > 0)
            _degrade(node, sensor, monkeypatch)
            assert wait_until(
                lambda: (node.flight.last_dump() or {}).get("reason")
                == "degraded:boxed-probe")

            dump = node.flight.last_dump()
            assert dump["reason"] == "degraded:boxed-probe"
            kinds = [event["kind"] for event in dump["events"]]
            # The crash that spent the budget is in the journal...
            assert "worker_crash" in kinds
            assert "worker_restart" in kinds
            # ...so is the state flip into DEGRADED...
            assert any(event["kind"] == "transition"
                       and event["detail"]["to_state"] == "degraded"
                       for event in dump["events"])
            assert dump["trigger"]["kind"] == "degraded"
            # ...and at least one sampled trace rode along.
            assert len(dump["traces"]) >= 1
            assert dump["health"]["status"] == "degraded"
            # Earlier dumps (one per supervised crash) were retained too.
            assert node.flight.status()["dumps_taken"] >= 2

    def test_operator_dump_needs_no_crash(self):
        with GSNContainer("calm-box") as node:
            node.deploy(simple_mote_descriptor(interval_ms=500))
            node.run_for(1_000)
            dump = node.blackbox_dump()
            assert dump["reason"] == "operator-request"
            assert dump["trigger"] is None
            assert "deploy" in [event["kind"] for event in dump["events"]]
            assert dump["container"]["name"] == "calm-box"
            assert dump["threads"]  # live thread stacks snapshot


class TestHealthzFlips:
    def test_healthz_flips_ok_to_degraded(self, monkeypatch):
        with GSNContainer("vital", synchronous=False) as node:
            sensor = node.deploy(
                simple_mote_descriptor(name="vital-probe", interval_ms=100))
            web = WebInterface(node)
            before = web.healthz()
            assert before["status"] == 200
            assert before["health"]["status"] == "ok"

            _degrade(node, sensor, monkeypatch)

            after = web.healthz()
            assert after["status"] == 503
            assert after["health"]["status"] == "degraded"
            checks = after["health"]["checks"]
            assert checks["sensors"]["status"] == "degraded"
            assert checks["worker-pools"]["status"] == "degraded"

    def test_healthz_serves_503_over_http(self, monkeypatch):
        if crashwitness.active() is None:
            pytest.skip("suite runs with GSN_CRASH_WITNESS=0")
        with GSNContainer("wired", synchronous=False) as node:
            sensor = node.deploy(
                simple_mote_descriptor(name="wired-probe", interval_ms=100))
            _degrade(node, sensor, monkeypatch)
            with GSNHttpServer(node) as server:
                with pytest.raises(urllib.error.HTTPError) as caught:
                    urllib.request.urlopen(f"{server.url}/healthz")
                assert caught.value.code == 503
                body = json.load(caught.value)
                assert body["health"]["status"] == "degraded"


class TestObservabilityEndpoints:
    def test_healthz_dump_profile_over_http(self):
        with GSNContainer("probe-box", synchronous=False) as node:
            node.deploy(simple_mote_descriptor(interval_ms=100))
            node.run_for(500)
            with GSNHttpServer(node) as server:
                with urllib.request.urlopen(
                        f"{server.url}/healthz") as response:
                    assert response.status == 200
                    doc = json.loads(response.read().decode("utf-8"))
                assert doc["health"]["status"] == "ok"
                # The server registers its own health check while serving.
                assert "http-server" in doc["health"]["checks"]
                assert doc["health"]["slos"]

                with urllib.request.urlopen(
                        f"{server.url}/dump") as response:
                    dump = json.loads(response.read().decode("utf-8"))["dump"]
                assert dump["reason"] == "http-request"
                assert any(event["kind"] == "deploy"
                           for event in dump["events"])

                with urllib.request.urlopen(
                        f"{server.url}/profile?seconds=0.2") as response:
                    content_type = response.headers["Content-Type"]
                    assert content_type.startswith("text/plain")
                    profile = response.read().decode("utf-8")
            # Collapsed-stack shape: "owner;frame;... count" per line,
            # and the burst (taken off the handler thread) saw at least
            # the main thread.
            lines = profile.splitlines()
            assert lines
            for line in lines:
                stack, __, count = line.rpartition(" ")
                assert count.isdigit()
                assert ";" in stack


class TestGsnTop:
    def test_fetch_and_render_against_a_live_container(self):
        with GSNContainer("topped", synchronous=False) as node:
            node.deploy(simple_mote_descriptor(interval_ms=100))
            node.run_for(1_000)
            with GSNHttpServer(node) as server:
                snapshot = gsn_top.fetch_snapshot(server.url)
        screen = gsn_top.render(snapshot)
        assert "gsn-top — topped" in screen
        assert "health: ok" in screen
        assert "trigger-latency-p99" in screen
        assert "probe" in screen

    def test_main_once_prints_one_screen(self, capsys):
        with GSNContainer("oncely", synchronous=False) as node:
            node.deploy(simple_mote_descriptor(interval_ms=200))
            node.run_for(600)
            with GSNHttpServer(node) as server:
                code = gsn_top.main(["--url", server.url, "--once"])
        assert code == 0
        out = capsys.readouterr().out
        assert "gsn-top — oncely" in out
        assert gsn_top.CLEAR not in out  # --once never clears the screen

    def test_unreachable_server_fails_cleanly(self, capsys):
        code = gsn_top.main(["--url", "http://127.0.0.1:9", "--once"])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_render_marks_degraded_components(self):
        snapshot = {
            "healthz": {"health": {
                "status": "degraded",
                "checks": {"worker-pools": {"status": "degraded",
                                            "shed": 3}},
                "slos": [{"slo": "trigger-latency-p99", "met": False,
                          "burn_rate": 5.0, "error_budget_remaining": 0.0,
                          "objective_ms": 250.0}],
            }},
            "monitor": {"name": "sick", "state": "running", "time": 9},
            "profile": "",
        }
        screen = gsn_top.render(snapshot)
        assert "health: degraded" in screen
        assert "[!] worker-pools" in screen
        assert "MISSED" in screen
        assert "hot stacks: no samples yet" in screen
