"""Integration: on-the-fly reconfiguration and failure injection — the
behaviours the paper's demo showcased."""

import pytest

from repro.exceptions import ValidationError

from tests.conftest import simple_mote_descriptor


class TestDynamicReconfiguration:
    def test_add_sensor_while_running(self, container):
        container.deploy(simple_mote_descriptor(name="first",
                                                interval_ms=500))
        container.run_for(2_000)
        container.deploy(simple_mote_descriptor(name="second",
                                                interval_ms=500))
        container.run_for(2_000)
        first = container.sensor("first").elements_produced
        second = container.sensor("second").elements_produced
        assert first == 8
        assert second == 4

    def test_remove_sensor_while_others_run(self, container):
        container.deploy(simple_mote_descriptor(name="keep",
                                                interval_ms=500))
        container.deploy(simple_mote_descriptor(name="drop",
                                                interval_ms=500))
        container.run_for(1_000)
        container.undeploy("drop")
        container.run_for(1_000)
        assert container.sensor("keep").elements_produced == 4
        assert container.sensor_names() == ["keep"]

    def test_reconfigure_interval_on_the_fly(self, container):
        container.deploy(simple_mote_descriptor(interval_ms=250))
        container.run_for(1_000)
        assert container.sensor("probe").elements_produced == 4
        container.reconfigure(simple_mote_descriptor(interval_ms=1_000))
        container.run_for(4_000)
        assert container.sensor("probe").elements_produced == 4

    def test_subscription_survives_reconfigure(self, container):
        container.deploy(simple_mote_descriptor(interval_ms=500))
        container.register_query("select count(*) n from vs_probe")
        container.run_for(1_000)
        container.reconfigure(simple_mote_descriptor(interval_ms=500))
        container.run_for(1_000)
        queue = container.notifications.channel("queue")
        assert queue.pending == 4  # 2 before + 2 after the swap

    def test_failed_reconfigure_keeps_old_sensor_running(self, container):
        container.deploy(simple_mote_descriptor(interval_ms=500))
        bad = simple_mote_descriptor(stream_query="select * from ghost")
        with pytest.raises(ValidationError):
            container.reconfigure(bad)
        container.run_for(1_000)
        assert container.sensor("probe").elements_produced == 2

    def test_pause_resume_sensor(self, container):
        sensor = container.deploy(simple_mote_descriptor(interval_ms=500))
        container.run_for(1_000)
        sensor.pause()
        container.run_for(2_000)
        assert sensor.elements_produced == 2
        sensor.resume()
        container.run_for(1_000)
        assert sensor.elements_produced == 4


class TestFailureInjection:
    def test_disconnect_buffer_replays(self, container):
        container.deploy(simple_mote_descriptor(
            interval_ms=500, disconnect_buffer=10))
        container.run_for(1_000)
        source = container.sensor("probe").ism.stream("in").source("src")

        source.disconnect()
        container.run_for(2_000)  # 4 elements buffered, none processed
        assert container.sensor("probe").elements_produced == 2
        assert source.buffer.pending == 4

        replayed = source.reconnect()
        assert len(replayed) == 4
        # Replayed elements entered the window; the next trigger sees them.
        container.run_for(500)
        result = container.query(
            "select count(*) n from vs_probe").first()["n"]
        assert result == 3

    def test_disconnect_without_buffer_loses_data(self, container):
        container.deploy(simple_mote_descriptor(interval_ms=500,
                                                disconnect_buffer=0))
        source = container.sensor("probe").ism.stream("in").source("src")
        source.disconnect()
        container.run_for(2_000)
        assert source.reconnect() == []
        assert source.buffer.total_dropped == 4

    def test_quality_report_tracks_outage(self, container):
        container.deploy(simple_mote_descriptor(interval_ms=500,
                                                disconnect_buffer=2))
        source = container.sensor("probe").ism.stream("in").source("src")
        source.disconnect()
        container.run_for(1_000)
        source.reconnect()
        report = source.quality.report
        assert report.disconnect_count == 1
        assert report.elements_seen == 2

    def test_missing_values_flow_through(self, container):
        # A mote that always drops its readings: avg(NULL...) is NULL and
        # the output element carries a NULL temperature.
        descriptor = simple_mote_descriptor(interval_ms=500)
        from dataclasses import replace
        source = descriptor.input_streams[0].sources[0]
        lossy_address = type(source.address)(
            "mica2", {"interval": "500", "missing-rate": "1.0"})
        stream = replace(descriptor.input_streams[0],
                         sources=(replace(source, address=lossy_address),))
        container.deploy(replace(descriptor, input_streams=(stream,)))
        container.run_for(1_000)
        rows = container.query(
            "select temperature from vs_probe").to_dicts()
        assert rows
        assert all(r["temperature"] is None for r in rows)
        quality = (container.sensor("probe").ism.stream("in")
                   .source("src").quality.report)
        assert quality.missing_value_count > 0

    def test_pipeline_failure_isolated_per_sensor(self, container):
        """One failing sensor must not stop a healthy one."""
        from repro.wrappers.scripted import ScriptedWrapper
        from repro.streams.schema import StreamSchema
        from repro.datatypes import DataType

        container.deploy(simple_mote_descriptor(name="healthy",
                                                interval_ms=500))
        broken = container.deploy(simple_mote_descriptor(
            name="broken", interval_ms=500))
        # Sabotage the broken sensor's wrapper to emit garbage types.
        wrapper = broken.wrappers["src"]
        evil = ScriptedWrapper()
        evil.script(lambda now: {"temperature": "garbage"},
                    StreamSchema.build(temperature=DataType.INTEGER))
        evil.attach(container.clock, container.scheduler)
        evil.configure({"interval": "500"})
        evil.add_listener(
            broken.ism._listener("in",
                                 broken.ism.stream("in").source("src"))
        )
        wrapper.stop()
        evil.start()

        container.run_for(2_000)
        assert container.sensor("healthy").elements_produced == 4
        assert broken.lifecycle.pool.tasks_failed > 0

    def test_rate_bound_protects_under_burst(self, container):
        container.deploy(simple_mote_descriptor(interval_ms=100, rate=2.0))
        container.run_for(5_000)
        stream = container.sensor("probe").ism.stream("in")
        # 50 arrivals at 10/s bounded to 2/s.
        assert stream.triggers_bounded > 0
        assert container.sensor("probe").elements_produced <= 11

    def test_sampling_reduces_volume(self, container):
        container.deploy(simple_mote_descriptor(interval_ms=100,
                                                sampling=0.2))
        container.run_for(10_000)
        produced = container.sensor("probe").elements_produced
        assert 0 < produced < 50  # ~20 expected from 100 arrivals
