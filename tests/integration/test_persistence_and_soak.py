"""Persistence across restarts, delay observability, and a soak run."""


from repro import GSNContainer, PeerNetwork
from repro.gsntime.clock import VirtualClock
from repro.gsntime.scheduler import EventScheduler

from tests.conftest import simple_mote_descriptor


class TestPersistenceAcrossRestart:
    def test_permanent_streams_survive_container_restart(self, tmp_path):
        db = str(tmp_path / "node.db")
        descriptor = simple_mote_descriptor(interval_ms=500, history="1h")

        with GSNContainer("node", storage_path=db) as first:
            first.deploy(descriptor)
            first.run_for(3_000)
            before = first.query(
                "select count(*) n from vs_probe").first()["n"]
        assert before == 6

        # A new process-lifetime: same database path, same descriptor.
        with GSNContainer("node", storage_path=db) as second:
            second.deploy(descriptor)
            carried_over = second.query(
                "select count(*) n from vs_probe").first()["n"]
            assert carried_over == before  # history survived the restart
            second.run_for(1_000)
            assert second.query(
                "select count(*) n from vs_probe").first()["n"] \
                == before + 2  # and new data appends after it

    def test_transient_streams_do_not_survive(self, tmp_path):
        db = str(tmp_path / "node.db")
        descriptor = simple_mote_descriptor(interval_ms=500,
                                            permanent=False)
        with GSNContainer("node", storage_path=db) as first:
            first.deploy(descriptor)
            first.run_for(2_000)
        with GSNContainer("node", storage_path=db) as second:
            second.deploy(descriptor)
            assert second.query(
                "select count(*) n from vs_probe").first()["n"] == 0


class TestDelayObservability:
    def test_network_delay_visible_in_quality_report(self):
        """Remote elements keep their producer timestamps; the consumer's
        quality monitor must see the transport delay, not have it hidden."""
        clock = VirtualClock()
        scheduler = EventScheduler(clock)
        network = PeerNetwork(scheduler=scheduler, latency_ms=1_500)
        producer = GSNContainer("p", network=network, clock=clock,
                                scheduler=scheduler)
        consumer = GSNContainer("c", network=network, clock=clock,
                                scheduler=scheduler)
        try:
            producer.deploy(simple_mote_descriptor(interval_ms=1_000))
            consumer.deploy("""
            <virtual-sensor name="mirror">
              <output-structure>
                <field name="temperature" type="integer"/>
              </output-structure>
              <input-stream name="in">
                <stream-source alias="r" storage-size="5">
                  <address wrapper="remote">
                    <predicate key="type" val="temperature"/>
                  </address>
                  <query>select * from wrapper</query>
                </stream-source>
                <query>select * from r</query>
              </input-stream>
            </virtual-sensor>
            """)
            scheduler.run_for(6_000)
            source = consumer.sensor("mirror").ism.stream("in").source("r")
            report = source.quality.report
            assert report.elements_seen > 0
            assert report.max_delay_ms == 1_500
            assert report.late_count == report.elements_seen  # all > 1s late
        finally:
            consumer.shutdown()
            producer.shutdown()


class TestSoak:
    def test_five_minute_mixed_soak(self):
        """A longer mixed run: several sensors at different rates, a
        subscription, two disconnect/reconnect cycles and one live
        reconfiguration. Invariants checked at the end."""
        with GSNContainer("soak") as node:
            fast = node.deploy(simple_mote_descriptor(
                name="fast", interval_ms=250, history="30s",
                disconnect_buffer=20))
            node.deploy(simple_mote_descriptor(
                name="slow", interval_ms=2_000, history="1h"))
            node.register_query(
                "select count(*) n from vs_fast", history="10s",
                name="volume",
            )

            node.run_for(60_000)

            source = fast.ism.stream("in").source("src")
            source.disconnect()
            node.run_for(10_000)
            source.reconnect()
            node.run_for(50_000)

            node.reconfigure(simple_mote_descriptor(
                name="fast", interval_ms=500, history="30s"))
            node.run_for(120_000)

            source = node.sensor("fast").ism.stream("in").source("src")
            source.disconnect()
            node.run_for(5_000)
            source.reconnect()
            node.run_for(55_000)

            # --- invariants -------------------------------------------------
            assert node.now() == 300_000
            slow = node.sensor("slow")
            assert slow.elements_produced == 150  # one per 2 s, unaffected
            assert slow.lifecycle.pool.tasks_failed == 0

            fast_now = node.sensor("fast")
            assert fast_now.lifecycle.state.value == "running"
            assert fast_now.lifecycle.pool.tasks_failed == 0

            # Retention bounded: 30 s of 500 ms cadence = 60 rows max.
            kept = node.query("select count(*) n from vs_fast").first()["n"]
            assert 0 < kept <= 61

            # Output timestamps strictly increasing per sensor.
            stamps = [r["timed"] for r in node.query(
                "select timed from vs_slow order by timed").to_dicts()]
            assert stamps == sorted(stamps)
            assert len(set(stamps)) == len(stamps)

            # The standing query fired for (almost) every fast element and
            # never saw more than its 10 s history window.
            queue = node.notifications.channel("queue")
            payloads = queue.drain()
            assert payloads, "subscription must have fired"
            max_seen = max(p["rows"][0]["n"] for p in payloads)
            assert max_seen <= 41  # 10 s / 250 ms + slack

            # Quality accounting matches the two injected outages.
            report = source.quality.report
            assert report.disconnect_count == 1  # second instance only
