"""Descriptor files on disk: the deployment artifact users actually edit.

Writes the documented example descriptors to disk and deploys them from
their file paths — the paper's "rapidly deploy a sensor network without
any programming effort just by providing a simple XML configuration
file" in its literal file form.
"""

import pytest

from repro import descriptor_from_file, descriptor_to_xml

from tests.conftest import simple_mote_descriptor

DESCRIPTOR_LIBRARY = {
    "averaged-temperature.xml": """
<virtual-sensor name="avg-temp" priority="10">
  <life-cycle pool-size="10" />
  <output-structure>
    <field name="temperature" type="integer"/>
  </output-structure>
  <storage permanent-storage="true" size="10s" />
  <input-stream name="dummy" rate="100">
    <stream-source alias="src1" sampling-rate="1"
                   storage-size="1h" disconnect-buffer="10">
      <address wrapper="mica2">
        <predicate key="interval" val="500"/>
      </address>
      <query>select avg(temperature) as temperature from WRAPPER</query>
    </stream-source>
    <query>select * from src1</query>
  </input-stream>
</virtual-sensor>
""",
    "entrance-rfid.xml": """
<virtual-sensor name="entrance">
  <output-structure>
    <field name="reader_id" type="integer"/>
    <field name="tag_id" type="varchar"/>
    <field name="signal_strength" type="double"/>
  </output-structure>
  <storage permanent-storage="true" size="1h"/>
  <addressing><predicate key="type" val="rfid"/></addressing>
  <input-stream name="in">
    <stream-source alias="reader" storage-size="1">
      <address wrapper="rfid">
        <predicate key="interval" val="250"/>
        <predicate key="tags" val="alice,bob"/>
        <predicate key="detection-rate" val="0.5"/>
      </address>
      <query>select * from wrapper</query>
    </stream-source>
    <query>select * from reader</query>
  </input-stream>
</virtual-sensor>
""",
    "hall-camera.xml": """
<virtual-sensor name="hall-cam">
  <output-structure>
    <field name="camera_id" type="integer"/>
    <field name="image" type="binary"/>
    <field name="width" type="integer"/>
    <field name="height" type="integer"/>
  </output-structure>
  <input-stream name="in">
    <stream-source alias="cam" storage-size="1">
      <address wrapper="camera">
        <predicate key="interval" val="1000"/>
        <predicate key="image-size" val="2048"/>
      </address>
      <query>select * from wrapper</query>
    </stream-source>
    <query>select * from cam</query>
  </input-stream>
</virtual-sensor>
""",
}


@pytest.fixture
def descriptor_dir(tmp_path):
    for name, xml in DESCRIPTOR_LIBRARY.items():
        (tmp_path / name).write_text(xml)
    return tmp_path


class TestFileDeployment:
    def test_every_library_descriptor_parses(self, descriptor_dir):
        for name in DESCRIPTOR_LIBRARY:
            descriptor = descriptor_from_file(str(descriptor_dir / name))
            assert descriptor.name

    def test_deploy_whole_directory(self, container, descriptor_dir):
        for path in sorted(descriptor_dir.glob("*.xml")):
            container.deploy(str(path))
        assert container.sensor_names() == ["avg-temp", "entrance",
                                            "hall-cam"]
        container.run_for(5_000)
        assert container.query(
            "select count(*) n from vs_avg_temp").first()["n"] == 10
        assert container.sensor("hall-cam").elements_produced == 5
        detections = container.query(
            "select count(*) n from vs_entrance").first()["n"]
        assert 0 < detections <= 20

    def test_missing_file(self, container):
        from repro.exceptions import DescriptorError
        with pytest.raises(DescriptorError):
            container.deploy("/nonexistent/sensor.xml")

    def test_file_roundtrip_via_serializer(self, tmp_path, container):
        descriptor = simple_mote_descriptor()
        path = tmp_path / "generated.xml"
        path.write_text(descriptor_to_xml(descriptor))
        sensor = container.deploy(str(path))
        assert sensor.descriptor == descriptor
