"""Integration tests for non-default execution modes: threaded pipeline
pools, wall-clock containers, custom registries, and the CLI runner."""

import time

import pytest

from repro import GSNContainer
from repro.wrappers.registry import WrapperRegistry

from tests.conftest import simple_mote_descriptor


class TestThreadedPools:
    def test_threaded_pipeline_produces_everything(self):
        with GSNContainer("threaded", synchronous=False) as node:
            from dataclasses import replace
            from repro.descriptors.model import LifeCycleConfig
            descriptor = replace(simple_mote_descriptor(interval_ms=100),
                                 lifecycle=LifeCycleConfig(pool_size=4))
            sensor = node.deploy(descriptor)
            node.run_for(5_000)
            sensor.lifecycle.pool.drain()
            assert sensor.elements_produced == 50
            assert sensor.lifecycle.pool.tasks_completed == 50
            assert sensor.lifecycle.pool.tasks_failed == 0

    def test_threaded_pool_survives_failing_tasks(self):
        with GSNContainer("threaded2", synchronous=False) as node:
            sensor = node.deploy(simple_mote_descriptor(interval_ms=100))
            sensor.output_table.append = _boom
            node.run_for(1_000)
            sensor.lifecycle.pool.drain()
            assert sensor.lifecycle.pool.tasks_failed == 10
            assert sensor.lifecycle.state.value == "running"


class TestWallClockMode:
    def test_manual_ticks_drive_pipeline(self):
        with GSNContainer("wall", simulated=False) as node:
            sensor = node.deploy(simple_mote_descriptor())
            wrapper = sensor.wrappers["src"]
            for __ in range(3):
                wrapper.tick()
                time.sleep(0.002)  # distinct wall timestamps
            assert sensor.elements_produced == 3
            rows = node.query(
                "select timed from vs_probe order by timed").to_dicts()
            stamps = [r["timed"] for r in rows]
            assert stamps == sorted(stamps)


class TestCustomRegistry:
    def test_container_with_private_registry(self):
        from repro.datatypes import DataType
        from repro.streams.schema import StreamSchema
        from repro.wrappers.base import PeriodicWrapper

        registry = WrapperRegistry()

        @registry.register
        class FixedWrapper(PeriodicWrapper):
            wrapper_name = "fixed"

            def output_schema(self):
                return StreamSchema.build(temperature=DataType.INTEGER)

            def produce(self, now):
                return {"temperature": 42}

        registry.register_alias("mica2", "fixed")  # swap the platform
        with GSNContainer("custom", registry=registry) as node:
            node.deploy(simple_mote_descriptor(interval_ms=500))
            node.run_for(1_000)
            rows = node.query(
                "select distinct temperature from vs_probe").to_dicts()
            assert rows == [{"temperature": 42}]


class TestCLI:
    def test_runner_ablations(self, capsys):
        from repro.experiments import runner
        # Use the cheap command to exercise parsing + dispatch.
        assert runner.main(["ablations"]) == 0
        out = capsys.readouterr().out
        assert "Ablation results" in out

    def test_runner_rejects_unknown(self):
        from repro.experiments import runner
        with pytest.raises(SystemExit):
            runner.main(["figure9"])

    DESCRIPTOR = """
    <virtual-sensor name="cli-probe">
      <output-structure><field name="value" type="double"/>
      </output-structure>
      <storage permanent-storage="true"/>
      <input-stream name="in">
        <stream-source alias="s" storage-size="1">
          <address wrapper="generator">
            <predicate key="signal" val="ramp"/>
            <predicate key="interval" val="500"/>
          </address>
          <query>select * from wrapper</query>
        </stream-source>
        <query>select value from s</query>
      </input-stream>
    </virtual-sensor>
    """

    def test_run_command_end_to_end(self, tmp_path, capsys):
        from repro.experiments import runner
        descriptor = tmp_path / "probe.xml"
        descriptor.write_text(self.DESCRIPTOR)
        dashboard = tmp_path / "node.html"
        code = runner.main([
            "run", str(descriptor), "--duration", "5s",
            "--query", "select count(*) as n from vs_cli_probe",
            "--dashboard", str(dashboard),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "deployed 'cli-probe'" in out
        assert "n" in out and "10" in out
        assert dashboard.read_text().startswith("<!DOCTYPE html>")

    def test_run_command_requires_descriptors(self, capsys):
        from repro.experiments import runner
        assert runner.main(["run"]) == 2


def _boom(element):
    raise RuntimeError("persistent storage offline")
