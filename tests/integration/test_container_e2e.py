"""End-to-end container tests: XML deploy -> stream -> query -> notify."""

import pytest

from repro import GSNContainer
from repro.exceptions import (
    ConfigurationError, DeploymentError, GSNError, ValidationError,
)

from tests.conftest import simple_mote_descriptor

XML = """
<virtual-sensor name="avg-temp">
  <output-structure>
    <field name="temperature" type="integer"/>
  </output-structure>
  <storage permanent-storage="true" size="1h"/>
  <input-stream name="input">
    <stream-source alias="src1" storage-size="10s">
      <address wrapper="mica2">
        <predicate key="interval" val="500"/>
      </address>
      <query>select avg(temperature) as temperature from wrapper</query>
    </stream-source>
    <query>select * from src1</query>
  </input-stream>
</virtual-sensor>
"""


class TestDeployAndRun:
    def test_xml_deploy_and_query(self, container):
        container.deploy(XML)
        container.run_for(5_000)
        result = container.query(
            "select count(*) as n, avg(temperature) as m from vs_avg_temp"
        )
        row = result.first()
        assert row["n"] == 10
        assert 15 <= row["m"] <= 30

    def test_deploy_from_file(self, container, tmp_path):
        path = tmp_path / "sensor.xml"
        path.write_text(XML)
        sensor = container.deploy(str(path))
        assert sensor.name == "avg-temp"

    def test_deploy_descriptor_object(self, container):
        container.deploy(simple_mote_descriptor())
        container.run_for(2_000)
        assert container.sensor("probe").elements_produced == 4

    def test_output_timestamps_monotone(self, container):
        container.deploy(XML)
        container.run_for(5_000)
        rows = container.query(
            "select timed from vs_avg_temp order by timed").to_dicts()
        stamps = [r["timed"] for r in rows]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)

    def test_undeploy_removes_table(self, container):
        container.deploy(XML)
        container.undeploy("avg-temp")
        with pytest.raises(GSNError):
            container.query("select * from vs_avg_temp")

    def test_redeploy_after_undeploy(self, container):
        container.deploy(XML)
        container.undeploy("avg-temp")
        container.deploy(XML)
        container.run_for(1_000)
        assert container.sensor("avg-temp").elements_produced == 2

    def test_bad_xml_rejected(self, container):
        with pytest.raises(GSNError):
            container.deploy("<virtual-sensor")

    def test_bad_semantics_rejected(self, container):
        bad = XML.replace("from src1", "from nowhere")
        with pytest.raises(ValidationError):
            container.deploy(bad)
        assert container.sensor_names() == []

    def test_duplicate_deploy_rejected(self, container):
        container.deploy(XML)
        with pytest.raises(DeploymentError):
            container.deploy(XML)


class TestQueriesAndSubscriptions:
    def test_adhoc_join_across_sensors(self, container):
        container.deploy(simple_mote_descriptor(name="a", interval_ms=500))
        container.deploy(simple_mote_descriptor(name="b", interval_ms=500))
        container.run_for(3_000)
        result = container.query(
            "select count(*) as n from vs_a x join vs_b y "
            "on x.timed = y.timed"
        )
        assert result.first()["n"] == 6

    def test_standing_query_fires_per_arrival(self, container):
        container.deploy(XML)
        container.register_query(
            "select max(temperature) as m from vs_avg_temp"
        )
        container.run_for(3_000)
        queue = container.notifications.channel("queue")
        assert queue.pending == 6  # one per produced element

    def test_unregister_stops_notifications(self, container):
        container.deploy(XML)
        sub = container.register_query("select * from vs_avg_temp")
        container.run_for(1_000)
        container.unregister_query(sub.id)
        queue = container.notifications.channel("queue")
        queue.drain()
        container.run_for(2_000)
        assert queue.pending == 0

    def test_custom_channel(self, container):
        from repro.notifications.channels import CallbackChannel
        hits = []
        container.notifications.add_channel(
            CallbackChannel("cb", hits.append))
        container.deploy(XML)
        container.register_query("select count(*) n from vs_avg_temp",
                                 channel="cb")
        container.run_for(1_500)
        assert len(hits) == 3
        assert hits[-1]["rows"] == [{"n": 3}]

    def test_retention_bounds_history(self, container):
        # 1h retention vs only 5 s of data: all rows retained; then a
        # tight window via a second sensor.
        container.deploy(simple_mote_descriptor(name="tight",
                                                interval_ms=200,
                                                history="2"))
        container.run_for(3_000)
        result = container.query("select count(*) n from vs_tight")
        assert result.first()["n"] == 2


class TestContainerLifecycle:
    def test_context_manager_shutdown(self):
        with GSNContainer("ctx") as node:
            node.deploy(XML)
        assert node._closed

    def test_shutdown_idempotent(self, container):
        container.deploy(XML)
        container.shutdown()
        container.shutdown()

    def test_run_for_requires_simulated(self):
        node = GSNContainer("wall", simulated=False)
        with pytest.raises(ConfigurationError):
            node.run_for(100)
        node.shutdown()

    def test_status_document(self, container):
        container.deploy(XML)
        container.run_for(1_000)
        status = container.status()
        assert status["name"] == "test"
        assert "avg-temp" in status["virtual_sensors"]["deployed"]
        assert status["storage"]["streams"] == ["vs_avg_temp"]

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            GSNContainer(" ")


class TestAccessControlIntegration:
    def test_enabled_container_requires_credentials(self):
        from repro.access.control import Permission
        with GSNContainer("secure", access_enabled=True) as node:
            principal, key = node.access.create_principal("ops")
            principal.grant(Permission.DEPLOY)
            principal.grant(Permission.READ)

            with pytest.raises(GSNError):
                node.deploy(XML)  # anonymous
            node.deploy(XML, client="ops", api_key=key)

            with pytest.raises(GSNError):
                node.query("select 1")
            assert node.query("select 1", client="ops",
                              api_key=key) is not None

    def test_scoped_deploy_permission(self):
        from repro.access.control import Permission
        with GSNContainer("secure", access_enabled=True) as node:
            principal, key = node.access.create_principal("limited")
            principal.grant(Permission.DEPLOY, scope="avg-temp")
            node.deploy(XML, client="limited", api_key=key)
            with pytest.raises(GSNError):
                node.deploy(
                    XML.replace('name="avg-temp"', 'name="other"'),
                    client="limited", api_key=key,
                )
