"""Integration tests for the web interface facade and the client API."""

import json

import pytest

from repro.datatypes import DataType
from repro.interfaces.client import GSNClient
from repro.interfaces.web import WebInterface

from tests.conftest import simple_mote_descriptor

XML = """
<virtual-sensor name="probe">
  <output-structure>
    <field name="temperature" type="integer"/>
  </output-structure>
  <storage permanent-storage="true"/>
  <input-stream name="in">
    <stream-source alias="src" storage-size="5s">
      <address wrapper="mica2"><predicate key="interval" val="500"/></address>
      <query>select avg(temperature) as temperature from wrapper</query>
    </stream-source>
    <query>select * from src</query>
  </input-stream>
</virtual-sensor>
"""


@pytest.fixture
def web(container):
    return WebInterface(container)


@pytest.fixture
def client(container):
    return GSNClient(container)


class TestWebInterface:
    def test_overview(self, container, web):
        container.deploy(XML)
        response = web.overview()
        assert response["status"] == 200
        assert response["virtual_sensors"] == ["probe"]
        assert "queue" in response["channels"]

    def test_deploy_endpoint(self, container, web):
        response = web.deploy(XML)
        assert response == {"status": 200, "deployed": "probe"}
        assert "probe" in container.sensor_names()

    def test_deploy_error_shape(self, web):
        response = web.deploy("<broken")
        assert response["status"] == 400
        assert response["error"] == "DescriptorError"
        assert "message" in response

    def test_sensor_endpoint(self, container, web):
        container.deploy(XML)
        container.run_for(1_000)
        response = web.sensor("probe")
        assert response["status"] == 200
        assert response["sensor"]["elements_produced"] == 2

    def test_sensor_404(self, web):
        assert web.sensor("ghost")["status"] == 404

    def test_latest_reading(self, container, web):
        container.deploy(XML)
        response = web.latest_reading("probe")
        assert response["latest"] is None
        container.run_for(1_000)
        response = web.latest_reading("probe")
        assert response["latest"]["values"]["temperature"] is not None

    def test_query_endpoint(self, container, web):
        container.deploy(XML)
        container.run_for(2_000)
        response = web.query("select count(*) as n from vs_probe")
        assert response["rows"] == [{"n": 4}]
        assert response["columns"] == ["n"]

    def test_query_renders_blobs_safely(self, container, web):
        from repro.simulation.networks import camera_descriptor
        container.deploy(camera_descriptor("cam", 1, interval_ms=500,
                                           image_size=256))
        container.run_for(1_000)
        response = web.query("select image from vs_cam limit 1")
        assert response["rows"][0]["image"] == "<256 bytes>"

    def test_query_error_shape(self, web):
        response = web.query("select * from nothing")
        assert response["status"] == 400

    def test_undeploy_and_reconfigure(self, container, web):
        web.deploy(XML)
        assert web.reconfigure(XML)["status"] == 200
        assert web.undeploy("probe")["status"] == 200
        assert web.undeploy("probe")["status"] == 400

    def test_subscription_endpoints(self, container, web):
        web.deploy(XML)
        response = web.register_query("select count(*) n from vs_probe",
                                      name="counter")
        assert response["status"] == 200
        sub_id = response["subscription"]["id"]
        container.run_for(1_000)
        assert web.unregister_query(sub_id)["status"] == 200
        assert web.unregister_query(sub_id)["status"] == 404

    def test_monitor_and_json(self, container, web):
        container.deploy(XML)
        container.run_for(500)
        response = web.monitor()
        text = web.to_json(response)
        parsed = json.loads(text)
        assert parsed["monitor"]["name"] == "test"

    def test_directory_endpoint_no_network(self, web):
        assert web.directory() == {"status": 200, "network": None}


class TestClient:
    def test_descriptor_builder_deploy(self, container, client):
        name = client.deploy(
            client.descriptor("built")
            .output(temperature=DataType.INTEGER)
            .storage(permanent=True)
            .predicate("type", "temp")
            .stream("in", "select * from s")
            .source("s", "mica2", {"interval": "500"},
                    query="select avg(temperature) as temperature "
                          "from wrapper", window="5s")
        )
        assert name == "built"
        container.run_for(1_000)
        assert client.query_sensor("built")

    def test_builder_requires_stream_before_source(self, client):
        builder = client.descriptor("x").output(v=DataType.INTEGER)
        with pytest.raises(Exception):
            builder.source("s", "mote")

    def test_query_returns_dicts(self, container, client):
        container.deploy(simple_mote_descriptor())
        container.run_for(1_000)
        rows = client.query("select * from vs_probe")
        assert isinstance(rows, list) and isinstance(rows[0], dict)

    def test_query_sensor_with_where(self, container, client):
        container.deploy(simple_mote_descriptor())
        container.run_for(2_000)
        rows = client.query_sensor("probe", where="temperature > -100")
        assert len(rows) == 4

    def test_on_output_callback(self, container, client):
        container.deploy(simple_mote_descriptor())
        seen = []
        client.on_output("probe", seen.append)
        container.run_for(1_000)
        assert len(seen) == 2

    def test_next_output_runs_simulation(self, container, client):
        container.deploy(simple_mote_descriptor(interval_ms=500))
        element = client.next_output("probe")
        assert element is not None
        assert container.now() == 500

    def test_next_output_timeout(self, container, client):
        sensor = container.deploy(simple_mote_descriptor(interval_ms=500))
        sensor.pause()
        assert client.next_output("probe", timeout_ms=2_000) is None

    def test_watch_and_notifications(self, container, client):
        container.deploy(simple_mote_descriptor(interval_ms=500))
        client.watch("select max(temperature) m from vs_probe",
                     name="peak")
        container.run_for(1_500)
        notifications = client.notifications()
        assert len(notifications) == 3
        assert notifications[0]["subscription"] == "peak"
