"""Integration: the Figure 5 demo deployment and reduced-scale runs of the
experiment harness (the full-scale runs live in benchmarks/)."""

import pytest

from repro.experiments.ablations import run_all
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.simulation.networks import build_demo_deployment
from repro.simulation.workload import NodeQueueModel, QueryWorkloadGenerator
from repro.sqlengine.parser import parse_select


class TestDemoDeployment:
    @pytest.fixture(scope="class")
    def demo(self):
        with build_demo_deployment(motes=4, cameras=2,
                                   rfid_readers=1) as deployment:
            deployment.run_for(5_000)
            yield deployment

    def test_topology(self, demo):
        assert len(demo.mote_sensors) == 4
        assert len(demo.camera_sensors) == 2
        assert len(demo.rfid_sensors) == 1
        # Node 1: RFID + half the motes; node 2: cameras; node 3: rest.
        assert set(demo.node1.sensor_names()) == {"rfid-1", "mote-1",
                                                  "mote-2"}
        assert set(demo.node2.sensor_names()) == {"camera-1", "camera-2"}
        assert set(demo.node3.sensor_names()) == {"mote-3", "mote-4"}

    def test_all_sensors_discoverable(self, demo):
        directory = demo.network.directory
        assert len(directory) == 7
        assert len(directory.lookup({"type": "mote"})) == 4
        assert len(directory.lookup({"type": "camera"})) == 2

    def test_motes_produce(self, demo):
        for name in demo.mote_sensors:
            host = demo.node1 if name in demo.node1.sensor_names() \
                else demo.node3
            assert host.sensor(name).elements_produced == 5

    def test_cross_network_query(self, demo):
        result = demo.node1.query(
            "select avg(light) as l, avg(temperature) as t from ("
            "select light, temperature from vs_mote_1 union all "
            "select light, temperature from vs_mote_2) motes"
        ).first()
        assert result["t"] is not None

    def test_rfid_manual_detection(self, demo):
        reader = demo.node1.sensor("rfid-1").wrappers["src"]
        before = demo.node1.sensor("rfid-1").elements_produced
        reader.detect("tag-alice")
        assert demo.node1.sensor("rfid-1").elements_produced == before + 1
        latest = demo.node1.sensor("rfid-1").latest_output()
        assert latest["tag_id"] == "tag-alice"


class TestQueueModel:
    def test_no_contention_mean_equals_service(self):
        model = NodeQueueModel(1)
        model.observe(0, 1.0)
        model.observe(100, 1.0)
        assert model.mean_ms == 1.0

    def test_batch_contention_queues(self):
        model = NodeQueueModel(1)
        for __ in range(4):
            model.observe(0, 1.0)
        # waits: 0,1,2,3 -> latencies 1,2,3,4
        assert model.mean_ms == 2.5
        assert model.max_ms == 4.0

    def test_multiple_workers_absorb_batch(self):
        model = NodeQueueModel(4)
        for __ in range(4):
            model.observe(0, 1.0)
        assert model.mean_ms == 1.0

    def test_bad_workers(self):
        with pytest.raises(ValueError):
            NodeQueueModel(0)


class TestWorkloadGenerator:
    def test_queries_parse(self):
        generator = QueryWorkloadGenerator("vs_s", lambda: 10_000_000,
                                           seed=5)
        for sql in generator.batch(50):
            statement = parse_select(sql)  # must not raise
            assert statement.where is not None

    def test_reproducible(self):
        a = QueryWorkloadGenerator("t", lambda: 1_000_000, seed=9)
        b = QueryWorkloadGenerator("t", lambda: 1_000_000, seed=9)
        assert a.batch(20) == b.batch(20)

    def test_history_bound_present(self):
        generator = QueryWorkloadGenerator("t", lambda: 5_000_000, seed=1)
        assert all("timed >=" in sql for sql in generator.batch(20))


class TestExperimentsReducedScale:
    def test_figure3_reduced(self):
        result = run_figure3(intervals=(50, 1_000), sizes=(100,),
                             device_count=3, duration_ms=1_000)
        series = result.series[100]
        assert len(series.points) == 2
        assert all(y > 0 for y in series.ys())

    def test_figure4_reduced(self):
        result = run_figure4(client_counts=(0, 10, 40), warmup_ms=2_000,
                             seed=1)
        points = dict(result.series.points)
        assert points[0] < points[40]
        assert result.table()  # renders

    def test_ablations_run(self):
        results = run_all()
        assert len(results) == 6
        for result in results:
            assert result.variants
            assert all(v >= 0 for v in result.variants.values())
