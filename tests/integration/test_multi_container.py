"""Multi-container integration: discovery, remote streaming, derived
sensors, sealed transport, latency/loss."""

import pytest

from repro import GSNContainer, PeerNetwork
from repro.exceptions import ValidationError
from repro.gsntime.clock import VirtualClock
from repro.gsntime.scheduler import EventScheduler

from tests.conftest import simple_mote_descriptor

MIRROR_XML = """
<virtual-sensor name="mirror">
  <output-structure>
    <field name="temperature" type="integer"/>
  </output-structure>
  <storage permanent-storage="true"/>
  <input-stream name="input">
    <stream-source alias="r" storage-size="5">
      <address wrapper="remote">
        <predicate key="type" val="temperature"/>
      </address>
      <query>select * from wrapper</query>
    </stream-source>
    <query>select avg(temperature) as temperature from r</query>
  </input-stream>
</virtual-sensor>
"""


@pytest.fixture
def deployment():
    clock = VirtualClock()
    scheduler = EventScheduler(clock)
    network = PeerNetwork(scheduler=scheduler)
    a = GSNContainer("node-a", network=network, clock=clock,
                     scheduler=scheduler)
    b = GSNContainer("node-b", network=network, clock=clock,
                     scheduler=scheduler)
    yield network, scheduler, a, b
    b.shutdown()
    a.shutdown()


class TestDiscovery:
    def test_deploy_publishes(self, deployment):
        network, __, a, __ = deployment
        a.deploy(simple_mote_descriptor())
        entry = network.directory.lookup_one({"type": "temperature"})
        assert entry.container == "node-a"
        assert entry.sensor == "probe"
        assert dict(entry.schema) == {"temperature": "integer"}

    def test_undeploy_unpublishes(self, deployment):
        network, __, a, __ = deployment
        a.deploy(simple_mote_descriptor())
        a.undeploy("probe")
        assert len(network.directory) == 0

    def test_shutdown_unpublishes_all(self, deployment):
        network, __, a, __ = deployment
        a.deploy(simple_mote_descriptor(name="x"))
        a.deploy(simple_mote_descriptor(name="y"))
        a.shutdown()
        assert len(network.directory) == 0


class TestRemoteStreaming:
    def test_mirror_sensor(self, deployment):
        __, scheduler, a, b = deployment
        a.deploy(simple_mote_descriptor(interval_ms=500))
        b.deploy(MIRROR_XML)
        scheduler.run_for(5_000)
        mirrored = b.query("select count(*) n from vs_mirror").first()["n"]
        assert mirrored == 10

    def test_remote_values_match_source(self, deployment):
        __, scheduler, a, b = deployment
        a.deploy(simple_mote_descriptor(interval_ms=1_000))
        b.deploy(MIRROR_XML)
        scheduler.run_for(4_000)
        source = a.query(
            "select temperature, timed from vs_probe order by timed"
        ).to_dicts()
        mirror = b.query(
            "select temperature, timed from vs_mirror order by timed"
        ).to_dicts()
        assert mirror == source

    def test_undeploy_consumer_detaches_producer(self, deployment):
        __, scheduler, a, b = deployment
        producer = a.deploy(simple_mote_descriptor(interval_ms=500))
        b.deploy(MIRROR_XML)
        scheduler.run_for(1_000)
        b.undeploy("mirror")
        before = a.peer.elements_forwarded
        scheduler.run_for(2_000)
        assert a.peer.elements_forwarded == before
        assert producer.elements_produced == 6

    def test_no_match_fails_deployment(self, deployment):
        __, __, __, b = deployment
        with pytest.raises(Exception, match="no virtual sensor matches"):
            b.deploy(MIRROR_XML)  # nothing published yet

    def test_remote_without_predicates_rejected(self, deployment):
        __, __, __, b = deployment
        bad = MIRROR_XML.replace(
            '<predicate key="type" val="temperature"/>', "")
        with pytest.raises(ValidationError):
            b.deploy(bad)


class TestTransportConditions:
    def test_latency_delays_elements(self):
        clock = VirtualClock()
        scheduler = EventScheduler(clock)
        network = PeerNetwork(scheduler=scheduler, latency_ms=200)
        a = GSNContainer("a", network=network, clock=clock,
                         scheduler=scheduler)
        b = GSNContainer("b", network=network, clock=clock,
                         scheduler=scheduler)
        try:
            a.deploy(simple_mote_descriptor(interval_ms=1_000))
            b.deploy(MIRROR_XML)
            scheduler.run_for(3_100)
            # Element produced at t=3000 is still in flight at t=3100;
            # earlier ones arrived.
            count = b.query("select count(*) n from vs_mirror").first()["n"]
            assert count == 2
        finally:
            b.shutdown()
            a.shutdown()

    def test_loss_drops_elements_but_stream_survives(self):
        clock = VirtualClock()
        scheduler = EventScheduler(clock)
        network = PeerNetwork(scheduler=scheduler, loss_rate=0.4, seed=3)
        a = GSNContainer("a", network=network, clock=clock,
                         scheduler=scheduler)
        b = GSNContainer("b", network=network, clock=clock,
                         scheduler=scheduler)
        try:
            a.deploy(simple_mote_descriptor(interval_ms=200))
            b.deploy(MIRROR_XML)
            scheduler.run_for(20_000)
            produced = a.sensor("probe").elements_produced
            mirrored = b.query(
                "select count(*) n from vs_mirror").first()["n"]
            assert 0 < mirrored < produced
            assert network.bus.dropped > 0
        finally:
            b.shutdown()
            a.shutdown()

    def test_sealed_transport_end_to_end(self):
        clock = VirtualClock()
        scheduler = EventScheduler(clock)
        network = PeerNetwork(scheduler=scheduler)
        a = GSNContainer("a", network=network, clock=clock,
                         scheduler=scheduler, seal="encrypt")
        b = GSNContainer("b", network=network, clock=clock,
                         scheduler=scheduler)
        try:
            a.deploy(simple_mote_descriptor(interval_ms=500))
            b.deploy(MIRROR_XML)
            scheduler.run_for(2_000)
            assert b.query("select count(*) n from vs_mirror"
                           ).first()["n"] == 4
            assert a.integrity.sealed == 4
            assert b.integrity.opened == 4
        finally:
            b.shutdown()
            a.shutdown()


class TestDerivedChains:
    def test_second_order_derivation(self, deployment):
        """A sensor derived from a sensor derived from hardware."""
        network, scheduler, a, b = deployment
        a.deploy(simple_mote_descriptor(interval_ms=500))
        b.deploy(MIRROR_XML)

        second = MIRROR_XML.replace('name="mirror"', 'name="second"')
        second = second.replace('val="temperature"', 'val="derived2"')
        # Publish the mirror under a findable predicate first:
        # mirror's addressing is empty, so match it by name instead.
        second = second.replace(
            '<predicate key="type" val="derived2"/>',
            '<predicate key="name" val="mirror"/>',
        )
        a.deploy(second)
        scheduler.run_for(4_000)
        count = a.query("select count(*) n from vs_second").first()["n"]
        assert count > 0
