"""End-to-end supervision: a worker thread that keeps crashing is
witnessed, restarted up to the budget, and then surfaces as a *degraded*
sensor in the container status — never as a silently-dead one."""

import contextlib
import time

import pytest

from repro import GSNContainer
from repro.analysis import crashwitness
from repro.interfaces.http_server import GSNHttpServer

from tests.conftest import simple_mote_descriptor


@contextlib.contextmanager
def session_expected():
    witness = crashwitness.active()
    if witness is None:
        yield
        return
    with witness.expected():
        yield


def wait_until(predicate, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def _corrupt(task):
    raise RuntimeError("worker heap corrupted")


class TestDegradedSensor:
    def test_crashing_worker_degrades_sensor_in_status(self, monkeypatch):
        with GSNContainer("supervised", synchronous=False) as node:
            sensor = node.deploy(simple_mote_descriptor(interval_ms=100))
            pool = sensor.lifecycle.pool
            monkeypatch.setattr(pool, "_run", _corrupt)
            with session_expected():
                # Each arrival kills one worker; the pool restarts
                # MAX_RESTARTS times, then degrades the sensor.
                node.run_for(2_000)
                assert wait_until(lambda: pool.degraded)
            assert sensor.status()["state"] == "degraded"
            assert sensor.lifecycle.is_processing  # degraded, not dead

            doc = node.status()
            sensors = doc["virtual_sensors"]["sensors"]
            assert sensors["probe"]["state"] == "degraded"
            witness_doc = doc["crash_witness"]
            if witness_doc is not None:
                assert witness_doc["by_owner"]["probe"] == \
                    pool.MAX_RESTARTS + 1

    def test_crashes_land_in_metrics_exposition(self, monkeypatch):
        if crashwitness.active() is None:
            pytest.skip("suite runs with GSN_CRASH_WITNESS=0")
        with GSNContainer("metered", synchronous=False) as node:
            sensor = node.deploy(simple_mote_descriptor(interval_ms=100))
            pool = sensor.lifecycle.pool
            monkeypatch.setattr(pool, "_run", _corrupt)
            with session_expected():
                node.run_for(1_000)
                assert wait_until(lambda: pool.workers_crashed >= 1)
            text = node.metrics_text()
            assert 'gsn_thread_crashes_total{owner="probe"}' in text
            assert 'gsn_fastpath_poisoned_total{sensor="probe"} 0' in text

    def test_healthy_container_reports_no_crashes(self):
        witness = crashwitness.active()
        before = witness.counts_by_owner().get("probe", 0) if witness else 0
        with GSNContainer("calm") as node:
            node.deploy(simple_mote_descriptor())
            node.run_for(1_000)
            doc = node.status()
            sensors = doc["virtual_sensors"]["sensors"]
            assert sensors["probe"]["state"] == "running"
            if doc["crash_witness"] is not None:
                # The witness is process-global: assert this container
                # added nothing, not that the count is zero.
                assert doc["crash_witness"]["by_owner"].get(
                    "probe", 0) == before


class TestHttpServerSupervision:
    def test_serve_loop_restarts_then_goes_unhealthy(self, monkeypatch):
        with GSNContainer("web") as node:
            server = GSNHttpServer(node)
            calls = []

            def exploding_serve():
                calls.append(1)
                raise RuntimeError("listener exploded")

            monkeypatch.setattr(server._server, "serve_forever",
                                exploding_serve)
            with session_expected():
                server.start()
                assert wait_until(
                    lambda: not server.status()["healthy"])
            status = server.status()
            assert status["crashes"] == server.MAX_RESTARTS + 1
            assert status["restarts"] == server.MAX_RESTARTS
            assert len(calls) == server.MAX_RESTARTS + 1
            witness = crashwitness.active()
            if witness is not None:
                assert witness.counts_by_owner().get(
                    "http-server", 0) >= 1
            server._server.server_close()

    def test_normal_lifecycle_stays_healthy(self):
        with GSNContainer("web2") as node:
            with GSNHttpServer(node) as server:
                status = server.status()
                assert status["healthy"] and status["serving"]
                assert status["crashes"] == 0
            assert not server.status()["serving"]
