"""Integration tests for the real HTTP layer (loopback only)."""

import json
import urllib.error
import urllib.request

import pytest

from repro import GSNContainer
from repro.interfaces.http_server import GSNHttpServer


XML = """
<virtual-sensor name="probe">
  <output-structure><field name="temperature" type="integer"/>
  </output-structure>
  <storage permanent-storage="true"/>
  <input-stream name="in">
    <stream-source alias="src" storage-size="5s">
      <address wrapper="mica2"><predicate key="interval" val="500"/></address>
      <query>select avg(temperature) as temperature from wrapper</query>
    </stream-source>
    <query>select * from src</query>
  </input-stream>
</virtual-sensor>
"""


@pytest.fixture
def served(container):
    with GSNHttpServer(container) as server:
        yield container, server


def get(server, path):
    try:
        with urllib.request.urlopen(server.url + path,
                                    timeout=5) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def post(server, path, body=b"", headers=None):
    request = urllib.request.Request(server.url + path, data=body,
                                     headers=headers or {}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHttpEndpoints:
    def test_overview(self, served):
        __, server = served
        status, body = get(server, "/overview")
        assert status == 200
        assert body["container"] == "test"

    def test_deploy_then_query_over_http(self, served):
        container, server = served
        status, body = post(server, "/deploy", XML.encode())
        assert (status, body["deployed"]) == (200, "probe")
        container.run_for(2_000)
        status, body = get(
            server, "/query?sql=select+count(*)+as+n+from+vs_probe")
        assert body["rows"] == [{"n": 4}]

    def test_dashboard_html_at_root(self, served):
        container, server = served
        container.deploy(XML)
        with urllib.request.urlopen(server.url + "/", timeout=5) as response:
            html = response.read().decode()
        assert response.headers["Content-Type"].startswith("text/html")
        assert "probe" in html

    def test_sensor_routes(self, served):
        container, server = served
        container.deploy(XML)
        container.run_for(1_000)
        assert get(server, "/sensors")[1]["sensors"] == ["probe"]
        status, body = get(server, "/sensors/probe")
        assert body["sensor"]["elements_produced"] == 2
        status, body = get(server, "/sensors/probe/latest")
        assert body["latest"]["values"]["temperature"] is not None
        assert get(server, "/sensors/ghost")[1]["status"] == 404

    def test_subscriptions_lifecycle(self, served):
        container, server = served
        container.deploy(XML)
        status, body = post(
            server,
            "/subscriptions?sql=select+count(*)+n+from+vs_probe"
            "&name=watch&history=2s",
        )
        assert status == 200
        sub_id = body["subscription"]["id"]
        assert body["subscription"]["history_ms"] == 2_000
        container.run_for(1_000)
        assert container.notifications.channel("queue").pending == 2

        request = urllib.request.Request(
            f"{server.url}/subscriptions/{sub_id}", method="DELETE")
        with urllib.request.urlopen(request, timeout=5) as response:
            assert json.loads(response.read())["unregistered"] == sub_id

    def test_explain_route(self, served):
        container, server = served
        container.deploy(XML)
        __, body = get(server, "/explain?sql=select+*+from+vs_probe")
        assert any("SCAN vs_probe" in line for line in body["plan"])

    def test_undeploy_route(self, served):
        container, server = served
        container.deploy(XML)
        status, body = post(server, "/undeploy/probe")
        assert body == {"status": 200, "undeployed": "probe"}
        assert container.sensor_names() == []

    def test_unknown_route_404(self, served):
        __, server = served
        try:
            urllib.request.urlopen(server.url + "/nope", timeout=5)
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
        else:
            pytest.fail("expected 404")

    def test_credentials_via_headers(self):
        from repro.access.control import Permission
        with GSNContainer("secure", access_enabled=True) as container:
            principal, key = container.access.create_principal("ops")
            principal.grant(Permission.DEPLOY)
            with GSNHttpServer(container) as server:
                status, body = post(server, "/deploy", XML.encode())
                assert body["error"] == "AccessDeniedError"
                status, body = post(
                    server, "/deploy", XML.encode(),
                    headers={"X-GSN-Client": "ops", "X-GSN-Key": key},
                )
                assert body == {"status": 200, "deployed": "probe"}

    def test_concurrent_requests(self, served):
        import concurrent.futures
        container, server = served
        container.deploy(XML)
        container.run_for(1_000)

        def hit(index):
            return get(server,
                       "/query?sql=select+count(*)+n+from+vs_probe")[1]

        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            results = list(pool.map(hit, range(32)))
        assert all(r["rows"] == [{"n": 2}] for r in results)
