"""The bundled examples must run cleanly end to end.

Each example's ``main()`` is imported and executed; stdout is captured by
pytest. These runs double as smoke tests of the full public API surface.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> None:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize("example", [
    "quickstart",
    "demo_deployment",
    "sensor_internet_join",
    "dynamic_reconfiguration",
    "record_and_replay",
])
def test_example_runs(example, capsys):
    run_example(example)
    output = capsys.readouterr().out
    assert output.strip(), "examples must narrate what they do"
