"""End-to-end: the race witness catches an unguarded counter under a
threaded worker pool.

This is the scenario the static pass (GSN801/GSN803) flags at lint time,
reproduced live: tasks running on pool workers bump a guarded counter
without taking the declared lock. With the suite-wide witness armed the
race turns into a deterministic, attributed violation at the faulty
write instead of a lost update.
"""

from __future__ import annotations

import pytest

from repro.vsensor.pool import WorkerPool


@pytest.fixture
def threaded_pool():
    with WorkerPool(size=2, synchronous=False, name="race-e2e") as pool:
        yield pool


def _require(race_witness):
    if race_witness is None:
        pytest.skip("race witness disabled (GSN_RACE_WITNESS=0)")
    return race_witness


class TestRaceWitnessUnderPool:
    def test_unguarded_counter_bump_is_witnessed(self, race_witness,
                                                 threaded_pool):
        witness = _require(race_witness)
        before = len(witness.violations)

        def racy_bump():
            # The bug under test: WorkerPool.tasks_completed declares
            # `guarded-by: WorkerPool._lock` and this write ignores it.
            threaded_pool.tasks_completed += 1

        with witness.expected():
            for __ in range(4):
                threaded_pool.submit(racy_bump)
            threaded_pool.drain()

        seen = [v for v in witness.violations[before:]
                if v.cls == "WorkerPool" and v.attr == "tasks_completed"]
        assert seen, "unguarded bump on a pool worker was not witnessed"
        assert all(v.expected for v in seen)
        assert any(v.thread.startswith("gsn-pool-race-e2e") for v in seen)

    def test_guarded_bump_is_clean(self, race_witness, threaded_pool):
        witness = _require(race_witness)
        before = len(witness.violations)

        def disciplined_bump():
            with threaded_pool._lock:
                threaded_pool.tasks_shed += 1

        for __ in range(4):
            threaded_pool.submit(disciplined_bump)
        threaded_pool.drain()

        assert not threaded_pool.errors()
        assert len(witness.violations) == before

    def test_pool_own_bookkeeping_is_witness_clean(self, race_witness,
                                                   threaded_pool):
        # The pool's own counters (tasks_completed, restarts, ...) run
        # under the witness for the whole suite; a burst of real tasks
        # must produce zero violations.
        witness = _require(race_witness)
        before = len(witness.violations)
        results = []
        for i in range(16):
            threaded_pool.submit(lambda i=i: results.append(i))
        threaded_pool.drain()
        assert sorted(results) == list(range(16))
        assert threaded_pool.status()["tasks_completed"] == 16
        assert len(witness.violations) == before
