"""Observability integration: /metrics exposition and stitched traces.

Two claims from the issue's acceptance criteria:

- ``/metrics`` serves valid Prometheus text exposition including the
  per-sensor per-stage latency histograms for all five pipeline steps;
- a two-container deployment produces a single trace id visible at
  ``/trace`` on *both* nodes (the remote hop stitches the trace).
"""

import dataclasses
import json
import re
import urllib.request

import pytest

from repro import GSNContainer, PeerNetwork
from repro.gsntime.clock import VirtualClock
from repro.gsntime.scheduler import EventScheduler
from repro.interfaces.http_server import GSNHttpServer
from repro.interfaces.web import WebInterface
from repro.metrics.tracing import PIPELINE_STEPS

from tests.conftest import simple_mote_descriptor

MIRROR_XML = """
<virtual-sensor name="mirror">
  <output-structure>
    <field name="temperature" type="integer"/>
  </output-structure>
  <storage permanent-storage="true"/>
  <input-stream name="input">
    <stream-source alias="r" storage-size="5">
      <address wrapper="remote">
        <predicate key="type" val="temperature"/>
      </address>
      <query>select * from wrapper</query>
    </stream-source>
    <query>select avg(temperature) as temperature from r</query>
  </input-stream>
</virtual-sensor>
"""

#: ``name{labels} value`` — the shape of every Prometheus sample line.
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? "
    r"(([-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)|[-+]Inf|NaN)$"
)


def parse_exposition(text: str):
    """Minimal format validation; returns {family_name: kind}."""
    types = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            __, __, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram"), line
            types[name] = kind
        else:
            assert _SAMPLE_LINE.match(line), f"malformed sample: {line!r}"
            base = line.split("{", 1)[0].split(" ", 1)[0]
            family = re.sub(r"_(bucket|sum|count)$", "", base)
            assert base in types or family in types, \
                f"sample {base!r} has no # TYPE"
    return types


@pytest.fixture
def deployment():
    clock = VirtualClock()
    scheduler = EventScheduler(clock)
    network = PeerNetwork(scheduler=scheduler)
    a = GSNContainer("node-a", network=network, clock=clock,
                     scheduler=scheduler)
    b = GSNContainer("node-b", network=network, clock=clock,
                     scheduler=scheduler)
    a.deploy(simple_mote_descriptor(interval_ms=500))
    b.deploy(MIRROR_XML)
    scheduler.run_for(5_000)
    yield scheduler, a, b
    b.shutdown()
    a.shutdown()


class TestMetricsEndpoint:
    def test_exposition_is_valid_and_covers_all_steps(self, deployment):
        __, a, __ = deployment
        text = a.metrics_text()
        types = parse_exposition(text)
        assert types["gsn_pipeline_step_latency_ms"] == "histogram"
        for step in PIPELINE_STEPS:
            assert (f'gsn_pipeline_step_latency_ms_count'
                    f'{{sensor="probe",step="{step}"}}') in text, step
        assert types["gsn_pipeline_trigger_latency_ms"] == "histogram"
        assert types["gsn_sensor_elements_produced_total"] == "counter"
        assert types["gsn_container_time_ms"] == "gauge"

    def test_remote_hop_histogram_on_subscriber(self, deployment):
        __, __, b = deployment
        text = b.metrics_text()
        assert ('gsn_remote_hop_latency_ms_count'
                '{producer="node-a/probe",subscriber="node-b"}') in text

    def test_http_scrape(self, deployment):
        __, a, __ = deployment
        with GSNHttpServer(a) as server:
            with urllib.request.urlopen(f"{server.url}/metrics") as response:
                assert response.status == 200
                content_type = response.headers["Content-Type"]
                assert content_type.startswith("text/plain")
                assert "version=0.0.4" in content_type
                body = response.read().decode("utf-8")
        assert parse_exposition(body) == parse_exposition(a.metrics_text())

    def test_monitor_includes_metrics_summary(self, deployment):
        __, a, __ = deployment
        status = a.status()
        assert status["metrics"]["families"] > 0
        assert status["traces"]["recorded"] > 0


class TestStitchedTraces:
    def test_one_trace_id_spans_both_nodes(self, deployment):
        __, a, b = deployment
        hop_spans = [s for s in b.traces.recent()
                     if s.name == "remote_hop"]
        assert hop_spans, "no remote hop was traced on node-b"
        trace_id = hop_spans[0].trace_id

        # The same id is visible on the producer (probe's trigger tree)
        # and on the consumer (the hop plus mirror's trigger tree).
        names_on_a = {s.name for s in a.traces.find(trace_id)}
        names_on_b = {s.name for s in b.traces.find(trace_id)}
        assert "trigger" in names_on_a
        assert "remote_hop" in names_on_b
        assert "trigger" in names_on_b

    def test_trigger_tree_has_all_pipeline_steps(self, deployment):
        __, a, __ = deployment
        roots = [s for s in a.traces.recent() if s.name == "trigger"]
        assert roots
        child_names = {c.name for c in roots[0].children}
        # step 1 (timestamp) is adopted from the ingest span; 2-5 are
        # recorded by the trigger itself.
        assert child_names >= set(PIPELINE_STEPS)

    def test_trace_endpoint_serves_the_stitched_trace(self, deployment):
        __, a, b = deployment
        hop = next(s for s in b.traces.recent() if s.name == "remote_hop")
        for container in (a, b):
            doc = WebInterface(container).traces(trace_id=hop.trace_id)
            assert doc["status"] == 200
            assert doc["trace_count"] >= 1
            assert all(t["trace_id"] == hop.trace_id
                       for t in doc["traces"])

    def test_trace_endpoint_over_http(self, deployment):
        __, a, __ = deployment
        with GSNHttpServer(a) as server:
            with urllib.request.urlopen(
                    f"{server.url}/trace?limit=3") as response:
                assert response.status == 200
                doc = json.loads(response.read().decode("utf-8"))
        assert doc["container"] == "node-a"
        assert 0 < doc["trace_count"] <= 3

    def test_partial_sampling_stitches_at_the_buffer_boundary(self):
        # The producer samples half its triggers; the mirror's own
        # sampling is OFF, so every trace on node-b exists only because
        # an upstream-sampled element arrived carrying its id — the
        # upstream decision wins. node-b's tiny ring forces evictions,
        # so stitching must survive the buffer boundary too.
        clock = VirtualClock()
        scheduler = EventScheduler(clock)
        network = PeerNetwork(scheduler=scheduler)
        a = GSNContainer("node-a", network=network, clock=clock,
                         scheduler=scheduler)
        b = GSNContainer("node-b", network=network, clock=clock,
                         scheduler=scheduler, trace_capacity=4)
        a.deploy(dataclasses.replace(simple_mote_descriptor(interval_ms=500),
                                     trace_sampling=0.5))
        b.deploy(MIRROR_XML.replace(
            '<virtual-sensor name="mirror">',
            '<virtual-sensor name="mirror" trace-sampling="0">'))
        scheduler.run_for(30_000)  # ~60 triggers upstream

        sampled_on_a = {s.trace_id for s in a.traces.recent(limit=256)}
        # Sampling really was partial: some of the ~60 triggers drew no.
        assert 0 < a.traces.status()["recorded"] < 60

        status_b = b.traces.status()
        assert status_b["recorded"] > status_b["capacity"]  # ring wrapped
        spans_b = b.traces.recent(limit=16)
        assert spans_b
        # Every surviving downstream tree inherits an upstream-sampled
        # id — the mirror (sampling 0) never mints its own.
        assert {s.trace_id for s in spans_b} <= sampled_on_a
        # The newest hop still stitches: both sides of the boundary
        # resolve the same id.
        hop = next(s for s in spans_b if s.name == "remote_hop")
        assert {s.name for s in b.traces.find(hop.trace_id)} >= \
            {"remote_hop"}
        assert any(s.name == "trigger"
                   for s in a.traces.find(hop.trace_id))
        b.shutdown()
        a.shutdown()

    def test_sampling_off_yields_no_traces(self):
        clock = VirtualClock()
        scheduler = EventScheduler(clock)
        container = GSNContainer("quiet", clock=clock, scheduler=scheduler)
        descriptor = dataclasses.replace(simple_mote_descriptor(),
                                         trace_sampling=0.0)
        container.deploy(descriptor)
        scheduler.run_for(3_000)
        assert len(container.traces) == 0
        # The instruments exist (created at deploy) but never fire.
        assert ('gsn_pipeline_trigger_latency_ms_count{sensor="probe"} 0'
                in container.metrics_text())
        container.shutdown()
