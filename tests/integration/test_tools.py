"""Integration tests for the trace tooling and HTML dashboard."""

import pytest

from repro.exceptions import GSNError
from repro.tools.dashboard import render_dashboard, write_dashboard
from repro.tools.trace import TraceRecorder, export_stream_csv, load_trace_csv
from repro.wrappers.replay import ReplayWrapper

from tests.conftest import simple_mote_descriptor


class TestTraceRecordReplay:
    def test_recorder_captures_live_elements(self, container):
        container.deploy(simple_mote_descriptor(interval_ms=500))
        recorder = TraceRecorder(container, "probe")
        container.run_for(2_000)
        recorder.stop()
        container.run_for(1_000)  # after stop: not recorded
        assert len(recorder) == 4
        assert all("timed" in row for row in recorder.rows)

    def test_record_save_load_replay_cycle(self, container, tmp_path):
        container.deploy(simple_mote_descriptor(interval_ms=500))
        recorder = TraceRecorder(container, "probe")
        container.run_for(3_000)
        recorder.stop()

        path = str(tmp_path / "trace.csv")
        assert recorder.save_csv(path) == 6

        # Feed it back through the replay wrapper: identical stream.
        wrapper = ReplayWrapper()
        wrapper.load_rows(load_trace_csv(path))
        wrapper.configure({})
        wrapper.start()
        replayed = []
        wrapper.add_listener(replayed.append)
        wrapper.replay_all()
        assert [e.timed for e in replayed] \
            == [row["timed"] for row in recorder.rows]
        assert [e["temperature"] for e in replayed] \
            == [row["temperature"] for row in recorder.rows]

    def test_export_retained_stream(self, container, tmp_path):
        container.deploy(simple_mote_descriptor(interval_ms=500))
        container.run_for(2_000)
        path = str(tmp_path / "export.csv")
        assert export_stream_csv(container, "probe", path) == 4
        rows = load_trace_csv(path)
        assert len(rows) == 4
        assert isinstance(rows[0]["temperature"], int)

    def test_export_empty_raises(self, container, tmp_path):
        container.deploy(simple_mote_descriptor())
        with pytest.raises(GSNError):
            export_stream_csv(container, "probe",
                              str(tmp_path / "empty.csv"))

    def test_binary_fields_roundtrip(self, container, tmp_path):
        from repro.simulation.networks import camera_descriptor
        container.deploy(camera_descriptor("cam", 1, interval_ms=500,
                                           image_size=128))
        container.run_for(1_000)
        path = str(tmp_path / "cam.csv")
        export_stream_csv(container, "cam", path)
        rows = load_trace_csv(path)
        assert isinstance(rows[0]["image"], bytes)
        assert len(rows[0]["image"]) == 128


class TestDashboard:
    def test_renders_sensors_and_subscriptions(self, container):
        container.deploy(simple_mote_descriptor(interval_ms=500))
        container.register_query("select count(*) n from vs_probe",
                                 name="counter")
        container.run_for(2_000)
        html = render_dashboard(container)
        assert html.startswith("<!DOCTYPE html>")
        assert "probe" in html
        assert "counter" in html
        assert "mica2" in html
        assert "plan-cache hit ratio" in html

    def test_renders_empty_container(self, container):
        html = render_dashboard(container)
        assert "none deployed" in html

    def test_escapes_untrusted_names(self, container):
        container.deploy(simple_mote_descriptor())
        container.register_query("select 1", name="<script>alert(1)</script>")
        container.run_for(500)
        html = render_dashboard(container)
        assert "<script>alert" not in html
        assert "&lt;script&gt;" in html

    def test_write_to_disk(self, container, tmp_path):
        container.deploy(simple_mote_descriptor())
        path = tmp_path / "dash.html"
        write_dashboard(container, str(path))
        assert path.read_text().startswith("<!DOCTYPE html>")

    def test_peer_section_present_with_network(self):
        from repro import GSNContainer, PeerNetwork
        network = PeerNetwork()
        with GSNContainer("nodeweb", network=network) as node:
            node.deploy(simple_mote_descriptor())
            html = render_dashboard(node)
            assert "Peer network" in html
