"""Integration tests for the asyncio batched-ingestion gateway."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.interfaces.async_gateway import AsyncIngestGateway

from ..conftest import simple_mote_descriptor


def post(url, payload):
    body = json.dumps(payload).encode("utf-8") \
        if not isinstance(payload, bytes) else payload
    request = urllib.request.Request(
        url, data=body, headers={"Connection": "close"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get(url):
    request = urllib.request.Request(
        url, headers={"Connection": "close"})
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def wait_until(predicate, timeout=5.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    pytest.fail(f"timed out waiting for {message}")


@pytest.fixture
def deployed(container):
    container.deploy(simple_mote_descriptor())
    return container


@pytest.fixture
def gateway(deployed):
    with AsyncIngestGateway(deployed, max_batch=8,
                            max_latency_ms=2.0) as gw:
        yield gw


class TestIngestEndToEnd:
    def test_batch_post_reaches_the_sensor(self, deployed, gateway):
        outputs = []
        deployed.sensor("probe").add_listener(outputs.append)
        tuples = [{"temperature": i} for i in range(20)]
        status, body = post(gateway.url + "/ingest/probe/in/src", tuples)
        assert (status, body) == (202, {"accepted": 20})
        wait_until(lambda: gateway.status()["tuples_delivered"] == 20,
                   message="drain delivery")
        report = gateway.status()
        # 20 tuples at max_batch=8 → chunks of 8/8/4.
        assert report["batches_flushed"] == 3
        assert report["batches_delivered"] == 3
        assert report["tuples_accepted"] == 20
        assert report["shed_tuples"] == 0
        wait_until(lambda: outputs, message="sensor output")
        assert outputs[0].values["temperature"] is not None

    def test_single_object_body(self, deployed, gateway):
        status, body = post(gateway.url + "/ingest/probe/in/src",
                            {"temperature": 7})
        assert (status, body) == (202, {"accepted": 1})
        wait_until(lambda: gateway.status()["tuples_delivered"] == 1,
                   message="drain delivery")

    def test_rows_land_in_permanent_storage(self, deployed, gateway):
        post(gateway.url + "/ingest/probe/in/src",
             [{"temperature": i} for i in range(8)])
        wait_until(lambda: gateway.status()["tuples_delivered"] == 8,
                   message="drain delivery")
        row = deployed.query("select count(*) as n from vs_probe").first()
        assert row["n"] >= 1

    def test_status_route(self, deployed, gateway):
        post(gateway.url + "/ingest/probe/in/src", {"temperature": 1})
        status, body = get(gateway.url + "/status")
        assert status == 200
        assert body["tuples_accepted"] == 1
        assert body["max_batch"] == 8
        assert "handoff_depth" in body


class TestRequestValidation:
    def test_invalid_json_is_400(self, deployed, gateway):
        status, body = post(gateway.url + "/ingest/probe/in/src",
                            b"{not json")
        assert (status, body["error"]) == (400, "BadRequest")
        assert gateway.status()["request_errors"] == 1

    def test_non_object_items_are_400(self, deployed, gateway):
        status, body = post(gateway.url + "/ingest/probe/in/src",
                            [1, 2, 3])
        assert (status, body["error"]) == (400, "BadRequest")

    def test_malformed_ingest_path_is_404(self, deployed, gateway):
        status, body = post(gateway.url + "/ingest/probe", {"t": 1})
        assert (status, body["error"]) == (404, "NotFound")

    def test_unknown_route_is_404(self, deployed, gateway):
        status, __ = get(gateway.url + "/nope")
        assert status == 404


class TestShedPolicy:
    def test_unknown_sensor_sheds_and_records_flight_event(
            self, deployed, gateway):
        status, body = post(gateway.url + "/ingest/ghost/in/src",
                            [{"temperature": 1}, {"temperature": 2}])
        assert (status, body) == (202, {"accepted": 2})
        wait_until(
            lambda: gateway.status()["tuples_shed_unknown"] == 2,
            message="unknown-sensor shed")
        kinds = [event.kind for event in deployed.flight.events()]
        assert "ingest_unknown_sensor" in kinds

    def test_handoff_overflow_sheds_at_the_loop(
            self, deployed, monkeypatch):
        release = threading.Event()
        sensor = deployed.sensor("probe")
        monkeypatch.setattr(
            sensor, "ingest_batch",
            lambda *args: release.wait(5) and 0)
        with AsyncIngestGateway(deployed, max_batch=1,
                                max_latency_ms=1.0,
                                handoff_capacity=1) as gateway:
            # First batch parks in delivery, second fills the hand-off
            # queue, later ones must shed at the loop.
            for index in range(8):
                post(gateway.url + "/ingest/probe/in/src",
                     {"temperature": index})
            wait_until(lambda: gateway.status()["shed_tuples"] > 0,
                       message="hand-off shed")
            release.set()
        assert gateway.status()["shed_batches"] > 0


class TestLifecycleAndObservability:
    def test_health_check_registration(self, deployed):
        gateway = AsyncIngestGateway(deployed)
        assert "ingest-gateway" not in deployed.health.check_names()
        with gateway:
            assert "ingest-gateway" in deployed.health.check_names()
            report = deployed.health.report()
            checks = report["checks"]
            assert checks["ingest-gateway"]["status"] == "ok"
        assert "ingest-gateway" not in deployed.health.check_names()

    def test_metric_families_exposed(self, deployed, gateway):
        post(gateway.url + "/ingest/probe/in/src", {"temperature": 1})
        wait_until(lambda: gateway.status()["tuples_delivered"] == 1,
                   message="drain delivery")
        names = {snap.name for snap in deployed.metrics.collect()}
        assert {"gsn_ingest_tuples_total", "gsn_ingest_batches_total",
                "gsn_ingest_errors_total",
                "gsn_ingest_handoff_depth"} <= names
        tuples = next(snap for snap in deployed.metrics.collect()
                      if snap.name == "gsn_ingest_tuples_total")
        by_stage = {labels["stage"]: value
                    for labels, value in tuples.samples}
        assert by_stage["accepted"] == 1
        assert by_stage["delivered"] == 1

    def test_start_records_flight_event(self, deployed, gateway):
        kinds = [event.kind for event in deployed.flight.events()]
        assert "ingest_start" in kinds

    def test_stop_is_idempotent_and_restartable(self, deployed):
        gateway = AsyncIngestGateway(deployed)
        gateway.start()
        gateway.stop()
        gateway.stop()
        gateway.start()
        try:
            status, __ = get(gateway.url + "/status")
            assert status == 200
        finally:
            gateway.stop()

    def test_status_reports_serving_flag(self, deployed):
        gateway = AsyncIngestGateway(deployed)
        with gateway:
            assert gateway.status()["serving"] is True
            assert gateway.status()["healthy"] is True
        assert gateway.status()["serving"] is False
