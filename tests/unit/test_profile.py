"""Unit tests for the sampling profiler: sweeps, attribution, collapsed
output, ownership mapping, and the overhead accounting."""

import threading

import pytest

from repro.metrics.profile import (
    OVERHEAD_BUDGET_PERCENT,
    SamplingProfiler,
    default_owner,
)


class TestOwnerMapping:
    @pytest.mark.parametrize("thread_name,owner", [
        ("gsn-pool-probe-0", "probe"),
        ("gsn-pool-wind-meter-12", "wind-meter"),
        ("gsn-http", "http-server"),
        ("gsn-profiler", "profiler"),
        ("MainThread", "main"),
        ("Thread-7", "other"),
    ])
    def test_thread_names_map_to_components(self, thread_name, owner):
        assert default_owner(thread_name) == owner


class _ParkedThread:
    """A helper thread parked in a recognizably-named function."""

    def __init__(self, name="gsn-pool-probe-0"):
        self._ready = threading.Event()
        self._release = threading.Event()
        self._thread = threading.Thread(target=self._park, name=name,
                                        daemon=True)

    def _park(self):
        self._parked_marker_frame()

    def _parked_marker_frame(self):
        self._ready.set()
        self._release.wait(timeout=30.0)

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=5.0)
        return self

    def __exit__(self, *exc_info):
        self._release.set()
        self._thread.join(timeout=5.0)


class TestSweeps:
    def test_sample_once_attributes_by_thread_owner(self):
        profiler = SamplingProfiler(hz=10.0)
        with _ParkedThread("gsn-pool-probe-0"):
            taken = profiler.sample_once()
        assert taken >= 1  # at least this test's own main thread + worker
        owners = profiler.by_owner()
        assert owners.get("probe", 0) >= 1
        status = profiler.status()
        assert status["sweeps"] == 1
        assert status["samples"] == taken

    def test_collapsed_output_is_flamegraph_shaped(self):
        profiler = SamplingProfiler(hz=10.0)
        with _ParkedThread("gsn-pool-probe-0"):
            profiler.sample_once()
        lines = profiler.collapsed().splitlines()
        assert lines
        for line in lines:
            stack, __, count = line.rpartition(" ")
            assert count.isdigit()
            assert ";" in stack  # owner;frame;...
        joined = "\n".join(lines)
        assert "_parked_marker_frame" in joined
        assert joined.startswith(joined.split(";")[0])

    def test_hot_stacks_are_sorted_by_count(self):
        profiler = SamplingProfiler(hz=10.0)
        with _ParkedThread():
            for __ in range(3):
                profiler.sample_once()
        hot = profiler.hot_stacks(limit=100)
        counts = [doc["samples"] for doc in hot]
        assert counts == sorted(counts, reverse=True)

    def test_stack_table_is_bounded(self):
        profiler = SamplingProfiler(hz=10.0, max_stacks=1)
        with _ParkedThread():
            profiler.sample_once()
        assert len(profiler.hot_stacks(limit=100)) == 1
        # Anything beyond the bound is counted, not silently lost.
        if profiler.status()["samples"] > 1:
            assert profiler.status()["dropped_stacks"] >= 1

    def test_profiler_never_samples_itself(self):
        profiler = SamplingProfiler(hz=10.0)
        profiler.sample_once()
        assert "profiler" not in profiler.by_owner()


class TestBackgroundThread:
    def test_start_stop_lifecycle(self):
        profiler = SamplingProfiler(hz=200.0)
        assert not profiler.running
        profiler.start()
        try:
            assert profiler.running
            deadline = threading.Event()
            deadline.wait(0.1)
        finally:
            profiler.stop()
        assert not profiler.running
        assert profiler.status()["sweeps"] >= 1

    def test_start_is_idempotent(self):
        profiler = SamplingProfiler(hz=200.0)
        try:
            assert profiler.start() is profiler.start()
        finally:
            profiler.stop()

    def test_burst_sampling_without_background_thread(self):
        # The burst caller is skipped (it is mid-profiling-request), so
        # park another thread for the sweep to see.
        profiler = SamplingProfiler(hz=100.0)
        with _ParkedThread():
            taken = profiler.sample_burst(0.05)
        assert taken >= 1
        assert not profiler.running


class TestOverhead:
    def test_overhead_accounting_is_populated(self):
        profiler = SamplingProfiler(hz=50.0)
        with _ParkedThread():
            for __ in range(5):
                profiler.sample_once()
        status = profiler.status()
        # No wall segment ran: the projection (mean sweep x rate) is used.
        assert status["overhead_percent"] >= 0.0
        assert status["overhead_budget_percent"] == OVERHEAD_BUDGET_PERCENT

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0.0)
