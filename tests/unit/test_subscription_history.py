"""Unit + integration tests for subscription history windows."""

import pytest

from repro.exceptions import ValidationError
from repro.gsntime.clock import VirtualClock
from repro.notifications.manager import NotificationManager
from repro.query.processor import QueryProcessor
from repro.query.repository import QueryRepository
from repro.sqlengine.executor import Catalog
from repro.sqlengine.relation import Relation

from tests.conftest import simple_mote_descriptor


def make_catalog():
    # Elements at t = 1000, 2000, ..., 10000.
    return Catalog({
        "vs_s": Relation(["v", "timed"],
                         [(i, i * 1_000) for i in range(1, 11)]),
    })


@pytest.fixture
def repo():
    clock = VirtualClock(10_000)
    return QueryRepository(QueryProcessor(make_catalog),
                           NotificationManager(), clock)


class TestHistoryWindows:
    def test_history_restricts_visible_rows(self, repo):
        sub = repo.register("select count(*) n from vs_s", history="3s")
        repo.data_arrived("vs_s")
        # now = 10_000, window (7000, 10000]: t = 8000, 9000, 10000.
        assert sub.last_result.to_dicts() == [{"n": 3}]

    def test_no_history_sees_everything(self, repo):
        sub = repo.register("select count(*) n from vs_s")
        repo.data_arrived("vs_s")
        assert sub.last_result.to_dicts() == [{"n": 10}]

    def test_mixed_subscriptions_one_arrival(self, repo):
        bounded = repo.register("select count(*) n from vs_s",
                                history="1s")
        unbounded = repo.register("select count(*) n from vs_s")
        repo.data_arrived("vs_s")
        assert bounded.last_result.to_dicts() == [{"n": 1}]
        assert unbounded.last_result.to_dicts() == [{"n": 10}]

    def test_bad_history_rejected(self, repo):
        with pytest.raises(ValidationError, match="history"):
            repo.register("select 1", history="yesterday")

    def test_history_in_summary(self, repo):
        sub = repo.register("select 1", history="5s")
        assert sub.summary()["history_ms"] == 5_000


class TestContainerIntegration:
    def test_active_query_last_10_minutes(self, container):
        """The demo's flagship active query: averages over the last
        window only, even though retention holds more."""
        container.deploy(simple_mote_descriptor(interval_ms=500,
                                                history="1h"))
        sub = container.register_query(
            "select count(*) n from vs_probe", history="2s",
        )
        container.run_for(10_000)
        # At the final arrival, the 2 s window holds 4 elements
        # (500 ms cadence, window (t-2000, t]).
        assert sub.last_result.to_dicts() == [{"n": 4}]

    def test_web_interface_passes_history(self, container):
        from repro.interfaces.web import WebInterface
        container.deploy(simple_mote_descriptor(interval_ms=500))
        web = WebInterface(container)
        response = web.register_query("select count(*) n from vs_probe",
                                      history="1s")
        assert response["status"] == 200
        assert response["subscription"]["history_ms"] == 1_000
