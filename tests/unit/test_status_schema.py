"""The unified status-document schema.

Every component's ``status()`` shares four documented keys (see
``repro.status``): ``name`` (str), ``state`` (str), ``counters``
(dict of int-valued counters) and ``uptime_ms`` (int >= 0). Legacy
keys remain alongside, so this asserts the shared contract only.
"""

import pytest

from repro import GSNContainer, PeerNetwork
from repro.gsntime.clock import VirtualClock
from repro.gsntime.scheduler import EventScheduler
from repro.status import SHARED_STATUS_KEYS, UptimeTracker, status_doc

from tests.conftest import simple_mote_descriptor


def assert_shared_schema(doc: dict, source: str) -> None:
    for key in SHARED_STATUS_KEYS:
        assert key in doc, f"{source}: missing shared key {key!r}"
    assert isinstance(doc["name"], str) and doc["name"], source
    assert isinstance(doc["state"], str) and doc["state"], source
    assert isinstance(doc["counters"], dict), source
    for counter, value in doc["counters"].items():
        assert isinstance(counter, str), source
        assert isinstance(value, int), f"{source}: counter {counter!r}"
    assert isinstance(doc["uptime_ms"], int), source
    assert doc["uptime_ms"] >= 0, source


class TestStatusDoc:
    def test_shared_keys_constant(self):
        assert SHARED_STATUS_KEYS == ("name", "state", "counters",
                                      "uptime_ms")

    def test_status_doc_builds_schema(self):
        doc = status_doc("thing", "running", counters={"n": 1},
                         uptime_ms=5, extra="kept")
        assert_shared_schema(doc, "status_doc")
        assert doc["extra"] == "kept"

    def test_status_doc_rejects_shared_key_collision(self):
        with pytest.raises((TypeError, ValueError)):
            status_doc("thing", "running", **{"name": "shadow"})

    def test_uptime_tracker_is_monotonic(self):
        tracker = UptimeTracker()
        first = tracker.uptime_ms()
        assert first >= 0
        assert tracker.uptime_ms() >= first


class TestComponentStatuses:
    """Every component of a live two-node deployment follows the schema."""

    @pytest.fixture
    def deployment(self):
        clock = VirtualClock()
        scheduler = EventScheduler(clock)
        network = PeerNetwork(scheduler=scheduler)
        container = GSNContainer("node-a", network=network, clock=clock,
                                 scheduler=scheduler)
        container.deploy(simple_mote_descriptor())
        scheduler.run_for(2_000)
        yield network, container
        container.shutdown()

    def test_every_status_document(self, deployment):
        network, container = deployment
        sensor = container.sensor("probe")
        documents = {
            "container": container.status(),
            "virtual_sensor": sensor.status(),
            "lifecycle": sensor.lifecycle.status(),
            "vsm": container.vsm.status(),
            "query_processor": container.processor.status(),
            "query_repository": container.repository.status(),
            "notifications": container.notifications.status(),
            "access": container.access.status(),
            "integrity": container.integrity.status(),
            "message_bus": network.bus.status(),
            "peer_network": network.status(),
            "peer_node": container.peer.status(),
        }
        for source, doc in documents.items():
            assert_shared_schema(doc, source)

    def test_container_counters_reflect_activity(self, deployment):
        __, container = deployment
        counters = container.status()["counters"]
        assert counters["sensors_deployed"] == 1
        assert counters["deploy_count"] == 1
