"""Unit tests for the ASCII plot renderer."""

from repro.metrics.ascii_plot import plot_series
from repro.metrics.report import Series


def make_series(label, points):
    series = Series(label)
    for x, y in points:
        series.add(x, y)
    return series


class TestPlot:
    def test_empty(self):
        assert plot_series([Series("none")]) == "(no data)"

    def test_glyphs_and_legend(self):
        a = make_series("alpha", [(0, 1), (10, 2)])
        b = make_series("beta", [(0, 2), (10, 1)])
        chart = plot_series([a, b])
        assert "o=alpha" in chart
        assert "x=beta" in chart
        assert chart.count("o") >= 2

    def test_axis_extents_labelled(self):
        series = make_series("s", [(5, 10), (500, 90)])
        chart = plot_series([series], x_label="n")
        assert "5" in chart and "500" in chart
        assert "10" in chart and "90" in chart
        assert "(n →" in chart

    def test_log_scale_spreads_small_values(self):
        series = make_series("s", [(1, 0.1), (2, 1.0), (3, 1000.0)])
        linear = plot_series([series])
        logged = plot_series([series], log_y=True)
        assert "log y" in logged and "log y" not in linear

        def row_of(chart, glyph="o"):
            grid_lines = [line for line in chart.splitlines()
                          if "|" in line]
            return [i for i, line in enumerate(grid_lines)
                    if glyph in line.split("|", 1)[1]]

        # On the log chart the three points occupy three distinct rows;
        # linearly, 0.1 and 1.0 collapse onto the bottom row.
        assert len(row_of(logged)) == 3
        assert len(row_of(linear)) == 2

    def test_monotone_series_renders_monotone(self):
        series = make_series("s", [(x, x * 2.0) for x in range(10)])
        chart = plot_series([series], width=40, height=10)
        positions = []
        grid_lines = [line for line in chart.splitlines() if "|" in line]
        for row, line in enumerate(grid_lines):
            body = line.split("|", 1)[1]
            for column, char in enumerate(body):
                if char == "o":
                    positions.append((column, row))
        positions.sort()
        rows = [row for __, row in positions]
        assert rows == sorted(rows, reverse=True)  # up and to the right

    def test_constant_series(self):
        series = make_series("flat", [(0, 5), (10, 5)])
        chart = plot_series([series])
        assert "o" in chart
