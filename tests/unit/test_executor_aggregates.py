"""Unit tests for aggregation, GROUP BY/HAVING, set operations, and
subqueries."""

import pytest

from repro.exceptions import SQLExecutionError, SQLPlanError
from repro.sqlengine.executor import Catalog, execute
from repro.sqlengine.parser import parse_select
from repro.sqlengine.planner import plan_select
from repro.sqlengine.relation import Relation


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register("t", Relation(
        ["grp", "v", "timed"],
        [("a", 10, 1), ("a", 20, 2), ("b", 30, 3), ("b", None, 4),
         ("c", 50, 5)],
    ))
    return cat


def rows(catalog, sql):
    return execute(sql, catalog).to_dicts()


class TestPlainAggregates:
    def test_global_aggregates(self, catalog):
        result = rows(catalog,
                      "select count(*) as n, count(v) as nv, sum(v) as s, "
                      "avg(v) as a, min(v) as lo, max(v) as hi from t")
        assert result == [{"n": 5, "nv": 4, "s": 110, "a": 27.5,
                           "lo": 10, "hi": 50}]

    def test_aggregates_over_empty_input(self, catalog):
        result = rows(catalog,
                      "select count(*) as n, avg(v) as a from t "
                      "where v > 999")
        assert result == [{"n": 0, "a": None}]

    def test_count_distinct(self, catalog):
        catalog.register("d", Relation(["x"], [(1,), (1,), (2,), (None,)]))
        assert rows(catalog, "select count(distinct x) as n from d") \
            == [{"n": 2}]

    def test_stddev_median_group_concat(self, catalog):
        result = rows(catalog,
                      "select median(v) as med, group_concat(grp) as g "
                      "from t where v is not null")
        assert result[0]["med"] == 25.0
        assert result[0]["g"] == "a,a,b,c"

    def test_first_last(self, catalog):
        assert rows(catalog,
                    "select first(v) as f, last(v) as l from t"
                    ) == [{"f": 10, "l": 50}]

    def test_aggregate_arity_enforced(self, catalog):
        with pytest.raises(SQLExecutionError):
            execute("select avg(v, v) from t", catalog)

    def test_star_only_for_count(self, catalog):
        with pytest.raises(SQLExecutionError):
            execute("select sum(*) from t", catalog)

    def test_aggregate_of_expression(self, catalog):
        assert rows(catalog, "select sum(v * 2) as s from t") \
            == [{"s": 220}]

    def test_expression_of_aggregate(self, catalog):
        assert rows(catalog, "select max(v) - min(v) as spread from t") \
            == [{"spread": 40}]


class TestGroupBy:
    def test_grouping(self, catalog):
        result = rows(catalog,
                      "select grp, count(*) as n, sum(v) as s from t "
                      "group by grp order by grp")
        assert result == [
            {"grp": "a", "n": 2, "s": 30},
            {"grp": "b", "n": 2, "s": 30},
            {"grp": "c", "n": 1, "s": 50},
        ]

    def test_group_by_expression(self, catalog):
        result = rows(catalog,
                      "select v % 20 as k, count(*) as n from t "
                      "where v is not null group by v % 20 order by k")
        assert result == [{"k": 0, "n": 1}, {"k": 10, "n": 3}]

    def test_having(self, catalog):
        result = rows(catalog,
                      "select grp from t group by grp "
                      "having count(v) > 1 order by grp")
        assert [r["grp"] for r in result] == ["a"]

    def test_having_without_group_or_aggregate_rejected(self, catalog):
        with pytest.raises(SQLPlanError):
            plan_select(parse_select("select v from t having v > 1"))

    def test_group_by_empty_input_yields_no_rows(self, catalog):
        assert rows(catalog,
                    "select grp, count(*) from t where v > 999 "
                    "group by grp") == []

    def test_order_by_aggregate(self, catalog):
        result = rows(catalog,
                      "select grp from t group by grp "
                      "order by sum(v) desc, grp")
        assert [r["grp"] for r in result] == ["c", "a", "b"]

    def test_star_with_aggregation_rejected(self, catalog):
        with pytest.raises(SQLExecutionError):
            execute("select * from t group by grp", catalog)

    def test_null_group_key(self, catalog):
        catalog.register("n", Relation(["k", "v"],
                                       [(None, 1), (None, 2), ("x", 3)]))
        result = rows(catalog,
                      "select k, sum(v) as s from n group by k order by k")
        assert result == [{"k": None, "s": 3}, {"k": "x", "s": 3}]


class TestSetOperations:
    @pytest.fixture
    def two(self, catalog):
        catalog.register("p", Relation(["x"], [(1,), (2,), (2,), (3,)]))
        catalog.register("q", Relation(["x"], [(2,), (3,), (4,)]))
        return catalog

    def test_union_dedupes(self, two):
        result = rows(two, "select x from p union select x from q order by x")
        assert [r["x"] for r in result] == [1, 2, 3, 4]

    def test_union_all_keeps_duplicates(self, two):
        result = rows(two,
                      "select x from p union all select x from q order by x")
        assert [r["x"] for r in result] == [1, 2, 2, 2, 3, 3, 4]

    def test_intersect(self, two):
        result = rows(two,
                      "select x from p intersect select x from q order by x")
        assert [r["x"] for r in result] == [2, 3]

    def test_except(self, two):
        result = rows(two,
                      "select x from p except select x from q order by x")
        assert [r["x"] for r in result] == [1]

    def test_except_all_multiset(self, two):
        result = rows(two,
                      "select x from p except all select x from q "
                      "order by x")
        assert [r["x"] for r in result] == [1, 2]

    def test_width_mismatch_rejected(self, two):
        with pytest.raises((SQLPlanError, SQLExecutionError)):
            execute("select x, x from p union select x from q", two)

    def test_order_by_must_use_output_columns(self, two):
        with pytest.raises(SQLExecutionError):
            execute("select x as y from p union select x from q "
                    "order by x + 1", two)


class TestSubqueries:
    def test_scalar_subquery(self, catalog):
        assert rows(catalog,
                    "select (select max(v) from t) as m") == [{"m": 50}]

    def test_scalar_subquery_empty_is_null(self, catalog):
        assert rows(catalog,
                    "select (select v from t where v > 999) as m") \
            == [{"m": None}]

    def test_scalar_subquery_multirow_raises(self, catalog):
        with pytest.raises(SQLExecutionError):
            execute("select (select v from t) as m", catalog)

    def test_correlated_exists(self, catalog):
        catalog.register("names", Relation(["grp"], [("a",), ("z",)]))
        result = rows(catalog,
                      "select grp from names where exists "
                      "(select 1 from t where t.grp = names.grp)")
        assert result == [{"grp": "a"}]

    def test_correlated_scalar(self, catalog):
        catalog.register("names", Relation(["grp"], [("a",), ("b",)]))
        result = rows(catalog,
                      "select grp, (select sum(v) from t "
                      "where t.grp = names.grp) as total from names "
                      "order by grp")
        assert result == [{"grp": "a", "total": 30},
                          {"grp": "b", "total": 30}]

    def test_in_subquery(self, catalog):
        result = rows(catalog,
                      "select distinct grp from t where v in "
                      "(select max(v) from t group by grp) order by grp")
        assert [r["grp"] for r in result] == ["a", "b", "c"]

    def test_not_exists(self, catalog):
        catalog.register("names", Relation(["grp"], [("a",), ("z",)]))
        result = rows(catalog,
                      "select grp from names where not exists "
                      "(select 1 from t where t.grp = names.grp)")
        assert result == [{"grp": "z"}]
