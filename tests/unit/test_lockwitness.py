"""Unit tests for the runtime lock-order witness."""

import threading

import pytest

from repro import concurrency
from repro.analysis.lockwitness import (
    LockOrderViolation, LockWitness, WitnessedLock,
)


def make_witness(strict=True, declared=()):
    # An explicit ``declared`` keeps repro's LOCK_ORDER out of these
    # fixtures; the conftest session witness is untouched (these tests
    # never install their witness globally).
    return LockWitness(strict=strict, declared=tuple(declared))


class TestOrderedAcquisition:
    def test_consistent_order_passes_and_records_edges(self):
        witness = make_witness()
        a = witness.make_lock("A", reentrant=False)
        b = witness.make_lock("B", reentrant=False)
        for __ in range(3):
            with a:
                with b:
                    pass
        assert witness.edges[("A", "B")] == 3
        assert witness.violations == []
        assert witness.check_acyclic() == []

    def test_inversion_against_observed_order_raises(self):
        witness = make_witness()
        a = witness.make_lock("A", reentrant=False)
        b = witness.make_lock("B", reentrant=False)
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderViolation):
                a.acquire()

    def test_inversion_against_declared_order_raises(self):
        witness = make_witness(declared=[("A", "B")])
        a = witness.make_lock("A", reentrant=False)
        b = witness.make_lock("B", reentrant=False)
        with b:
            with pytest.raises(LockOrderViolation):
                a.acquire()

    def test_non_strict_records_instead_of_raising(self):
        witness = make_witness(strict=False)
        a = witness.make_lock("A", reentrant=False)
        b = witness.make_lock("B", reentrant=False)
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert len(witness.violations) == 1
        assert "inversion" in witness.violations[0]
        assert witness.check_acyclic() != []

    def test_self_deadlock_always_raises(self):
        witness = make_witness(strict=False)
        a = witness.make_lock("A", reentrant=False)
        with a:
            with pytest.raises(LockOrderViolation):
                a.acquire()

    def test_reentrant_lock_may_reacquire(self):
        witness = make_witness()
        r = witness.make_lock("R", reentrant=True)
        with r:
            with r:
                pass
        assert witness.violations == []

    def test_same_name_sibling_instances_are_unordered(self):
        # Two Counter._lock instances: holding both (in either order)
        # is not an edge — the naming scheme cannot order them.
        witness = make_witness()
        one = witness.make_lock("Counter._lock", reentrant=False)
        two = witness.make_lock("Counter._lock", reentrant=False)
        with one:
            with two:
                pass
        with two:
            with one:
                pass
        assert witness.edges == {}
        assert witness.violations == []

    def test_order_is_tracked_per_thread(self):
        witness = make_witness()
        a = witness.make_lock("A", reentrant=False)
        b = witness.make_lock("B", reentrant=False)
        failures = []

        def worker():
            try:
                with a:
                    with b:
                        pass
            except LockOrderViolation as exc:  # pragma: no cover
                failures.append(exc)

        threads = [threading.Thread(target=worker) for __ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert failures == []
        assert witness.edges[("A", "B")] == 4


class TestFactoryWiring:
    def test_new_lock_is_plain_without_witness(self):
        saved = concurrency._witness_factory
        concurrency.install_witness(None)
        try:
            lock = concurrency.new_lock("X._lock")
            assert not isinstance(lock, WitnessedLock)
            assert type(lock) is type(threading.Lock())
        finally:
            concurrency.install_witness(saved)

    def test_new_lock_is_witnessed_under_factory(self):
        witness = make_witness()
        saved = concurrency._witness_factory
        concurrency.install_witness(witness.make_lock)
        try:
            lock = concurrency.new_lock("X._lock")
            assert isinstance(lock, WitnessedLock)
            with lock:
                pass
            assert witness.acquisitions == 1
        finally:
            concurrency.install_witness(saved)

    def test_status_summarizes(self):
        witness = make_witness()
        a = witness.make_lock("A", reentrant=False)
        with a:
            pass
        doc = witness.status()
        assert doc["acquisitions"] == 1
        assert doc["violations"] == []
        assert doc["strict"] is True

    def test_sanctioned_order_is_acyclic(self):
        # The shipped LOCK_ORDER must never itself contain a cycle.
        witness = LockWitness(strict=True)
        assert witness.check_acyclic() == []
