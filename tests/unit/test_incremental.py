"""Unit tests for the incremental hot path.

Covers: fast-path classification, the per-path counters, the escape
hatches, accumulator poisoning, window-relation mirroring, O(1) window
lengths, and the ``from_dicts`` key normalization.
"""

import pytest

from repro.datatypes import DataType
from repro.descriptors.model import StorageConfig
from repro.descriptors.xml_io import descriptor_from_xml, descriptor_to_xml
from repro.gsntime.clock import VirtualClock
from repro.sqlengine.executor import Catalog, execute_plan
from repro.sqlengine.incremental import (
    AggregateQuery, GroupedAggregateQuery, GroupedAggregateState,
    IdentityQuery, IncrementalJoinState, classify, classify_join,
)
from repro.sqlengine.parser import parse_select
from repro.sqlengine.planner import plan_select
from repro.sqlengine.relation import Relation
from repro.storage.base import RetentionPolicy
from repro.storage.memory import MemoryStorage
from repro.streams.element import StreamElement
from repro.streams.materialized import WindowRelation
from repro.streams.schema import StreamSchema
from repro.streams.window import CountWindow, TimeWindow
from repro.vsensor.virtual_sensor import VirtualSensor
from repro.wrappers.scripted import ScriptedWrapper

from tests.conftest import simple_mote_descriptor


def plan(sql):
    return plan_select(parse_select(sql))


class TestClassify:
    def test_identity(self):
        classified = classify(plan("select * from wrapper"))
        assert isinstance(classified, IdentityQuery)
        assert classified.binding == "wrapper"

    def test_identity_with_alias_star(self):
        classified = classify(plan("select w.* from wrapper w"))
        assert isinstance(classified, IdentityQuery)
        assert classified.binding == "w"

    def test_aggregates_with_where(self):
        classified = classify(plan(
            "select count(*) as n, sum(v) as s, avg(v), min(v), max(v) "
            "from wrapper where v > 3"
        ))
        assert isinstance(classified, AggregateQuery)
        assert [item.kind for item in classified.items] == [
            "count_star", "sum", "avg", "min", "max",
        ]
        assert classified.columns == ("n", "s", "avg_v", "min_v", "max_v")
        assert classified.referenced == frozenset({"v"})

    def test_grouped_aggregates(self):
        classified = classify(plan(
            "select room, count(*) as n, avg(v) from wrapper "
            "where v > 0 group by room"
        ))
        assert isinstance(classified, GroupedAggregateQuery)
        assert classified.keys == ("room",)
        assert [item.kind for item in classified.items] == [
            "column", "count_star", "avg",
        ]
        assert classified.columns == ("room", "n", "avg_v")
        assert classified.referenced == frozenset({"room", "v"})

    @pytest.mark.parametrize("sql", [
        "select v from wrapper",                         # projection
        "select count(*) from wrapper group by v + 1",   # group expression
        "select count(*) from wrapper "
        "group by v having count(*) > 1",                # having
        "select * from wrapper where v > 1",             # filtered identity
        "select distinct v from wrapper",                # distinct rows
        "select count(distinct v) from wrapper",         # distinct aggregate
        "select sum(v + 1) from wrapper",                # expression arg
        "select median(v) from wrapper",                 # unsupported agg
        "select sum(v) from wrapper order by 1",         # order by
        "select sum(v) from wrapper limit 1",            # limit
        "select count(*) from wrapper a, wrapper2 b",    # join
        "select sum(v) from wrapper "
        "where v in (select v from t)",                  # subquery
        "select * from wrapper union select * from w2",  # set op
    ])
    def test_disqualified(self, sql):
        assert classify(plan(sql)) is None

    def test_join_classification(self):
        spec = classify_join(plan(
            "select a.v, b.w from a join b on a.k = b.k where a.v > 0"
        ))
        assert spec is not None
        assert (spec.left_table, spec.right_table) == ("a", "b")
        assert (spec.left_binding, spec.right_binding) == ("a", "b")

    @pytest.mark.parametrize("sql", [
        "select * from a left join b on a.k = b.k",      # outer join
        "select * from a join b on a.k < b.k",           # not an equi-join
        "select * from a",                               # single source
        "select a.k, count(*) from a join b on a.k = b.k "
        "group by a.k",                                  # grouped join
        "select * from a join b on a.k = b.k order by a.k",  # order by
        "select * from a join b on a.k = b.k limit 3",   # limit
    ])
    def test_join_disqualified(self, sql):
        assert classify_join(plan(sql)) is None


class TestWindowRelation:
    def element(self, v, timed):
        return StreamElement({"v": v}, timed=timed)

    def test_mirrors_count_window(self):
        window = CountWindow(3)
        mat = WindowRelation(["v"])
        window.add_observer(mat)
        for i in range(5):
            window.append(self.element(i, 100 + i))
        assert list(mat.rows) == [(2, 102), (3, 103), (4, 104)]
        assert mat.columns == ("v", "timed")

    def test_mirrors_time_window_with_out_of_order(self):
        window = TimeWindow(100)
        mat = WindowRelation(["v"])
        window.add_observer(mat)
        window.append(self.element(1, 1_000))
        window.append(self.element(2, 950))   # out of order
        window.append(self.element(3, 1_060))
        window.contents(1_060)  # expiry: cutoff 960 drops the 950 element
        assert sorted(mat.rows) == [(1, 1_000), (3, 1_060)]

    def test_version_bumps_on_every_change(self):
        window = CountWindow(1)
        v0 = window.version
        window.append(self.element(1, 1))
        assert window.version == v0 + 1
        window.append(self.element(2, 2))     # evict + append
        assert window.version == v0 + 3
        window.clear()
        assert window.version == v0 + 4

    def test_window_len_is_consistent(self):
        count = CountWindow(3)
        for i in range(5):
            count.append(self.element(i, i))
        assert len(count) == len(count.contents()) == 3
        time_window = TimeWindow(50)
        for stamp in (100, 120, 400):
            time_window.append(self.element(1, stamp))
        assert len(time_window) == len(time_window.contents()) == 1

    def test_time_window_synchronize_reports_future_elements(self):
        window = TimeWindow(100)
        window.append(self.element(1, 1_000))
        assert window.synchronize(1_000) is True
        window.append(self.element(2, 2_000))
        # Query time behind the newest stamp: retained != contents(now).
        assert window.synchronize(1_500) is False
        assert window.synchronize(2_000) is True


class TestGroupedAggregateState:
    """Direct delta-maintenance tests for the grouped accumulator map."""

    def build(self, sql, window_size=3):
        window = CountWindow(window_size)
        mat = WindowRelation(["g", "v"])
        window.add_observer(mat)
        spec = classify(plan(sql))
        assert isinstance(spec, GroupedAggregateQuery)
        poisonings = []
        state = GroupedAggregateState(spec, mat, label=sql,
                                      on_poison=poisonings.append)
        mat.add_listener(state)
        return window, mat, state, poisonings

    def element(self, g, v, timed):
        return StreamElement({"g": g, "v": v}, timed=timed)

    def test_retraction_on_eviction(self):
        sql = "select g, count(*) as n, sum(v) as s from wrapper group by g"
        window, mat, state, poisonings = self.build(sql, window_size=2)
        window.append(self.element("a", 1, 100))
        window.append(self.element("b", 2, 101))
        assert list(state.snapshot().rows) == [("a", 1, 1), ("b", 1, 2)]
        # Evicting group "a"'s only row deletes the group entirely.
        window.append(self.element("b", 5, 102))
        assert list(state.snapshot().rows) == [("b", 2, 7)]
        # Evicting one of two "b" rows retracts it from the accumulators.
        window.append(self.element("b", 3, 103))
        assert list(state.snapshot().rows) == [("b", 2, 8)]
        assert state.healthy and not poisonings

    def test_extremum_eviction_rescans_group(self):
        sql = "select g, min(v) as lo, max(v) as hi from wrapper group by g"
        window, mat, state, __ = self.build(sql, window_size=3)
        for position, v in enumerate((1, 5, 3)):
            window.append(self.element("a", v, 100 + position))
        assert list(state.snapshot().rows) == [("a", 1, 5)]
        # Evicts v=1: the group's min must be rescanned, not guessed.
        window.append(self.element("a", 2, 103))
        assert list(state.snapshot().rows) == [("a", 2, 5)]

    def test_groups_emit_in_legacy_first_seen_order(self):
        sql = "select g, count(*) as n from wrapper group by g"
        window, mat, state, __ = self.build(sql, window_size=4)
        for position, g in enumerate(("b", "a", "b", "c")):
            window.append(self.element(g, position, 100 + position))
        legacy = execute_plan(plan(sql), Catalog({
            "wrapper": Relation(("g", "v", "timed"), list(mat.rows)),
        }))
        snapshot = state.snapshot()
        assert snapshot.columns == legacy.columns
        assert list(snapshot.rows) == list(legacy.rows) \
            == [("b", 2), ("a", 1), ("c", 1)]
        # Evicting the first "b" row makes "a" the oldest surviving
        # group; the emit order must track that, like a rebuild would.
        window.append(self.element("a", 9, 104))
        assert list(state.snapshot().rows) == [("a", 2), ("b", 1), ("c", 1)]

    def test_poisoning_on_incomparable_extremum(self):
        sql = "select g, min(v) as lo from wrapper group by g"
        window, mat, state, poisonings = self.build(sql, window_size=3)
        window.append(self.element("a", 4, 100))
        window.append(self.element("a", "oops", 101))  # int vs str min()
        assert not state.healthy
        assert len(poisonings) == 1
        assert state.poison_cause is poisonings[0]


class TestIncrementalJoinState:
    """Direct delta-propagation tests for the two-source equi-join."""

    SQL = ("select a.k as k, a.v as av, b.v as bv "
           "from a join b on a.k = b.k")

    def build(self, sql=None, left_size=3, right_size=3):
        spec = classify_join(plan(sql or self.SQL))
        assert spec is not None
        sides = {}
        for name, size in (("a", left_size), ("b", right_size)):
            window = CountWindow(size)
            mat = WindowRelation(["k", "v"])
            window.add_observer(mat)
            sides[name] = (window, mat)
        poisonings = []
        state = IncrementalJoinState(spec, sides["a"][1], sides["b"][1],
                                     label=self.SQL,
                                     on_poison=poisonings.append)
        return sides, state, poisonings

    def element(self, k, v, timed):
        return StreamElement({"k": k, "v": v}, timed=timed)

    def check_against_legacy(self, sides, state, sql=None):
        legacy = execute_plan(plan(sql or self.SQL), Catalog({
            name: Relation(("k", "v", "timed"), list(mat.rows))
            for name, (window, mat) in sides.items()
        }))
        snapshot = state.snapshot()
        assert snapshot.columns == legacy.columns
        assert list(snapshot.rows) == list(legacy.rows)
        return list(snapshot.rows)

    def test_delta_propagation_both_directions(self):
        sides, state, poisonings = self.build()
        a_window, b_window = sides["a"][0], sides["b"][0]
        a_window.append(self.element(1, 10, 100))
        assert self.check_against_legacy(sides, state) == []
        # A right arrival pairs with the existing left row...
        b_window.append(self.element(1, 20, 101))
        assert self.check_against_legacy(sides, state) == [(1, 10, 20)]
        # ...and a left arrival probes the right index.
        a_window.append(self.element(1, 11, 102))
        b_window.append(self.element(2, 30, 103))
        a_window.append(self.element(2, 12, 104))
        assert self.check_against_legacy(sides, state) == [
            (1, 10, 20), (1, 11, 20), (2, 12, 30),
        ]
        assert state.healthy and not poisonings

    def test_eviction_retracts_matches(self):
        sides, state, __ = self.build(left_size=2, right_size=2)
        a_window, b_window = sides["a"][0], sides["b"][0]
        a_window.append(self.element(1, 10, 100))
        b_window.append(self.element(1, 20, 101))
        b_window.append(self.element(1, 21, 102))
        assert self.check_against_legacy(sides, state) == [
            (1, 10, 20), (1, 10, 21),
        ]
        # Right eviction drops that row's pairs from every left entry.
        b_window.append(self.element(1, 22, 103))
        assert self.check_against_legacy(sides, state) == [
            (1, 10, 21), (1, 10, 22),
        ]
        # Left eviction drops the entry and everything it matched.
        a_window.append(self.element(9, 11, 104))
        a_window.append(self.element(1, 12, 105))
        assert self.check_against_legacy(sides, state) == [
            (1, 12, 21), (1, 12, 22),
        ]

    def test_null_keys_never_join(self):
        sides, state, poisonings = self.build()
        sides["a"][0].append(self.element(None, 10, 100))
        sides["b"][0].append(self.element(None, 20, 101))
        sides["a"][0].append(self.element(1, 11, 102))
        sides["b"][0].append(self.element(1, 21, 103))
        assert self.check_against_legacy(sides, state) == [(1, 11, 21)]
        assert state.healthy and not poisonings

    def test_where_and_residual_filter_pairs(self):
        sql = ("select a.k as k, a.v as av, b.v as bv "
               "from a join b on a.k = b.k and a.v < b.v "
               "where b.v < 22")
        sides, state, __ = self.build(sql=sql)
        sides["a"][0].append(self.element(1, 10, 100))
        sides["b"][0].append(self.element(1, 5, 101))    # fails residual
        sides["b"][0].append(self.element(1, 21, 102))   # passes both
        sides["b"][0].append(self.element(1, 30, 103))   # fails where
        assert self.check_against_legacy(sides, state, sql=sql) \
            == [(1, 10, 21)]

    def test_poisoning_on_incomparable_residual(self):
        sql = ("select a.k as k from a join b "
               "on a.k = b.k and a.v < b.v")
        sides, state, poisonings = self.build(sql=sql)
        sides["a"][0].append(self.element(1, 10, 100))
        sides["b"][0].append(self.element(1, "oops", 101))  # int < str
        assert not state.healthy
        assert len(poisonings) == 1
        # Poisoned states ignore further deltas instead of raising.
        sides["a"][0].append(self.element(1, 11, 102))
        assert len(poisonings) == 1

    def test_detach_stops_delta_flow(self):
        sides, state, __ = self.build()
        sides["a"][0].append(self.element(1, 10, 100))
        sides["b"][0].append(self.element(1, 20, 101))
        assert list(state.snapshot().rows) == [(1, 10, 20)]
        state.detach()
        sides["b"][0].append(self.element(1, 21, 102))
        assert list(state.snapshot().rows) == [(1, 10, 20)]


def build_sensor(descriptor, incremental=True, value=7):
    clock = VirtualClock(10_000)
    wrapper = ScriptedWrapper()
    wrapper.script(lambda now: {"temperature": value},
                   StreamSchema.build(temperature=DataType.INTEGER))
    wrapper.attach(clock)
    wrapper.configure({})
    storage = MemoryStorage()
    table = storage.create("out", descriptor.output_structure,
                           RetentionPolicy("all"))
    sensor = VirtualSensor(descriptor, clock, {"src": wrapper},
                           output_table=table, incremental=incremental)
    return sensor, wrapper, clock, table


class TestFastPathCounters:
    def test_aggregate_path_counts_hits(self):
        descriptor = simple_mote_descriptor(window="10")
        sensor, wrapper, clock, table = build_sensor(descriptor)
        sensor.start()
        for value in (10, 20, 30):
            wrapper._producer = lambda now, v=value: {"temperature": v}
            clock.advance(100)
            wrapper.tick()
        assert table.latest()["temperature"] == 20
        counters = sensor.fast_paths.snapshot()
        assert counters["aggregate_hits"] == 3
        assert counters["legacy_queries"] == 0
        assert counters["view_hits"] == 3
        doc = sensor.status()["incremental"]
        assert doc["enabled"] is True
        assert doc["fast_paths"] == {"in/src": "aggregate"}

    def test_identity_path_counts_hits(self):
        descriptor = simple_mote_descriptor(
            window="10",
            source_query="select * from wrapper",
            stream_query="select avg(temperature) as temperature from src",
        )
        sensor, wrapper, clock, table = build_sensor(descriptor)
        sensor.start()
        wrapper.tick()
        assert table.latest()["temperature"] == 7
        counters = sensor.fast_paths.snapshot()
        assert counters["identity_hits"] == 1
        assert sensor.status()["incremental"]["fast_paths"] == {
            "in/src": "identity",
        }

    def test_descriptor_escape_hatch_forces_legacy(self):
        descriptor = simple_mote_descriptor(window="10")
        descriptor = type(descriptor)(
            **{**descriptor.__dict__,
               "storage": StorageConfig(permanent=True, history_size="1h",
                                        incremental=False)}
        )
        sensor, wrapper, clock, table = build_sensor(descriptor)
        sensor.start()
        wrapper.tick()
        assert table.latest()["temperature"] == 7
        counters = sensor.fast_paths.snapshot()
        assert counters["legacy_queries"] == 1
        assert counters["aggregate_hits"] == 0
        assert sensor.status()["incremental"]["enabled"] is False

    def test_container_escape_hatch_forces_legacy(self):
        descriptor = simple_mote_descriptor(window="10")
        sensor, wrapper, clock, table = build_sensor(descriptor,
                                                     incremental=False)
        sensor.start()
        wrapper.tick()
        assert sensor.fast_paths.snapshot()["legacy_queries"] == 1
        assert sensor.status()["incremental"]["enabled"] is False

    def test_poisoned_aggregate_falls_back_and_error_surfaces(self):
        # sum() over strings fails in the legacy engine at query time;
        # the accumulator must poison itself and reroute to legacy so
        # the pipeline error is identical.
        descriptor = simple_mote_descriptor(
            window="10",
            source_query="select sum(temperature) as temperature "
                         "from wrapper",
        )
        sensor, wrapper, clock, table = build_sensor(descriptor)
        sensor.start()
        wrapper._producer = lambda now: {"temperature": "boom"}
        wrapper.tick()
        assert sensor.lifecycle.pool.tasks_failed == 1
        assert sensor.elements_produced == 0
        counters = sensor.fast_paths.snapshot()
        assert counters["aggregate_fallbacks"] == 1
        assert counters["legacy_queries"] == 1
        assert sensor.status()["incremental"]["fast_paths"] == {
            "in/src": "aggregate (poisoned)",
        }

    def test_poisoning_increments_metric_and_logs_query_once(self, caplog):
        import logging
        descriptor = simple_mote_descriptor(
            window="10",
            source_query="select sum(temperature) as temperature "
                         "from wrapper",
        )
        sensor, wrapper, clock, table = build_sensor(descriptor)
        sensor.start()
        wrapper._producer = lambda now: {"temperature": "boom"}
        with caplog.at_level(logging.WARNING,
                             logger="repro.sqlengine.incremental"):
            wrapper.tick()
            wrapper.tick()  # already poisoned: must not log again
        assert sensor.fast_paths.snapshot()["poisoned"] == 1
        lines = [r.getMessage() for r in caplog.records
                 if r.name == "repro.sqlengine.incremental"
                 and "poisoned" in r.getMessage()]
        assert len(lines) == 1
        # The log line names the triggering query and its sensor/stream.
        assert "sum(temperature)" in lines[0]
        assert "probe/in/src" in lines[0]

    def test_temporary_cache_reused_when_source_idle(self):
        # Time-window aggregate (legacy execution) whose window never
        # changes between triggers on the same version: second trigger
        # must reuse the cached temporary. Easier to see on a two-source
        # sensor, covered by the property tests; here we check the
        # single-source miss accounting stays exact.
        descriptor = simple_mote_descriptor(window="10")
        sensor, wrapper, clock, table = build_sensor(descriptor)
        sensor.start()
        wrapper.tick()
        wrapper.tick()
        counters = sensor.fast_paths.snapshot()
        # Every trigger mutates this source's window: no reuse possible.
        assert counters["cache_hits"] == 0
        assert counters["cache_misses"] == 2


class TestDescriptorFlag:
    def test_default_not_serialized_and_roundtrips(self):
        descriptor = simple_mote_descriptor()
        xml = descriptor_to_xml(descriptor)
        assert "incremental" not in xml
        assert descriptor_from_xml(xml).storage.incremental is True

    def test_disabled_serialized_and_roundtrips(self):
        descriptor = simple_mote_descriptor()
        descriptor = type(descriptor)(
            **{**descriptor.__dict__,
               "storage": StorageConfig(incremental=False)}
        )
        xml = descriptor_to_xml(descriptor)
        assert 'incremental="false"' in xml
        assert descriptor_from_xml(xml).storage.incremental is False


class TestFromDicts:
    def test_keys_normalized_per_shape(self):
        relation = Relation.from_dicts(
            ["a", "b"],
            [{"A": 1, "B": 2}, {"a": 3}, {"A": 4, "B": 5}],
        )
        assert relation.rows == [(1, 2), (3, None), (4, 5)]

    def test_duplicate_case_keys_last_wins(self):
        relation = Relation.from_dicts(["a"], [{"A": 1, "a": 2}])
        assert relation.rows == [(2,)]
