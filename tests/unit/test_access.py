"""Unit tests for access control and the integrity service."""

import pytest

from repro.access.control import AccessController, Permission
from repro.access.integrity import IntegrityService, SealedEnvelope
from repro.exceptions import AccessDeniedError, IntegrityError


class TestAccessControllerDisabled:
    def test_everything_passes_when_disabled(self):
        controller = AccessController(enabled=False)
        controller.check(Permission.DEPLOY, "any", "", "")
        assert controller.checks_passed == 1
        assert controller.checks_denied == 0


class TestAccessControllerEnabled:
    @pytest.fixture
    def controller(self):
        return AccessController(enabled=True)

    def test_create_and_authenticate(self, controller):
        principal, key = controller.create_principal("alice")
        assert controller.authenticate("alice", key) is principal
        with pytest.raises(AccessDeniedError):
            controller.authenticate("alice", "wrong-key")

    def test_explicit_key(self, controller):
        __, key = controller.create_principal("bob", api_key="s3cret")
        assert key == "s3cret"
        controller.authenticate("bob", "s3cret")

    def test_duplicate_principal_rejected(self, controller):
        controller.create_principal("alice")
        with pytest.raises(AccessDeniedError):
            controller.create_principal("Alice")

    def test_container_wide_grant(self, controller):
        principal, key = controller.create_principal("admin")
        principal.grant(Permission.DEPLOY)
        controller.check(Permission.DEPLOY, "any-sensor", "admin", key)

    def test_scoped_grant(self, controller):
        principal, key = controller.create_principal("carol")
        principal.grant(Permission.READ, scope="vs-a")
        controller.check(Permission.READ, "vs-a", "carol", key)
        with pytest.raises(AccessDeniedError):
            controller.check(Permission.READ, "vs-b", "carol", key)

    def test_revoke(self, controller):
        principal, key = controller.create_principal("dave")
        principal.grant(Permission.MANAGE)
        principal.revoke(Permission.MANAGE)
        with pytest.raises(AccessDeniedError):
            controller.check(Permission.MANAGE, "*", "dave", key)

    def test_unknown_principal(self, controller):
        with pytest.raises(AccessDeniedError):
            controller.check(Permission.READ, "*", "ghost", "key")

    def test_drop_principal(self, controller):
        controller.create_principal("temp")
        controller.drop_principal("temp")
        with pytest.raises(AccessDeniedError):
            controller.get_principal("temp")

    def test_counters(self, controller):
        principal, key = controller.create_principal("eve")
        principal.grant(Permission.READ)
        controller.check(Permission.READ, "*", "eve", key)
        with pytest.raises(AccessDeniedError):
            controller.check(Permission.DEPLOY, "*", "eve", key)
        assert controller.checks_passed == 1
        assert controller.checks_denied == 1

    def test_status(self, controller):
        controller.create_principal("x")
        status = controller.status()
        assert status["enabled"] is True
        assert status["principals"] == ["x"]


class TestIntegrityService:
    def make_pair(self, secret=b"shared"):
        return (IntegrityService("a", secret),
                IntegrityService("b", secret))

    def test_sign_and_open(self):
        a, b = self.make_pair()
        payload = {"v": 1, "blob": b"\x00\x01", "nested": {"x": [1, 2]}}
        envelope = a.seal(payload)
        assert b.open(envelope) == payload
        assert envelope.sender == "a"
        assert not envelope.encrypted

    def test_encrypted_roundtrip(self):
        a, b = self.make_pair()
        payload = {"secret": "value", "n": 42}
        envelope = a.seal(payload, encrypt=True)
        assert envelope.encrypted
        assert b"value" not in envelope.body  # confidentiality
        assert b.open(envelope) == payload

    def test_tamper_detected(self):
        a, b = self.make_pair()
        envelope = a.seal({"v": 1})
        tampered = SealedEnvelope(
            body=envelope.body[:-1] + b"X",
            signature=envelope.signature,
            nonce=envelope.nonce,
            encrypted=envelope.encrypted,
            sender=envelope.sender,
        )
        with pytest.raises(IntegrityError):
            b.open(tampered)
        assert b.rejected == 1

    def test_wrong_key_rejected(self):
        a = IntegrityService("a", b"key-one")
        b = IntegrityService("b", b"key-two")
        with pytest.raises(IntegrityError):
            b.open(a.seal({"v": 1}))

    def test_nonce_uniqueness(self):
        a, __ = self.make_pair()
        first = a.seal({"v": 1})
        second = a.seal({"v": 1})
        assert first.nonce != second.nonce
        assert first.signature != second.signature

    def test_counters(self):
        a, b = self.make_pair()
        b.open(a.seal({"v": 1}))
        assert a.sealed == 1
        assert b.opened == 1
        status = b.status()
        assert status["counters"] == {"sealed": 0, "opened": 1,
                                      "rejected": 0}
        assert status["sealed"] == 0
        assert status["opened"] == 1
        assert status["rejected"] == 0

    def test_bytes_in_nested_structures(self):
        a, b = self.make_pair()
        payload = {"rows": [{"img": b"\xff\xd8"}, {"img": None}]}
        assert b.open(a.seal(payload, encrypt=True)) == payload
