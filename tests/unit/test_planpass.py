"""Unit tests for gsn-plan, the deploy-time query-plan pass (GSN7xx).

Covers: the cost model's cardinality estimates, constant folding and
dead-predicate proofs, the per-query fast-path verdicts, the GSN701–705
rule findings over seeded-bad descriptors, the descriptor-level verdict
map the VSM consumes, and the line backfill over descriptor XML.
"""

import pytest

from repro.analysis.planpass import (
    CROSS_PRODUCT_ROW_LIMIT, PROVEN_INELIGIBILITY_REASONS, SORT_ROW_LIMIT,
    PlanVerdict, _UNDECIDED, annotate_plan, dead_predicate,
    descriptor_verdicts, fold_constant, plan_descriptor,
    source_query_verdict, structural_verdict,
)
from repro.analysis.passes import analyze, attach_descriptor_lines
from repro.datatypes import DataType
from repro.descriptors.xml_io import (
    descriptor_from_file, descriptor_line_index,
)
from repro.sqlengine.incremental import (
    REASON_DISABLED, REASON_JOIN, REASON_ORDER_BY,
    REASON_TYPE_RISK, REASON_UNKNOWN_COLUMN, REASON_UNKNOWN_SCHEMA,
    REASON_WHERE,
)
from repro.sqlengine.parser import parse_select
from repro.sqlengine.planner import plan_select
from repro.wrappers.registry import default_registry

from tests.conftest import simple_mote_descriptor

MOTE = {"node_id": DataType.INTEGER, "light": DataType.INTEGER,
        "temperature": DataType.INTEGER}


def plan(sql):
    return plan_select(parse_select(sql))


def where_of(sql):
    return plan(sql).where


class TestCostModel:
    def test_scan_rows_from_table_name(self):
        annotated = annotate_plan(plan("select * from wrapper"),
                                  table_rows={"wrapper": 100.0})
        root = annotated.annotation(annotated.plan)
        assert root.rows == 100.0
        assert root.cost == 100.0

    def test_unknown_table_propagates_none(self):
        annotated = annotate_plan(plan("select * from mystery"))
        root = annotated.annotation(annotated.plan)
        assert root.rows is None
        assert root.cost is None

    def test_where_applies_selectivity(self):
        annotated = annotate_plan(
            plan("select * from wrapper where v = 3"),
            table_rows={"wrapper": 100.0})
        root = annotated.annotation(annotated.plan)
        assert root.rows == pytest.approx(10.0)   # equality: 0.1
        assert root.cost == pytest.approx(200.0)  # scan + filter pass

    def test_aggregate_collapses_to_one_row(self):
        annotated = annotate_plan(
            plan("select avg(v) as a from wrapper"),
            table_rows={"wrapper": 50.0})
        assert annotated.annotation(annotated.plan).rows == 1.0

    def test_group_by_sqrt_estimate(self):
        annotated = annotate_plan(
            plan("select v, count(*) as n from wrapper group by v"),
            table_rows={"wrapper": 100.0})
        assert annotated.annotation(annotated.plan).rows == pytest.approx(10.0)

    def test_cross_join_multiplies(self):
        annotated = annotate_plan(
            plan("select * from a, b"),
            table_rows={"a": 1000.0, "b": 1000.0})
        root = annotated.annotation(annotated.plan)
        assert root.rows == pytest.approx(1_000_000.0)

    def test_order_by_records_sort_input(self):
        annotated = annotate_plan(
            plan("select * from wrapper order by v"),
            table_rows={"wrapper": 8.0})
        root = annotated.annotation(annotated.plan)
        assert root.sort_rows == 8.0
        assert root.cost == pytest.approx(8.0 + 8.0 * 3.0)  # + n log2 n

    def test_limit_caps_rows(self):
        annotated = annotate_plan(
            plan("select * from wrapper limit 5"),
            table_rows={"wrapper": 100.0})
        assert annotated.annotation(annotated.plan).rows == 5.0

    def test_render_includes_estimates(self):
        annotated = annotate_plan(plan("select * from wrapper"),
                                  table_rows={"wrapper": 20.0})
        assert "rows~20" in annotated.render()


class TestConstantFolding:
    @pytest.mark.parametrize("sql,expected", [
        ("select * from t where 1 = 2", False),
        ("select * from t where 1 = 1", True),
        ("select * from t where 2 + 2 = 4", True),
        ("select * from t where not (3 > 1)", False),
        ("select * from t where 5 between 1 and 9", True),
        ("select * from t where 5 in (1, 2, 3)", False),
        ("select * from t where null is null", True),
    ])
    def test_folds_literal_predicates(self, sql, expected):
        assert fold_constant(where_of(sql)) is expected

    def test_row_dependent_is_undecided(self):
        assert fold_constant(where_of("select * from t where v > 3")) \
            is _UNDECIDED

    def test_null_comparison_folds_to_null(self):
        assert fold_constant(
            where_of("select * from t where null = 1")) is None

    def test_kleene_and_short_circuits_false(self):
        # v > 3 is undecided, but FALSE AND anything is FALSE.
        assert fold_constant(
            where_of("select * from t where 1 = 2 and v > 3")) is False


class TestDeadPredicate:
    def test_contradictory_ranges(self):
        message = dead_predicate(
            where_of("select * from t where v > 5 and v < 3"))
        assert message is not None and "contradictory" in message

    def test_equality_outside_range(self):
        assert dead_predicate(
            where_of("select * from t where v = 10 and v < 4")) is not None

    def test_empty_between(self):
        assert "empty" in dead_predicate(
            where_of("select * from t where v between 9 and 2"))

    def test_literal_on_left_is_flipped(self):
        assert dead_predicate(
            where_of("select * from t where 5 < v and v < 3")) is not None

    def test_satisfiable_range_is_alive(self):
        assert dead_predicate(
            where_of("select * from t where v > 3 and v < 5")) is None

    def test_none_where_is_alive(self):
        assert dead_predicate(None) is None


class TestVerdicts:
    def test_aggregate_over_count_window_is_eligible(self):
        verdict = source_query_verdict(
            plan("select avg(temperature) as t from wrapper"),
            "count", MOTE)
        assert verdict.eligible
        assert verdict.reason is None

    def test_identity_is_eligible_over_any_window(self):
        verdict = source_query_verdict(
            plan("select * from wrapper"), "time", MOTE)
        assert verdict.eligible

    def test_aggregate_over_time_window_is_eligible(self):
        # Accumulators ride the window observer protocol, which time
        # windows publish too — eligibility no longer depends on the
        # window kind.
        verdict = source_query_verdict(
            plan("select avg(temperature) as t from wrapper"),
            "time", MOTE)
        assert verdict.eligible
        assert verdict.reason is None

    def test_order_by_is_ineligible_and_proven(self):
        verdict = source_query_verdict(
            plan("select temperature from wrapper order by temperature"),
            "count", MOTE)
        assert not verdict.eligible
        assert verdict.reason == REASON_ORDER_BY
        assert verdict.proven

    def test_disabled_is_not_proven(self):
        verdict = source_query_verdict(
            plan("select * from wrapper"), "count", MOTE,
            incremental_enabled=False)
        assert verdict.reason == REASON_DISABLED

    def test_unknown_schema_is_not_a_proof(self):
        verdict = source_query_verdict(
            plan("select avg(temperature) as t from wrapper"),
            "count", None)
        assert not verdict.eligible
        assert verdict.reason == REASON_UNKNOWN_SCHEMA
        assert not verdict.proven
        assert REASON_UNKNOWN_SCHEMA not in PROVEN_INELIGIBILITY_REASONS

    def test_unknown_column(self):
        verdict = source_query_verdict(
            plan("select avg(humidity) as h from wrapper"),
            "count", MOTE)
        assert verdict.reason == REASON_UNKNOWN_COLUMN

    def test_division_in_where_is_type_risk(self):
        verdict = source_query_verdict(
            plan("select avg(light) as v from wrapper "
                 "where light / temperature > 1"),
            "count", MOTE)
        assert verdict.reason == REASON_TYPE_RISK

    def test_structural_group_by_is_eligible(self):
        verdict = structural_verdict(
            plan("select v, count(*) as n from t group by v"))
        assert verdict.eligible
        assert "grouped" in verdict.detail

    def test_structural_equi_join_is_eligible(self):
        verdict = structural_verdict(
            plan("select a.v, b.w from a join b on a.k = b.k"))
        assert verdict.eligible
        assert "equi-join" in verdict.detail

    def test_structural_outer_join_stays_ineligible(self):
        verdict = structural_verdict(
            plan("select * from a left join b on a.k = b.k"))
        assert not verdict.eligible
        assert verdict.reason == REASON_JOIN

    def test_structural_where_shape(self):
        verdict = structural_verdict(plan("select v from t where v > 1"))
        assert not verdict.eligible

    def test_unknown_reason_rejected(self):
        with pytest.raises(ValueError):
            PlanVerdict(False, "no-such-reason")

    def test_as_dict(self):
        doc = PlanVerdict(False, REASON_WHERE, "detail").as_dict()
        assert doc == {"eligible": False, "reason": REASON_WHERE,
                       "detail": "detail"}


class TestPlanDescriptor:
    def test_eligible_descriptor_coverage(self):
        descriptor = simple_mote_descriptor(window="100")
        result = plan_descriptor(descriptor, registry=default_registry())
        eligible, total = result.coverage()
        assert (eligible, total) == (1, 1)
        assert result.verdicts[("in", "src")].eligible

    def test_time_window_descriptor_is_eligible(self):
        descriptor = simple_mote_descriptor(window="5s")
        result = plan_descriptor(descriptor, registry=default_registry())
        verdict = result.verdicts[("in", "src")]
        assert verdict.eligible

    def test_render_mentions_fast_path(self):
        descriptor = simple_mote_descriptor(window="100")
        rendered = plan_descriptor(
            descriptor, registry=default_registry()).render()
        assert "fast-path: eligible" in rendered

    def test_descriptor_verdicts_is_total_and_never_raises(self):
        descriptor = simple_mote_descriptor(window="100")
        verdicts = descriptor_verdicts(descriptor,
                                       registry=default_registry())
        assert set(verdicts) == {("in", "src")}
        broken = simple_mote_descriptor(source_query="select !! nonsense")
        assert descriptor_verdicts(broken,
                                   registry=default_registry()) == {}

    def test_incremental_disabled_propagates(self):
        descriptor = simple_mote_descriptor(window="100")
        verdicts = descriptor_verdicts(
            descriptor, registry=default_registry(), incremental=False)
        assert verdicts[("in", "src")].reason == REASON_DISABLED


BAD = "examples/bad"


class TestPlanRules:
    def _findings(self, path):
        descriptor = descriptor_from_file(path)
        report = analyze([descriptor], registry=default_registry(),
                         sources=[path], plan=True)
        return report

    @pytest.mark.parametrize("path,rule", [
        (f"{BAD}/plan-ineligible.xml", "GSN701"),
        (f"{BAD}/cross-product.xml", "GSN702"),
        (f"{BAD}/unbounded-sort.xml", "GSN703"),
        (f"{BAD}/overloaded-source.xml", "GSN704"),
        (f"{BAD}/dead-predicate.xml", "GSN705"),
    ])
    def test_seeded_bad_files_trip_their_rule(self, path, rule):
        report = self._findings(path)
        assert any(f.rule_id == rule for f in report.findings), \
            report.render()

    def test_clean_descriptor_stays_clean_under_plan(self):
        descriptor = simple_mote_descriptor(window="100")
        report = analyze([descriptor], registry=default_registry(),
                         plan=True)
        assert not report.findings, report.render()

    def test_plan_pass_is_opt_in(self):
        descriptor = descriptor_from_file(f"{BAD}/plan-ineligible.xml")
        report = analyze([descriptor], registry=default_registry())
        assert not any(f.rule_id.startswith("GSN7")
                       for f in report.findings)


def build_sensor(descriptor, static_verdicts=None, value=7):
    from repro.gsntime.clock import VirtualClock
    from repro.storage.base import RetentionPolicy
    from repro.storage.memory import MemoryStorage
    from repro.streams.schema import StreamSchema
    from repro.vsensor.virtual_sensor import VirtualSensor
    from repro.wrappers.scripted import ScriptedWrapper

    clock = VirtualClock(10_000)
    wrapper = ScriptedWrapper()
    wrapper.script(lambda now: {"temperature": value},
                   StreamSchema.build(temperature=DataType.INTEGER))
    wrapper.attach(clock)
    wrapper.configure({})
    storage = MemoryStorage()
    table = storage.create("out", descriptor.output_structure,
                           RetentionPolicy("all"))
    sensor = VirtualSensor(descriptor, clock, {"src": wrapper},
                           output_table=table,
                           static_verdicts=static_verdicts)
    return sensor, wrapper, clock, table


class TestRuntimeConsultation:
    """The VirtualSensor half of the contract: proven-ineligible routes
    to legacy up front; an eligible verdict that fails to hold at
    runtime is counted as a static disagreement."""

    def test_proven_ineligible_skips_attachment(self):
        descriptor = simple_mote_descriptor(window="10")
        verdict = PlanVerdict(False, REASON_WHERE, "fabricated proof")
        sensor, __, __, __ = build_sensor(
            descriptor, static_verdicts={("in", "src"): verdict})
        assert not sensor.incremental_status()["fast_paths"]

    def test_unproven_ineligible_lets_runtime_decide(self):
        descriptor = simple_mote_descriptor(window="10")
        verdict = PlanVerdict(False, REASON_UNKNOWN_SCHEMA, "could not see")
        sensor, __, __, __ = build_sensor(
            descriptor, static_verdicts={("in", "src"): verdict})
        # The aggregate is attachable, so the runtime attaches it anyway.
        assert sensor.incremental_status()["fast_paths"]
        assert sensor.fast_paths.snapshot()["static_disagreements"] == 0

    def test_eligible_verdict_that_cannot_attach_is_a_disagreement(self):
        descriptor = simple_mote_descriptor(
            window="10",
            source_query="select temperature from wrapper")  # projection
        verdict = PlanVerdict(True, None, "fabricated: analyzer bug")
        sensor, __, __, __ = build_sensor(
            descriptor, static_verdicts={("in", "src"): verdict})
        assert not sensor.incremental_status()["fast_paths"]
        assert sensor.fast_paths.snapshot()["static_disagreements"] == 1

    def test_agreeing_eligible_verdict_attaches_silently(self):
        descriptor = simple_mote_descriptor(window="10")
        verdict = PlanVerdict(True, None, "1 running accumulator(s)")
        sensor, __, __, __ = build_sensor(
            descriptor, static_verdicts={("in", "src"): verdict})
        assert sensor.incremental_status()["fast_paths"]
        assert sensor.fast_paths.snapshot()["static_disagreements"] == 0

    def test_status_static_block(self):
        descriptor = simple_mote_descriptor(window="10")
        verdicts = descriptor_verdicts(descriptor,
                                       registry=default_registry())
        sensor, __, __, __ = build_sensor(descriptor,
                                          static_verdicts=verdicts)
        static = sensor.incremental_status()["static"]
        assert static["verdicts"]["in/src"]["eligible"] is True
        assert static == {
            "verdicts": {"in/src": {"eligible": True, "reason": None}},
            "eligible": 1, "total": 1, "coverage_percent": 100.0,
        }

    def test_no_verdicts_reports_zero_coverage(self):
        descriptor = simple_mote_descriptor(window="10")
        sensor, __, __, __ = build_sensor(descriptor)
        static = sensor.incremental_status()["static"]
        assert static == {"verdicts": {}, "eligible": 0, "total": 0,
                          "coverage_percent": 0.0}


class TestDeployWiring:
    def test_deploy_hands_verdicts_to_the_sensor(self):
        from repro.container import GSNContainer

        with GSNContainer(name="n1", simulated=True) as container:
            sensor = container.deploy(descriptor_from_file(
                "examples/descriptors/averaged-temperature.xml"))
            static = sensor.incremental_status()["static"]
            assert static["total"] == 1
            assert static["verdicts"]["dummy/src1"]["eligible"] is True
            assert static["verdicts"]["dummy/src1"]["reason"] is None
            text = container.metrics_text()
            assert 'gsn_fastpath_static{' in text
            assert "gsn_fastpath_static_coverage_percent 100" in text
            status = container.vsm.status()
            assert status["counters"]["static_analyzed_sources"] == 1
            assert status["static_coverage_percent"] == 100.0


class TestLineBackfill:
    def test_line_index_maps_queries(self):
        with open(f"{BAD}/dead-predicate.xml", encoding="utf-8") as handle:
            index = descriptor_line_index(handle.read())
        assert index[("virtual-sensor",)] == 6
        assert ("stream-query", "in") in index
        assert ("source-query", "in", "src") in index

    def test_findings_gain_line_suffix(self):
        path = f"{BAD}/dead-predicate.xml"
        descriptor = descriptor_from_file(path)
        report = analyze([descriptor], registry=default_registry(),
                         sources=[path], plan=True)
        with open(path, encoding="utf-8") as handle:
            indexes = {path: descriptor_line_index(handle.read())}
        attach_descriptor_lines(report, indexes)
        finding = next(f for f in report.findings if f.rule_id == "GSN705")
        assert finding.line is not None and finding.line > 1

    def test_malformed_xml_yields_empty_index(self):
        assert descriptor_line_index("<not-closed") == {}
