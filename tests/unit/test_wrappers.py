"""Unit tests for the wrapper API, registry, and device wrappers."""

import pytest

from repro.datatypes import DataType
from repro.exceptions import WrapperError
from repro.gsntime.clock import VirtualClock
from repro.gsntime.scheduler import EventScheduler
from repro.streams.schema import StreamSchema
from repro.wrappers.base import PeriodicWrapper, Wrapper, WrapperState
from repro.wrappers.camera import CameraWrapper
from repro.wrappers.motes import MoteWrapper
from repro.wrappers.registry import WrapperRegistry, default_registry
from repro.wrappers.replay import ReplayWrapper
from repro.wrappers.rfid import RFIDReaderWrapper
from repro.wrappers.scripted import ScriptedWrapper, SystemClockWrapper


@pytest.fixture
def wired():
    clock = VirtualClock(1_000_000)
    scheduler = EventScheduler(clock)

    def build(wrapper, predicates=None):
        wrapper.attach(clock, scheduler)
        wrapper.configure(predicates or {})
        wrapper.start()
        return wrapper

    return clock, scheduler, build


class TestWrapperBase:
    def test_lifecycle_states(self):
        wrapper = SystemClockWrapper()
        assert wrapper.state is WrapperState.CREATED
        wrapper.configure({})
        assert wrapper.state is WrapperState.CONFIGURED
        wrapper.start()
        assert wrapper.state is WrapperState.RUNNING
        wrapper.stop()
        assert wrapper.state is WrapperState.STOPPED

    def test_start_autoconfigures(self):
        wrapper = SystemClockWrapper()
        wrapper.start()
        assert wrapper.state is WrapperState.RUNNING

    def test_cannot_reconfigure_running(self):
        wrapper = SystemClockWrapper()
        wrapper.start()
        with pytest.raises(WrapperError):
            wrapper.configure({"interval": "5"})

    def test_listeners_receive_emits(self, wired):
        __, __, build = wired
        wrapper = build(SystemClockWrapper(), {"interval": "100"})
        seen = []
        wrapper.add_listener(seen.append)
        wrapper.tick()
        assert len(seen) == 1
        wrapper.remove_listener(seen.append)
        wrapper.tick()
        assert len(seen) == 1

    def test_config_helpers(self):
        wrapper = SystemClockWrapper()
        wrapper.config = {"n": "5", "f": "2.5", "s": "txt"}
        assert wrapper.config_int("n", 0) == 5
        assert wrapper.config_float("f", 0) == 2.5
        assert wrapper.config_str("s") == "txt"
        assert wrapper.config_int("missing", 9) == 9
        with pytest.raises(WrapperError):
            wrapper.config_int("s", 0)

    def test_bad_interval(self):
        wrapper = SystemClockWrapper()
        with pytest.raises(WrapperError):
            wrapper.configure({"interval": "0"})


class TestPeriodicScheduling:
    def test_scheduler_driven_production(self, wired):
        __, scheduler, build = wired
        wrapper = build(SystemClockWrapper(), {"interval": "100"})
        seen = []
        wrapper.add_listener(seen.append)
        scheduler.run_for(1_000)
        assert len(seen) == 10

    def test_stop_cancels_events(self, wired):
        __, scheduler, build = wired
        wrapper = build(SystemClockWrapper(), {"interval": "100"})
        seen = []
        wrapper.add_listener(seen.append)
        scheduler.run_for(300)
        wrapper.stop()
        scheduler.run_for(1_000)
        assert len(seen) == 3

    def test_phase_offsets_first_firing(self, wired):
        __, scheduler, build = wired
        wrapper = build(SystemClockWrapper(), {"interval": "100",
                                               "phase": "30"})
        seen = []
        wrapper.add_listener(seen.append)
        scheduler.run_for(130)
        assert [e.timed for e in seen] == [1_000_030, 1_000_130]

    def test_tick_requires_running(self):
        wrapper = SystemClockWrapper()
        with pytest.raises(WrapperError):
            wrapper.tick()


class TestMoteWrapper:
    def test_schema(self):
        assert set(MoteWrapper().output_schema().field_names) == {
            "node_id", "light", "temperature", "accel_x", "accel_y"}

    def test_produces_plausible_readings(self, wired):
        __, __, build = wired
        mote = build(MoteWrapper(), {"node-id": "3", "seed": "3"})
        reading = mote.tick()
        assert reading["node_id"] == 3
        assert reading["light"] >= 0
        assert 10 <= reading["temperature"] <= 35

    def test_seeded_reproducibility(self, wired):
        clock, __, build = wired
        a = build(MoteWrapper(), {"seed": "7"})
        b = build(MoteWrapper(), {"seed": "7"})
        assert a.tick().values == b.tick().values

    def test_cover_light_sensor(self, wired):
        __, __, build = wired
        mote = build(MoteWrapper(), {"light-base": "1000", "seed": "1"})
        normal = mote.tick()["light"]
        mote.cover_light_sensor()
        covered = mote.tick()["light"]
        assert covered < normal / 5
        mote.uncover_light_sensor()
        assert mote.tick()["light"] > covered

    def test_missing_rate_produces_nulls(self, wired):
        __, __, build = wired
        mote = build(MoteWrapper(), {"missing-rate": "1.0"})
        reading = mote.tick()
        assert reading["light"] is None
        assert reading["temperature"] is None


class TestRFIDWrapper:
    def test_manual_detection(self, wired):
        __, __, build = wired
        reader = build(RFIDReaderWrapper(), {"reader-id": "2"})
        seen = []
        reader.add_listener(seen.append)
        reader.detect("tag-42")
        assert seen[0]["tag_id"] == "tag-42"
        assert seen[0]["reader_id"] == 2
        assert -60 <= seen[0]["signal_strength"] <= -30

    def test_detect_requires_running(self):
        reader = RFIDReaderWrapper()
        reader.configure({})
        with pytest.raises(WrapperError):
            reader.detect("t")

    def test_polling_rate(self, wired):
        __, scheduler, build = wired
        reader = build(RFIDReaderWrapper(), {
            "interval": "100", "tags": "a,b", "detection-rate": "1.0",
            "seed": "1",
        })
        seen = []
        reader.add_listener(seen.append)
        scheduler.run_for(1_000)
        assert len(seen) == 10
        assert {e["tag_id"] for e in seen} <= {"a", "b"}

    def test_zero_rate_detects_nothing(self, wired):
        __, scheduler, build = wired
        reader = build(RFIDReaderWrapper(), {"interval": "100",
                                             "tags": "a"})
        seen = []
        reader.add_listener(seen.append)
        scheduler.run_for(1_000)
        assert seen == []

    def test_bad_detection_rate(self):
        reader = RFIDReaderWrapper()
        with pytest.raises(WrapperError):
            reader.configure({"detection-rate": "1.5"})


class TestCameraWrapper:
    def test_frame_size_exact(self, wired):
        __, __, build = wired
        camera = build(CameraWrapper(), {"image-size": "1024"})
        reading = camera.tick()
        assert len(reading["image"]) == 1024
        assert reading["image"][:2] == b"\xff\xd8"  # JPEG magic

    def test_snapshot_distinct_frames(self, wired):
        clock, __, build = wired
        camera = build(CameraWrapper(), {"image-size": "64"})
        first = camera.snapshot()
        clock.advance(5)
        second = camera.snapshot()
        assert first["image"] != second["image"]
        assert len(first["image"]) == 64

    def test_too_small_size_rejected(self):
        camera = CameraWrapper()
        with pytest.raises(WrapperError):
            camera.configure({"image-size": "2"})

    def test_metadata(self, wired):
        __, __, build = wired
        camera = build(CameraWrapper(), {"camera-id": "5", "width": "320",
                                         "height": "240"})
        reading = camera.tick()
        assert (reading["camera_id"], reading["width"],
                reading["height"]) == (5, 320, 240)


class TestReplayWrapper:
    TRACE = [
        {"timed": 100, "v": 1},
        {"timed": 300, "v": 2},
        {"timed": 600, "v": 3},
    ]

    def test_replay_all(self):
        wrapper = ReplayWrapper()
        wrapper.load_rows(self.TRACE)
        wrapper.configure({})
        seen = []
        wrapper.add_listener(seen.append)
        wrapper.start()
        assert wrapper.replay_all() == 3
        assert [e.timed for e in seen] == [100, 300, 600]
        assert [e["v"] for e in seen] == [1, 2, 3]

    def test_scheduled_replay_preserves_gaps(self, wired):
        __, scheduler, build = wired
        wrapper = ReplayWrapper()
        wrapper.load_rows(self.TRACE)
        build(wrapper, {})
        seen = []
        wrapper.add_listener(seen.append)
        scheduler.run_for(10_000)
        gaps = [b.timed - a.timed for a, b in zip(seen, seen[1:])]
        assert gaps == [200, 300]

    def test_speedup(self, wired):
        __, scheduler, build = wired
        wrapper = ReplayWrapper()
        wrapper.load_rows(self.TRACE)
        build(wrapper, {"speedup": "2"})
        seen = []
        wrapper.add_listener(seen.append)
        scheduler.run_for(10_000)
        gaps = [b.timed - a.timed for a, b in zip(seen, seen[1:])]
        assert gaps == [100, 150]

    def test_csv_loading(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("timed,v,name\n100,1,a\n200,,b\n")
        wrapper = ReplayWrapper()
        wrapper.configure({"file": str(path)})
        wrapper.start()
        seen = []
        wrapper.add_listener(seen.append)
        wrapper.replay_all()
        assert seen[0]["v"] == 1
        assert seen[1]["v"] is None
        assert seen[1]["name"] == "b"

    def test_empty_trace_rejected(self):
        wrapper = ReplayWrapper()
        with pytest.raises(WrapperError):
            wrapper.load_rows([])

    def test_trace_needs_timed(self):
        wrapper = ReplayWrapper()
        with pytest.raises(WrapperError):
            wrapper.load_rows([{"v": 1}])

    def test_start_without_trace(self):
        wrapper = ReplayWrapper()
        wrapper.configure({})
        with pytest.raises(WrapperError):
            wrapper.start()


class TestScriptedWrapper:
    def test_produces_from_callable(self, wired):
        __, scheduler, build = wired
        wrapper = ScriptedWrapper()
        wrapper.script(lambda now: {"n": now % 7},
                       StreamSchema.build(n=DataType.INTEGER))
        build(wrapper, {"interval": "100"})
        seen = []
        wrapper.add_listener(seen.append)
        scheduler.run_for(300)
        assert len(seen) == 3

    def test_requires_script(self):
        wrapper = ScriptedWrapper()
        with pytest.raises(WrapperError):
            wrapper.output_schema()

    def test_none_skips_cycle(self, wired):
        __, __, build = wired
        wrapper = ScriptedWrapper()
        wrapper.script(lambda now: None,
                       StreamSchema.build(n=DataType.INTEGER))
        build(wrapper, {})
        assert wrapper.tick() is None


class TestRegistry:
    def test_default_registry_contents(self):
        registry = default_registry()
        for name in ("mote", "mica2", "tinynode", "rfid", "camera",
                     "remote", "replay", "scripted", "system-clock"):
            assert name in registry

    def test_create_returns_fresh_instances(self):
        registry = default_registry()
        assert registry.create("mote") is not registry.create("mote")

    def test_unknown_wrapper(self):
        registry = WrapperRegistry()
        with pytest.raises(WrapperError):
            registry.create("nope")

    def test_register_custom(self):
        registry = WrapperRegistry()

        @registry.register
        class MyWrapper(PeriodicWrapper):
            wrapper_name = "custom"

            def output_schema(self):
                return StreamSchema.build(x=DataType.INTEGER)

            def produce(self, now):
                return {"x": 1}

        assert isinstance(registry.create("custom"), MyWrapper)

    def test_abstract_name_rejected(self):
        registry = WrapperRegistry()
        with pytest.raises(WrapperError):
            registry.register(Wrapper)

    def test_conflicting_registration_rejected(self):
        registry = WrapperRegistry()
        registry.register(MoteWrapper)
        with pytest.raises(WrapperError):
            class Impostor(Wrapper):
                wrapper_name = "mote"
            registry.register(Impostor)

    def test_alias(self):
        registry = WrapperRegistry()
        registry.register(MoteWrapper)
        registry.register_alias("mica999", "mote")
        assert isinstance(registry.create("mica999"), MoteWrapper)
