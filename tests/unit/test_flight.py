"""Unit tests for the flight recorder: ring journal, dump triggers,
dump retention, and the thread-stack snapshot helper."""

import threading

from repro.metrics.flight import (
    DUMP_KINDS,
    DUMP_RETENTION,
    FlightRecorder,
    thread_stacks,
)


class TestJournal:
    def test_events_are_sequenced_and_bounded(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(5):
            recorder.record("deploy", f"s{index}")
        events = recorder.events()
        assert [e.seq for e in events] == [3, 4, 5]  # oldest first
        assert [e.component for e in events] == ["s2", "s3", "s4"]
        status = recorder.status()
        assert status["recorded"] == 5
        assert status["buffered"] == 3
        assert status["capacity"] == 3

    def test_events_carry_clock_and_detail(self):
        recorder = FlightRecorder(clock=lambda: 1234)
        event = recorder.record("transition", "probe",
                                from_state="loaded", to_state="running")
        assert event.at == 1234
        doc = event.to_dict()
        assert doc["kind"] == "transition"
        assert doc["detail"] == {"from_state": "loaded",
                                 "to_state": "running"}

    def test_events_limit_returns_newest(self):
        recorder = FlightRecorder()
        for index in range(4):
            recorder.record("deploy", f"s{index}")
        assert [e.component for e in recorder.events(limit=2)] == \
            ["s2", "s3"]


class TestDumps:
    def test_dump_kinds_trigger_a_dump_with_sections(self):
        recorder = FlightRecorder()
        recorder.dumper = lambda: {"health": {"status": "ok"}}
        recorder.record("deploy", "probe")  # not a dump kind
        assert recorder.last_dump() is None
        recorder.record("degraded", "probe", reason="budget exhausted")
        dump = recorder.last_dump()
        assert dump is not None
        assert dump["reason"] == "degraded:probe"
        assert dump["trigger"]["kind"] == "degraded"
        assert dump["health"] == {"status": "ok"}
        # The journal snapshot includes the triggering event itself.
        assert [e["kind"] for e in dump["events"]] == \
            ["deploy", "degraded"]

    def test_no_dump_without_a_builder(self):
        recorder = FlightRecorder()
        recorder.record("worker_crash", "probe")
        assert recorder.status()["dumps_taken"] == 0

    def test_forced_dump_needs_no_trigger(self):
        recorder = FlightRecorder()
        recorder.dumper = lambda: {"section": 1}
        doc = recorder.dump(reason="operator-request")
        assert doc["reason"] == "operator-request"
        assert doc["trigger"] is None
        assert doc["section"] == 1

    def test_broken_builder_still_yields_a_dump(self):
        recorder = FlightRecorder()

        def explode():
            raise RuntimeError("sections unavailable")

        recorder.dumper = explode
        doc = recorder.dump(reason="crash")
        assert "RuntimeError" in doc["dump_error"]
        assert doc["events"] == []

    def test_dump_retention_keeps_the_last_n(self):
        recorder = FlightRecorder()
        recorder.dumper = dict
        for index in range(DUMP_RETENTION + 3):
            recorder.dump(reason=f"r{index}")
        dumps = recorder.dumps()
        assert len(dumps) == DUMP_RETENTION
        assert dumps[0]["reason"] == "r3"
        assert dumps[-1]["reason"] == f"r{DUMP_RETENTION + 2}"
        assert recorder.status()["dumps_taken"] == DUMP_RETENTION + 3

    def test_every_dump_kind_is_a_degradation_or_crash(self):
        assert DUMP_KINDS == {"degraded", "worker_crash", "server_crash",
                              "thread_crash"}


class TestThreadStacks:
    def test_snapshot_includes_named_threads(self):
        ready = threading.Event()
        release = threading.Event()

        def parked():
            ready.set()
            release.wait(timeout=10.0)

        thread = threading.Thread(target=parked, name="gsn-test-parked",
                                  daemon=True)
        thread.start()
        try:
            assert ready.wait(timeout=5.0)
            stacks = thread_stacks()
            by_name = {doc["thread"]: doc for doc in stacks}
            assert "gsn-test-parked" in by_name
            doc = by_name["gsn-test-parked"]
            assert doc["daemon"] is True
            assert any("parked" in line for line in doc["stack"])
        finally:
            release.set()
            thread.join(timeout=5.0)
