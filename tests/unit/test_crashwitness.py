"""Unit tests for the runtime thread-crash witness and the supervised
restart-or-degrade behavior it backs (worker pool, life-cycle manager,
HTTP server)."""

import contextlib
import threading
import time

import pytest

from repro.analysis import crashwitness
from repro.analysis.crashwitness import CrashWitness, ThreadCrash
from repro.descriptors.model import LifeCycleConfig
from repro.vsensor.lifecycle import LifecycleState, LifeCycleManager
from repro.vsensor.pool import WorkerPool


@contextlib.contextmanager
def session_expected():
    """Mark crashes as intentional in the suite-wide witness too."""
    witness = crashwitness.active()
    if witness is None:
        yield
        return
    with witness.expected():
        yield


@contextlib.contextmanager
def fresh_witness():
    """A hermetic witness whose hook does not chain into the suite's
    (and does not spray default tracebacks on stderr)."""
    previous = threading.excepthook
    threading.excepthook = lambda args: None
    witness = CrashWitness()
    witness.install()
    try:
        yield witness
    finally:
        witness.uninstall()
        threading.excepthook = previous


def wait_until(predicate, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def crash_thread(name="crasher"):
    thread = threading.Thread(
        target=lambda: (_ for _ in ()).throw(ValueError("meant to die")),
        name=name, daemon=True)
    thread.start()
    thread.join(timeout=5.0)


class TestCrashWitness:
    def test_hook_records_escaped_exception(self):
        with fresh_witness() as witness:
            crash_thread("gsn-test-crasher")
        assert len(witness.crashes) == 1
        crash = witness.crashes[0]
        assert crash.exc_type == "ValueError"
        assert crash.thread_name == "gsn-test-crasher"
        assert not crash.supervised
        assert "ValueError" in crash.trace

    def test_watch_attributes_owner_by_longest_prefix(self):
        with fresh_witness() as witness:
            witness.watch("gsn-pool-", "some-pool")
            witness.watch("gsn-pool-probe-", "probe")
            crash_thread("gsn-pool-probe-0")
        assert witness.crashes[0].owner == "probe"

    def test_unwatched_thread_is_unknown(self):
        with fresh_witness() as witness:
            crash_thread("mystery")
        assert witness.crashes[0].owner == "unknown"

    def test_on_crash_callback_runs_and_errors_are_contained(self):
        seen = []

        def cb(crash):
            seen.append(crash)
            raise RuntimeError("broken callback")

        with fresh_witness() as witness:
            witness.watch("gsn-pool-", "probe", on_crash=cb)
            crash_thread("gsn-pool-0")
            crash_thread("gsn-pool-1")
        assert len(seen) == 2
        assert all(isinstance(c, ThreadCrash) for c in seen)

    def test_expected_context_excuses_crashes(self):
        with fresh_witness() as witness:
            with witness.expected():
                crash_thread()
            crash_thread()
        assert len(witness.crashes) == 2
        assert len(witness.unexpected()) == 1
        assert not witness.unexpected()[0].expected

    def test_report_is_the_supervised_path(self):
        witness = CrashWitness()  # never installed: report() is direct
        try:
            raise OSError("disk on fire")
        except OSError as exc:
            crash = witness.report("gsn-pool-probe-0", exc, owner="probe")
        assert crash.supervised
        assert crash.owner == "probe"
        assert witness.counts_by_owner() == {"probe": 1}
        assert "OSError" in crash.render()

    def test_status_document(self):
        witness = CrashWitness()
        try:
            raise ValueError("v")
        except ValueError as exc:
            witness.report("t", exc, owner="a")
        doc = witness.status()
        assert doc["crashes"] == 1
        assert doc["unexpected"] == 1
        assert doc["by_owner"] == {"a": 1}
        assert "ValueError" in doc["last"]
        assert doc["installed"] is False

    def test_enable_is_idempotent(self):
        active = crashwitness.active()
        if active is None:
            pytest.skip("suite runs with GSN_CRASH_WITNESS=0")
        assert crashwitness.enable() is active


class TestPoolSupervision:
    def _corrupted_pool(self, monkeypatch, **kwargs):
        pool = WorkerPool(size=1, synchronous=False, name="crashy",
                          **kwargs)

        def bad_run(task):
            raise RuntimeError("worker corrupted")

        monkeypatch.setattr(pool, "_run", bad_run)
        return pool

    def test_crashed_worker_is_restarted(self, monkeypatch):
        pool = self._corrupted_pool(monkeypatch)
        with session_expected():
            pool.submit(lambda: None)
            assert wait_until(lambda: pool.restarts >= 1)
        assert pool.workers_crashed >= 1
        assert not pool.degraded
        pool.shutdown()

    def test_crash_budget_exhaustion_degrades(self, monkeypatch):
        reasons = []
        pool = self._corrupted_pool(monkeypatch,
                                    on_degraded=reasons.append)
        with session_expected():
            for __ in range(pool.MAX_RESTARTS + 1):
                pool.submit(lambda: None)
            assert wait_until(lambda: pool.degraded)
        assert pool.restarts == pool.MAX_RESTARTS
        assert pool.workers_crashed == pool.MAX_RESTARTS + 1
        assert len(reasons) == 1 and "budget" in reasons[0]
        status = pool.status()
        assert status["degraded"] is True
        assert status["workers_crashed"] == pool.MAX_RESTARTS + 1
        pool.shutdown()

    def test_crashes_reach_the_witness(self, monkeypatch):
        witness = crashwitness.active()
        if witness is None:
            pytest.skip("suite runs with GSN_CRASH_WITNESS=0")
        before = witness.counts_by_owner().get("crashy", 0)
        pool = self._corrupted_pool(monkeypatch)
        with session_expected():
            pool.submit(lambda: None)
            assert wait_until(
                lambda: witness.counts_by_owner().get("crashy", 0) > before)
        crash = [c for c in witness.crashes if c.owner == "crashy"][-1]
        assert crash.supervised and crash.expected
        pool.shutdown()

    def test_task_failures_are_not_crashes(self):
        pool = WorkerPool(size=1, synchronous=False, name="tasks")
        pool.submit(lambda: (_ for _ in ()).throw(ValueError("task bug")))
        pool.drain()
        assert wait_until(lambda: pool.tasks_failed == 1)
        assert pool.workers_crashed == 0
        assert not pool.degraded
        pool.shutdown()


class TestLifecycleDegradation:
    def test_pool_degradation_marks_sensor_degraded(self, monkeypatch):
        lcm = LifeCycleManager("probe", LifeCycleConfig(pool_size=1),
                               synchronous=False)
        lcm.start(now=0)

        def bad_run(task):
            raise RuntimeError("boom")

        monkeypatch.setattr(lcm.pool, "_run", bad_run)
        with session_expected():
            for __ in range(lcm.pool.MAX_RESTARTS + 1):
                lcm.pool.submit(lambda: None)
            assert wait_until(
                lambda: lcm.state is LifecycleState.DEGRADED)
        assert lcm.is_processing  # degraded keeps processing
        doc = lcm.status()
        assert doc["state"] == "degraded"
        assert "budget" in doc["degraded_reason"]
        assert doc["counters"]["workers_crashed"] == \
            lcm.pool.MAX_RESTARTS + 1
        lcm.stop()

    def test_recover_returns_to_running(self):
        lcm = LifeCycleManager("probe", LifeCycleConfig(), synchronous=True)
        lcm.start(now=0)
        lcm.degrade("test reason")
        assert lcm.state is LifecycleState.DEGRADED
        lcm.recover()
        assert lcm.state is LifecycleState.RUNNING
        assert lcm.degraded_reason is None
        lcm.stop()

    def test_late_degradation_is_ignored(self):
        lcm = LifeCycleManager("probe", LifeCycleConfig(), synchronous=True)
        lcm.start(now=0)
        lcm.stop()
        lcm._pool_degraded("too late")  # must not raise
        assert lcm.state is LifecycleState.STOPPED
