"""Unit tests for scalar and aggregate SQL functions."""

import pytest

from repro.exceptions import SQLExecutionError
from repro.sqlengine.executor import Catalog, execute
from repro.sqlengine.functions import call_aggregate, call_scalar


def scalar(sql):
    return execute(sql, Catalog()).rows[0][0]


class TestScalarFunctions:
    def test_abs(self):
        assert scalar("select abs(-5)") == 5

    def test_round_half_away_from_zero(self):
        assert scalar("select round(2.5)") == 3
        assert scalar("select round(-2.5)") == -3
        assert scalar("select round(2.345, 2)") == 2.35

    def test_floor_ceil(self):
        assert scalar("select floor(2.7)") == 2
        assert scalar("select ceil(2.1)") == 3
        assert scalar("select ceiling(-2.1)") == -2

    def test_sqrt_power_mod_sign(self):
        assert scalar("select sqrt(16)") == 4.0
        assert scalar("select power(2, 10)") == 1024
        assert scalar("select mod(7, 3)") == 1
        assert scalar("select sign(-3)") == -1
        assert scalar("select sign(0)") == 0

    def test_string_functions(self):
        assert scalar("select upper('abc')") == "ABC"
        assert scalar("select lower('ABC')") == "abc"
        assert scalar("select length('hello')") == 5
        assert scalar("select trim('  x  ')") == "x"
        assert scalar("select replace('aaa', 'a', 'b')") == "bbb"
        assert scalar("select instr('hello', 'll')") == 3
        assert scalar("select instr('hello', 'z')") == 0
        assert scalar("select concat('a', 1, 'b')") == "a1b"

    def test_substr_one_based(self):
        assert scalar("select substr('hello', 2)") == "ello"
        assert scalar("select substr('hello', 2, 2)") == "el"
        assert scalar("select substr('hello', -3)") == "llo"
        assert scalar("select substr('hello', 1, 0)") == ""

    def test_coalesce_ifnull_nullif(self):
        assert scalar("select coalesce(null, null, 7)") == 7
        assert scalar("select coalesce(null, null)") is None
        assert scalar("select ifnull(null, 'x')") == "x"
        assert scalar("select nullif(3, 3)") is None
        assert scalar("select nullif(3, 4)") == 3

    def test_octet_length(self):
        assert scalar("select octet_length('abc')") == 3
        assert scalar("select octet_length(X'001122')") == 3

    def test_null_propagation(self):
        assert scalar("select abs(null)") is None
        assert scalar("select upper(null)") is None
        assert scalar("select substr(null, 1)") is None

    def test_unknown_function(self):
        with pytest.raises(SQLExecutionError):
            scalar("select frobnicate(1)")

    def test_error_wrapped(self):
        with pytest.raises(SQLExecutionError):
            scalar("select sqrt(-1)")


class TestAggregateDispatch:
    def test_skips_nulls(self):
        assert call_aggregate("sum", [1, None, 2]) == 3
        assert call_aggregate("avg", [None, None]) is None
        assert call_aggregate("count", [1, None, 2]) == 2

    def test_count_star_counts_rows(self):
        assert call_aggregate("count", [], star=True, row_count=7) == 7

    def test_star_invalid_for_others(self):
        with pytest.raises(SQLExecutionError):
            call_aggregate("sum", [], star=True, row_count=7)

    def test_distinct(self):
        assert call_aggregate("sum", [1, 1, 2], distinct=True) == 3
        assert call_aggregate("count", [b"x", b"x"], distinct=True) == 1

    def test_unknown_aggregate(self):
        with pytest.raises(SQLExecutionError):
            call_aggregate("nope", [1])

    def test_variance_and_stddev(self):
        values = [2, 4, 4, 4, 5, 5, 7, 9]
        assert call_aggregate("variance", values) == 4.0
        assert call_aggregate("stddev", values) == 2.0

    def test_scalar_dispatch_error_context(self):
        with pytest.raises(SQLExecutionError, match="mod"):
            call_scalar("mod", ["a", 2])
