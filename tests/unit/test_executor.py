"""Unit tests for SQL execution: scans, filters, projection, null logic."""

import pytest

from repro.exceptions import SQLExecutionError, SQLPlanError
from repro.sqlengine.executor import Catalog, execute
from repro.sqlengine.relation import Relation


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register("t", Relation(
        ["a", "b", "timed"],
        [(1, "x", 100), (2, "y", 200), (3, "x", 300), (None, "z", 400)],
    ))
    cat.register("u", Relation(
        ["a", "c"],
        [(1, 10.0), (2, 20.0), (9, 90.0)],
    ))
    return cat


def rows(catalog, sql):
    return execute(sql, catalog).to_dicts()


class TestProjection:
    def test_star(self, catalog):
        assert len(rows(catalog, "select * from t")) == 4

    def test_column_order_preserved(self, catalog):
        result = execute("select b, a from t", catalog)
        assert result.columns == ("b", "a")

    def test_expressions(self, catalog):
        assert rows(catalog, "select a * 2 + 1 as x from t where a = 2") \
            == [{"x": 5}]

    def test_aliases_and_generated_names(self, catalog):
        result = execute("select a, a + 1, avg(a) from t", catalog)
        assert result.columns == ("a", "expr", "avg_a")

    def test_duplicate_output_names_deduped(self, catalog):
        result = execute("select a, a from t", catalog)
        assert result.columns == ("a", "a_2")

    def test_select_without_from(self, catalog):
        assert rows(catalog, "select 1 + 1 as two") == [{"two": 2}]

    def test_distinct(self, catalog):
        assert rows(catalog, "select distinct b from t") == [
            {"b": "x"}, {"b": "y"}, {"b": "z"}]


class TestWhere:
    def test_comparison(self, catalog):
        assert len(rows(catalog, "select * from t where a > 1")) == 2

    def test_null_never_matches(self, catalog):
        assert len(rows(catalog, "select * from t where a = a")) == 3

    def test_is_null(self, catalog):
        assert rows(catalog, "select b from t where a is null") \
            == [{"b": "z"}]

    def test_and_or(self, catalog):
        assert len(rows(
            catalog, "select * from t where a = 1 or a = 3")) == 2
        assert len(rows(
            catalog, "select * from t where a > 1 and b = 'x'")) == 1

    def test_in_list_with_null_operand(self, catalog):
        # NULL IN (...) is NULL -> filtered out.
        assert len(rows(catalog, "select * from t where a in (1, 2, 3)")) == 3

    def test_not_in_with_null_option(self, catalog):
        # a NOT IN (1, NULL): nothing passes (either matched or unknown).
        assert rows(
            catalog, "select * from t where a not in (1, null)") == []

    def test_between(self, catalog):
        assert len(rows(catalog,
                        "select * from t where a between 1 and 2")) == 2

    def test_like(self, catalog):
        assert len(rows(catalog, "select * from t where b like 'X%'")) == 2
        assert len(rows(catalog, "select * from t where b like '_'")) == 4

    def test_unknown_column_raises(self, catalog):
        with pytest.raises(SQLExecutionError):
            execute("select * from t where nosuch = 1", catalog)

    def test_unknown_table_raises(self, catalog):
        with pytest.raises(SQLPlanError):
            execute("select * from nosuch", catalog)


class TestNullSemantics:
    def test_arithmetic_propagates_null(self, catalog):
        result = rows(catalog, "select a + 1 as x from t where b = 'z'")
        assert result == [{"x": None}]

    def test_division_by_zero_is_null(self, catalog):
        assert rows(catalog, "select 1 / 0 as x") == [{"x": None}]
        assert rows(catalog, "select 1 % 0 as x") == [{"x": None}]

    def test_concat_with_null(self, catalog):
        assert rows(catalog, "select 'a' || null as x") == [{"x": None}]

    def test_not_null_is_null(self, catalog):
        assert rows(catalog, "select * from t where not (a is null)") \
            == rows(catalog, "select * from t where a is not null")

    def test_kleene_and(self, catalog):
        # NULL AND FALSE is FALSE; NULL AND TRUE is NULL.
        assert rows(catalog,
                    "select b from t where a is null and 1 = 2") == []
        assert rows(catalog,
                    "select b from t where (a > 0) and 1 = 1 and a is null"
                    ) == []

    def test_kleene_or(self, catalog):
        # (NULL > 0) OR TRUE is TRUE -> the null row passes.
        assert len(rows(catalog,
                        "select * from t where a > 0 or 1 = 1")) == 4


class TestArithmetic:
    def test_integer_division_exact(self, catalog):
        assert rows(catalog, "select 6 / 2 as x") == [{"x": 3}]

    def test_integer_division_fractional(self, catalog):
        assert rows(catalog, "select 5 / 2 as x") == [{"x": 2.5}]

    def test_modulo_sign_follows_dividend(self, catalog):
        assert rows(catalog, "select -7 % 3 as x") == [{"x": -1}]
        assert rows(catalog, "select 7 % -3 as x") == [{"x": 1}]

    def test_mixed_types_comparison_equals_false(self, catalog):
        assert rows(catalog, "select * from t where a = 'x'") == []

    def test_incomparable_order_raises(self, catalog):
        with pytest.raises(SQLExecutionError):
            execute("select * from t where a < 'x'", catalog)

    def test_string_arithmetic_raises(self, catalog):
        with pytest.raises(SQLExecutionError):
            execute("select 'a' + 1", catalog)


class TestOrderLimit:
    def test_order_asc_nulls_first(self, catalog):
        result = rows(catalog, "select a from t order by a")
        assert [r["a"] for r in result] == [None, 1, 2, 3]

    def test_order_desc(self, catalog):
        result = rows(catalog, "select a from t order by a desc")
        assert [r["a"] for r in result] == [3, 2, 1, None]

    def test_order_by_position(self, catalog):
        result = rows(catalog, "select b, a from t order by 2 desc")
        assert [r["a"] for r in result][0] == 3

    def test_order_by_alias(self, catalog):
        result = rows(catalog,
                      "select a * -1 as neg from t where a is not null "
                      "order by neg")
        assert [r["neg"] for r in result] == [-3, -2, -1]

    def test_order_by_expression_not_in_output(self, catalog):
        result = rows(catalog,
                      "select b from t where a is not null order by a desc")
        assert [r["b"] for r in result] == ["x", "y", "x"]

    def test_order_stable_for_ties(self, catalog):
        result = rows(catalog, "select a, b from t order by b")
        xs = [r["a"] for r in result if r["b"] == "x"]
        assert xs == [1, 3]  # original order preserved within ties

    def test_limit_offset(self, catalog):
        result = rows(catalog, "select a from t order by timed limit 2")
        assert [r["a"] for r in result] == [1, 2]
        result = rows(catalog,
                      "select a from t order by timed limit 2 offset 2")
        assert [r["a"] for r in result] == [3, None]

    def test_order_position_out_of_range(self, catalog):
        with pytest.raises(SQLExecutionError):
            execute("select a from t order by 5", catalog)

    def test_case_expression(self, catalog):
        result = rows(
            catalog,
            "select case when a >= 2 then 'hi' when a = 1 then 'lo' "
            "else 'null' end as k from t order by timed",
        )
        assert [r["k"] for r in result] == ["lo", "hi", "hi", "null"]

    def test_simple_case_null_never_matches(self, catalog):
        result = rows(
            catalog,
            "select case a when 1 then 'one' else 'other' end as k "
            "from t where a is null",
        )
        assert result == [{"k": "other"}]
