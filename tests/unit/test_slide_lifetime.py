"""Unit tests for window slide and stream lifetime bounding
(paper, Section 3: sampling / rate / lifetime control of temporal
processing)."""

import pytest

from repro.datatypes import DataType
from repro.descriptors.model import (
    AddressSpec, InputStreamSpec, StreamSourceSpec,
)
from repro.descriptors.validation import validate_descriptor
from repro.descriptors.xml_io import descriptor_from_xml, descriptor_to_xml
from repro.exceptions import ValidationError
from repro.gsntime.clock import VirtualClock
from repro.streams.schema import StreamSchema
from repro.vsensor.input_manager import InputStreamManager
from repro.wrappers.scripted import ScriptedWrapper

from tests.conftest import simple_mote_descriptor


def spec(slide=None, lifetime=None):
    return InputStreamSpec(
        name="in",
        sources=(StreamSourceSpec(
            alias="s1", address=AddressSpec("scripted"),
            storage_size="100", slide=slide,
        ),),
        query="select * from s1",
        lifetime=lifetime,
    )


def wired_ism(clock, triggers):
    ism = InputStreamManager(clock, lambda name, el: triggers.append(el))
    wrapper = ScriptedWrapper()
    wrapper.script(lambda now: {"v": 1},
                   StreamSchema.build(v=DataType.INTEGER))
    wrapper.attach(clock)
    return ism, wrapper


class TestSlide:
    def test_count_slide_fires_every_nth(self):
        clock = VirtualClock(1_000)
        triggers = []
        ism, wrapper = wired_ism(clock, triggers)
        ism.add_stream(spec(slide="3"), {"s1": wrapper})
        for i in range(9):
            wrapper.emit({"v": i}, timed=1_000 + i)
        assert len(triggers) == 3
        assert [e.timed for e in triggers] == [1_002, 1_005, 1_008]

    def test_count_slide_window_still_updates(self):
        clock = VirtualClock(1_000)
        triggers = []
        ism, wrapper = wired_ism(clock, triggers)
        ism.add_stream(spec(slide="4"), {"s1": wrapper})
        for i in range(4):
            wrapper.emit({"v": i}, timed=1_000 + i)
        source = ism.stream("in").source("s1")
        assert len(source.window.contents()) == 4  # all admitted

    def test_time_slide_fires_on_elapsed_span(self):
        clock = VirtualClock(0)
        triggers = []
        ism, wrapper = wired_ism(clock, triggers)
        ism.add_stream(spec(slide="1s"), {"s1": wrapper})
        for timed in (0, 200, 900, 1_000, 1_500, 2_100):
            wrapper.emit({"v": 1}, timed=timed)
        assert [e.timed for e in triggers] == [0, 1_000, 2_100]

    def test_no_slide_triggers_every_admission(self):
        clock = VirtualClock(0)
        triggers = []
        ism, wrapper = wired_ism(clock, triggers)
        ism.add_stream(spec(), {"s1": wrapper})
        for i in range(5):
            wrapper.emit({"v": i}, timed=i)
        assert len(triggers) == 5


class TestLifetime:
    def test_stream_stops_after_lifetime(self):
        clock = VirtualClock(0)
        triggers = []
        ism, wrapper = wired_ism(clock, triggers)
        ism.add_stream(spec(lifetime="2s"), {"s1": wrapper})
        wrapper.emit({"v": 1}, timed=100)
        clock.advance(1_000)
        wrapper.emit({"v": 2}, timed=1_100)
        clock.advance(1_500)  # now = 2_500, past the 2 s lifetime
        wrapper.emit({"v": 3}, timed=2_500)
        assert len(triggers) == 2
        assert ism.stream("in").expired(clock.now())

    def test_unbounded_by_default(self):
        clock = VirtualClock(0)
        triggers = []
        ism, wrapper = wired_ism(clock, triggers)
        ism.add_stream(spec(), {"s1": wrapper})
        assert ism.stream("in").expires_at is None
        clock.advance(10**9)
        wrapper.emit({"v": 1}, timed=clock.now())
        assert len(triggers) == 1

    def test_status_reports_expiry(self):
        clock = VirtualClock(0)
        ism, wrapper = wired_ism(clock, [])
        ism.add_stream(spec(lifetime="1s"), {"s1": wrapper})
        assert ism.status()["in"]["expired"] is False
        clock.advance(2_000)
        assert ism.status()["in"]["expired"] is True


class TestDescriptorPlumbing:
    def test_xml_roundtrip_with_slide_and_lifetime(self):
        from dataclasses import replace
        descriptor = simple_mote_descriptor()
        stream = descriptor.input_streams[0]
        source = replace(stream.sources[0], slide="5")
        stream = replace(stream, sources=(source,), lifetime="1h")
        descriptor = replace(descriptor, input_streams=(stream,))
        again = descriptor_from_xml(descriptor_to_xml(descriptor))
        assert again == descriptor
        assert again.input_streams[0].lifetime == "1h"
        assert again.input_streams[0].sources[0].slide == "5"

    def test_bad_lifetime_rejected(self):
        from dataclasses import replace
        descriptor = simple_mote_descriptor()
        stream = replace(descriptor.input_streams[0], lifetime="soon")
        bad = replace(descriptor, input_streams=(stream,))
        with pytest.raises(ValidationError, match="lifetime"):
            validate_descriptor(bad)

    def test_bad_slide_rejected(self):
        from dataclasses import replace
        descriptor = simple_mote_descriptor()
        source = replace(descriptor.input_streams[0].sources[0],
                         slide="sometimes")
        stream = replace(descriptor.input_streams[0], sources=(source,))
        bad = replace(descriptor, input_streams=(stream,))
        with pytest.raises(ValidationError, match="slide"):
            validate_descriptor(bad)

    def test_container_integration(self):
        """A slide-2 sensor halves its output volume."""
        from repro import GSNContainer
        from dataclasses import replace
        descriptor = simple_mote_descriptor(interval_ms=500)
        source = replace(descriptor.input_streams[0].sources[0], slide="2")
        stream = replace(descriptor.input_streams[0], sources=(source,))
        descriptor = replace(descriptor, input_streams=(stream,))
        with GSNContainer("slide-test") as node:
            node.deploy(descriptor)
            node.run_for(4_000)
            assert node.sensor("probe").elements_produced == 4  # 8 ticks / 2
