"""Unit tests for the Virtual Sensor Manager (deploy/undeploy/reconfigure)."""

import pytest

from repro.exceptions import DeploymentError, ValidationError
from repro.gsntime.clock import VirtualClock
from repro.gsntime.scheduler import EventScheduler
from repro.storage.manager import StorageManager
from repro.vsensor.manager import VirtualSensorManager
from repro.wrappers.registry import default_registry

from tests.conftest import simple_mote_descriptor


@pytest.fixture
def vsm():
    clock = VirtualClock(1_000)
    scheduler = EventScheduler(clock)
    storage = StorageManager()
    manager = VirtualSensorManager(clock, storage, default_registry(),
                                   scheduler=scheduler)
    yield manager
    manager.stop_all()
    storage.close()


class TestDeploy:
    def test_deploy_creates_running_sensor(self, vsm):
        sensor = vsm.deploy(simple_mote_descriptor())
        assert sensor.lifecycle.state.value == "running"
        assert "probe" in vsm
        assert vsm.sensor_names() == ["probe"]

    def test_deploy_without_start(self, vsm):
        sensor = vsm.deploy(simple_mote_descriptor(), start=False)
        assert sensor.lifecycle.state.value == "loaded"

    def test_output_stream_created(self, vsm):
        vsm.deploy(simple_mote_descriptor())
        assert "vs_probe" in vsm.storage

    def test_duplicate_name_rejected(self, vsm):
        vsm.deploy(simple_mote_descriptor())
        with pytest.raises(DeploymentError):
            vsm.deploy(simple_mote_descriptor())

    def test_invalid_descriptor_leaves_no_residue(self, vsm):
        bad = simple_mote_descriptor(
            stream_query="select * from not_an_alias"
        )
        with pytest.raises(ValidationError):
            vsm.deploy(bad)
        assert vsm.sensor_names() == []
        assert "vs_probe" not in vsm.storage

    def test_unknown_wrapper_rejected(self, vsm):
        descriptor = simple_mote_descriptor()
        source = descriptor.input_streams[0].sources[0]
        from dataclasses import replace
        bad_source = replace(source, address=type(source.address)(
            "hologram", {}))
        bad_stream = replace(descriptor.input_streams[0],
                             sources=(bad_source,))
        bad = replace(descriptor, input_streams=(bad_stream,))
        with pytest.raises(ValidationError):
            vsm.deploy(bad)

    def test_remote_without_network_rejected(self, vsm):
        from dataclasses import replace
        descriptor = simple_mote_descriptor()
        source = descriptor.input_streams[0].sources[0]
        remote_source = replace(source, address=type(source.address)(
            "remote", {"type": "temperature"}))
        stream = replace(descriptor.input_streams[0],
                         sources=(remote_source,))
        bad = replace(descriptor, input_streams=(stream,))
        with pytest.raises(DeploymentError, match="peer network"):
            vsm.deploy(bad)

    def test_deploy_hooks_fire(self, vsm):
        deployed = []
        undeployed = []
        vsm.on_deploy(lambda s: deployed.append(s.name))
        vsm.on_undeploy(undeployed.append)
        vsm.deploy(simple_mote_descriptor())
        vsm.undeploy("probe")
        assert deployed == ["probe"]
        assert undeployed == ["probe"]


class TestUndeploy:
    def test_undeploy_stops_and_cleans(self, vsm):
        sensor = vsm.deploy(simple_mote_descriptor())
        vsm.undeploy("probe")
        assert sensor.lifecycle.state.value == "stopped"
        assert "probe" not in vsm
        assert "vs_probe" not in vsm.storage

    def test_unknown_name(self, vsm):
        with pytest.raises(DeploymentError):
            vsm.undeploy("ghost")

    def test_case_insensitive(self, vsm):
        vsm.deploy(simple_mote_descriptor())
        vsm.undeploy("  PROBE ")
        assert vsm.sensor_names() == []


class TestReconfigure:
    def test_replaces_running_sensor(self, vsm):
        original = vsm.deploy(simple_mote_descriptor(interval_ms=100))
        replacement = vsm.reconfigure(simple_mote_descriptor(
            interval_ms=1_000))
        assert original.lifecycle.state.value == "stopped"
        assert replacement is vsm.get("probe")
        assert replacement is not original

    def test_reconfigure_fresh_name_deploys(self, vsm):
        sensor = vsm.reconfigure(simple_mote_descriptor(name="new"))
        assert sensor.name == "new"

    def test_invalid_replacement_keeps_original(self, vsm):
        original = vsm.deploy(simple_mote_descriptor())
        bad = simple_mote_descriptor(
            stream_query="select * from wrong_alias"
        )
        with pytest.raises(ValidationError):
            vsm.reconfigure(bad)
        assert vsm.get("probe") is original
        assert original.lifecycle.state.value == "running"


class TestStatus:
    def test_status_document(self, vsm):
        vsm.deploy(simple_mote_descriptor())
        status = vsm.status()
        assert status["deployed"] == ["probe"]
        assert status["deploy_count"] == 1
        assert "probe" in status["sensors"]

    def test_stop_all(self, vsm):
        vsm.deploy(simple_mote_descriptor(name="a"))
        vsm.deploy(simple_mote_descriptor(name="b"))
        vsm.stop_all()
        assert vsm.sensor_names() == []
