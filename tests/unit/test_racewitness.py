"""Unit tests for the runtime race witness."""

from __future__ import annotations

import os
import threading
from collections import deque

import pytest

from repro.analysis import racewitness
from repro.analysis.racewitness import (
    GuardedDeque, GuardedDict, GuardedList, RaceWitness,
    RaceWitnessViolation, TrackingLock, declared_guard_names,
    declared_guards,
)


class Box:
    def __init__(self) -> None:
        self._lock = TrackingLock("Box._lock", threading.Lock())
        self.items = []  # guarded-by: Box._lock
        self.table = {}  # guarded-by: Box._lock
        self.count = 0  # guarded-by: Box._lock
        self.free = 0


class Ring:
    def __init__(self) -> None:
        self._lock = TrackingLock("Ring._lock", threading.Lock())
        self.buf = deque(maxlen=4)  # guarded-by: Ring._lock


@pytest.fixture
def witness():
    w = RaceWitness(strict=True)
    w.instrument(Box)
    try:
        yield w
    finally:
        w.restore_all()


class TestDeclarationParsing:
    def test_declared_guards_resolve_to_lock_attr(self):
        assert declared_guards(Box) == {
            "items": "_lock", "table": "_lock", "count": "_lock",
        }

    def test_qualified_names_take_the_tail(self):
        class Q:
            def __init__(self) -> None:
                self._emit_lock = None
                self.n = 0  # guarded-by: Q._emit_lock

        assert declared_guards(Q) == {"n": "_emit_lock"}

    def test_guard_names_qualify_bare_declarations(self):
        class B:
            def __init__(self) -> None:
                self._lock = None
                self.n = 0  # guarded-by: _lock

        assert declared_guard_names(B) == {"B._lock"}
        assert declared_guard_names(Box) == {"Box._lock"}


class TestTrackingLock:
    def test_held_by_current_thread(self):
        lock = TrackingLock("t", threading.Lock())
        assert not lock.held_by_current_thread()
        with lock:
            assert lock.held_by_current_thread()
        assert not lock.held_by_current_thread()

    def test_reentrant_holds_refcount(self):
        lock = TrackingLock("t", threading.RLock())
        with lock:
            with lock:
                assert lock.held_by_current_thread()
            assert lock.held_by_current_thread()
        assert not lock.held_by_current_thread()

    def test_holds_are_per_thread(self):
        lock = TrackingLock("t", threading.Lock())
        seen = []
        with lock:
            worker = threading.Thread(
                target=lambda: seen.append(lock.held_by_current_thread()))
            worker.start()
            worker.join()
        assert seen == [False]


class TestEnforcement:
    def test_guarded_mutations_under_lock_pass(self, witness):
        box = Box()
        with box._lock:
            box.items.append(1)
            box.table["k"] = 2
            box.count = 3
        assert witness.checks >= 3
        assert not witness.violations

    def test_unguarded_rebind_raises(self, witness):
        box = Box()
        with pytest.raises(RaceWitnessViolation, match="Box.count"):
            box.count = 1
        assert witness.unexpected()

    def test_unguarded_list_mutator_raises(self, witness):
        box = Box()
        with pytest.raises(RaceWitnessViolation, match="Box.items"):
            box.items.append(1)

    def test_unguarded_dict_mutator_raises(self, witness):
        box = Box()
        with pytest.raises(RaceWitnessViolation, match="Box.table"):
            box.table["k"] = 1

    def test_undeclared_attribute_is_not_checked(self, witness):
        box = Box()
        box.free = 9
        assert box.free == 9
        assert not witness.violations

    def test_reads_are_not_checked(self, witness):
        box = Box()
        assert box.count == 0
        assert list(box.items) == []
        assert not witness.violations

    def test_violation_from_worker_thread_names_the_thread(self, witness):
        box = Box()
        caught = []

        def worker():
            try:
                box.count = 7
            except RaceWitnessViolation as exc:
                caught.append(exc)

        thread = threading.Thread(target=worker, name="racy-worker")
        thread.start()
        thread.join()
        assert len(caught) == 1
        assert "racy-worker" in str(caught[0])
        assert witness.unexpected()[0].thread == "racy-worker"

    def test_expected_suppresses_the_raise_but_records(self, witness):
        box = Box()
        with witness.expected():
            box.count = 1
        assert box.count == 1
        assert witness.violations and witness.violations[0].expected
        assert not witness.unexpected()

    def test_collections_are_wrapped_on_construction(self, witness):
        box = Box()
        assert type(box.items) is GuardedList
        assert type(box.table) is GuardedDict

    def test_rebind_under_lock_keeps_the_proxy(self, witness):
        box = Box()
        with box._lock:
            box.items = [1, 2]
        assert type(box.items) is GuardedList
        with pytest.raises(RaceWitnessViolation):
            box.items.append(3)

    def test_deque_proxy_preserves_maxlen(self, witness):
        witness.instrument(Ring)
        ring = Ring()
        assert type(ring.buf) is GuardedDeque
        assert ring.buf.maxlen == 4
        with ring._lock:
            for i in range(6):
                ring.buf.append(i)
        assert list(ring.buf) == [2, 3, 4, 5]

    def test_untracked_lock_gives_no_verdict(self, witness):
        class Plain:
            def __init__(self) -> None:
                self._lock = threading.Lock()
                self.n = 0  # guarded-by: Plain._lock

        witness.instrument(Plain)
        plain = Plain()
        plain.n = 1  # plain stdlib lock: the tracker cannot see holds
        assert plain.n == 1
        assert not witness.violations


class TestInstrumentationLifecycle:
    def test_restore_removes_all_checks(self):
        w = RaceWitness(strict=True)
        w.instrument(Box)
        w.restore_all()
        box = Box()
        box.count = 1  # no raise: class is back to normal
        assert type(box.items) is list

    def test_instrument_is_idempotent(self, witness):
        init = Box.__init__
        witness.instrument(Box)
        assert Box.__init__ is init

    def test_class_without_declarations_is_skipped(self, witness):
        class Bare:
            def __init__(self) -> None:
                self.n = 0

        init = Bare.__init__
        witness.instrument(Bare)
        assert Bare.__init__ is init

    def test_inheriting_subclass_is_armed(self, witness):
        class Sub(Box):
            pass

        sub = Sub()
        with pytest.raises(RaceWitnessViolation):
            sub.count = 1

    def test_subclass_with_own_init_stays_silent(self, witness):
        # Arming happens when the *witnessed* __init__ is outermost; a
        # subclass adding construction steps after super().__init__()
        # must not trip on its own (single-threaded) constructor.
        class Sub(Box):
            def __init__(self) -> None:
                super().__init__()
                self.count = 5  # construction, not a race

        sub = Sub()
        assert sub.count == 5
        assert not witness.violations


@pytest.mark.skipif(os.environ.get("GSN_RACE_WITNESS", "1") == "0",
                    reason="suite-wide race witness disabled")
class TestSuiteWideFixture:
    def test_module_witness_is_active_and_idempotent(self):
        active = racewitness.active()
        assert active is not None
        assert racewitness.enable() is active

    def test_core_classes_are_instrumented(self):
        from repro.vsensor.pool import WorkerPool

        active = racewitness.active()
        assert WorkerPool in active._instrumented

    def test_new_lock_wraps_only_declared_guard_names(self):
        from repro.concurrency import new_lock

        # A declared guard of an instrumented class gets the tracker...
        lock = new_lock("WorkerPool._lock")
        assert isinstance(lock, TrackingLock)
        # ...every other lock passes through unwrapped: the witness
        # never queries it, so wrapping would be pure hot-path cost.
        other = new_lock("test.witness-probe")
        assert not isinstance(other, TrackingLock)
