"""Unit tests for the async-safety pass (GSN9xx)."""

from __future__ import annotations

import glob
import textwrap

from repro.analysis.asyncgraph import analyze_async
from repro.analysis.cli import main as lint_main


def write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return str(path)


def run(tmp_path, source, name="mod.py"):
    path = write(tmp_path, name, source)
    report, analysis = analyze_async([path])
    return report, analysis


def rules(report):
    return [f.rule_id for f in report.findings]


class TestGSN901Blocking:
    def test_direct_blocking_call_in_coroutine(self, tmp_path):
        report, _ = run(tmp_path, """\
            import time

            async def handler():
                time.sleep(1)
        """)
        assert rules(report) == ["GSN901"]

    def test_blocking_reached_through_sync_helper(self, tmp_path):
        report, _ = run(tmp_path, """\
            import queue

            class C:
                def __init__(self):
                    self._queue = queue.Queue(8)

                async def pump(self):
                    self._drain()

                def _drain(self):
                    self._queue.get(timeout=0.1)
        """)
        assert rules(report) == ["GSN901"]
        assert "via coroutine C.pump" in report.findings[0].message

    def test_sync_lock_acquire_on_loop_flagged(self, tmp_path):
        report, _ = run(tmp_path, """\
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()

                async def poke(self):
                    with self._lock:
                        pass
        """)
        assert rules(report) == ["GSN901"]

    def test_awaited_calls_are_not_blocking(self, tmp_path):
        report, _ = run(tmp_path, """\
            import asyncio

            class C:
                def __init__(self):
                    self._event = asyncio.Event()

                async def wait_for_it(self):
                    await self._event.wait()
                    await asyncio.sleep(0.1)
        """)
        assert report.ok
        assert not report.findings

    def test_loop_callback_is_loop_context(self, tmp_path):
        # A sync callback registered via call_later runs on the loop and
        # is judged exactly like a coroutine.
        report, _ = run(tmp_path, """\
            import time

            class C:
                def __init__(self, loop):
                    self._loop = loop

                async def arm(self):
                    self._loop.call_later(0.1, self._tick)

                def _tick(self):
                    time.sleep(1)
        """)
        assert "GSN901" in rules(report)

    def test_nowait_handoff_is_clean(self, tmp_path):
        report, _ = run(tmp_path, """\
            import queue

            class C:
                def __init__(self):
                    self._queue = queue.Queue(8)

                async def push(self, item):
                    self._queue.put_nowait(item)
        """)
        assert report.ok
        assert not report.findings

    def test_blocking_in_plain_sync_code_not_flagged(self, tmp_path):
        report, _ = run(tmp_path, """\
            import time

            def worker():
                time.sleep(1)
        """)
        assert not report.findings


class TestGSN902LockAcrossAwait:
    def test_await_under_with_lock(self, tmp_path):
        report, _ = run(tmp_path, """\
            import asyncio
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()

                async def update(self):
                    with self._lock:
                        await asyncio.sleep(0)
        """)
        assert "GSN902" in rules(report)

    def test_requires_lock_coroutine_awaiting(self, tmp_path):
        report, _ = run(tmp_path, """\
            import asyncio
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()

                async def _step(self):  # requires-lock: _lock
                    await asyncio.sleep(0)
        """)
        assert "GSN902" in rules(report)

    def test_asyncio_lock_is_fine(self, tmp_path):
        report, _ = run(tmp_path, """\
            import asyncio

            class C:
                def __init__(self):
                    self._gate = asyncio.Lock()

                async def update(self):
                    async with self._gate:
                        await asyncio.sleep(0)
        """)
        assert "GSN902" not in rules(report)

    def test_lock_released_before_await_is_fine(self, tmp_path):
        report, _ = run(tmp_path, """\
            import asyncio
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0  # guarded-by: C._lock

                async def update(self):
                    with self._lock:
                        self.value += 1
                    await asyncio.sleep(0)
        """)
        assert "GSN902" not in rules(report)


class TestGSN903FireAndForget:
    def test_bare_create_task(self, tmp_path):
        report, _ = run(tmp_path, """\
            import asyncio

            class C:
                async def work(self):
                    pass

                async def kick(self):
                    asyncio.create_task(self.work())
        """)
        assert "GSN903" in rules(report)

    def test_unawaited_coroutine_call(self, tmp_path):
        report, _ = run(tmp_path, """\
            class C:
                async def work(self):
                    pass

                def misfire(self):
                    self.work()
        """)
        assert "GSN903" in rules(report)

    def test_kept_task_is_fine(self, tmp_path):
        report, _ = run(tmp_path, """\
            import asyncio

            class C:
                async def work(self):
                    pass

                async def kick(self):
                    self._task = asyncio.create_task(self.work())
                    self._task.add_done_callback(print)
        """)
        assert "GSN903" not in rules(report)

    def test_awaited_call_is_fine(self, tmp_path):
        report, _ = run(tmp_path, """\
            class C:
                async def work(self):
                    pass

                async def run(self):
                    await self.work()
        """)
        assert "GSN903" not in rules(report)


class TestGSN904ThreadAffinity:
    def test_loop_api_from_foreign_thread(self, tmp_path):
        report, _ = run(tmp_path, """\
            class C:
                def __init__(self, loop):
                    self._loop = loop

                def submit(self):
                    self._loop.call_soon(print)
        """)
        assert rules(report) == ["GSN904"]

    def test_threadsafe_variant_is_fine(self, tmp_path):
        report, _ = run(tmp_path, """\
            class C:
                def __init__(self, loop):
                    self._loop = loop

                def submit(self):
                    self._loop.call_soon_threadsafe(print)
        """)
        assert not report.findings

    def test_bootstrap_thread_may_drive_its_loop(self, tmp_path):
        report, _ = run(tmp_path, """\
            import asyncio

            class C:
                async def _main(self):
                    await asyncio.sleep(0)

                def run(self):
                    loop = asyncio.new_event_loop()
                    loop.run_until_complete(self._main())
                    loop.close()
        """)
        assert not report.findings

    def test_loop_owned_write_from_foreign_thread(self, tmp_path):
        report, _ = run(tmp_path, """\
            import asyncio

            class C:
                def __init__(self):
                    self.pending = 0  # owned-by: loop

                async def tick(self):
                    self.pending += 1
                    await asyncio.sleep(0)

                def poke(self):
                    self.pending += 1
        """)
        findings = [f for f in report.findings if f.rule_id == "GSN904"]
        assert len(findings) == 1
        assert "C.poke" in findings[0].location

    def test_loop_owned_read_from_foreign_thread_is_fine(self, tmp_path):
        report, _ = run(tmp_path, """\
            import asyncio

            class C:
                def __init__(self):
                    self.pending = 0  # owned-by: loop

                async def tick(self):
                    self.pending += 1
                    await asyncio.sleep(0)

                def snapshot(self):
                    return self.pending
        """)
        assert not report.findings


class TestGSN905UnboundedQueue:
    def test_unbounded_queue_warns(self, tmp_path):
        report, _ = run(tmp_path, """\
            import asyncio

            class C:
                def __init__(self):
                    self._inbox = asyncio.Queue()
        """)
        assert rules(report) == ["GSN905"]
        assert report.ok  # warning, not error

    def test_bounded_queue_is_fine(self, tmp_path):
        report, _ = run(tmp_path, """\
            import asyncio

            class C:
                def __init__(self):
                    self._inbox = asyncio.Queue(maxsize=128)
                    self._other = asyncio.Queue(64)
        """)
        assert not report.findings

    def test_zero_maxsize_warns(self, tmp_path):
        report, _ = run(tmp_path, """\
            import asyncio

            class C:
                def __init__(self):
                    self._inbox = asyncio.Queue(maxsize=0)
        """)
        assert rules(report) == ["GSN905"]


class TestSuppressionAndRaceHandshake:
    def test_inline_suppression(self, tmp_path):
        report, analysis = run(tmp_path, """\
            import time

            async def handler():
                time.sleep(1)  # gsn-lint: disable=GSN901
        """)
        assert not report.findings
        assert analysis.suppressed_count == 1

    def test_race_pass_exempts_loop_owned_state(self, tmp_path):
        from repro.analysis.racegraph import analyze_races
        path = write(tmp_path, "mod.py", """\
            import asyncio
            import threading

            class C:
                def __init__(self):
                    self.pending = 0  # owned-by: loop
                    self._thread = None

                def start(self):
                    self._thread = threading.Thread(
                        target=self._boot, daemon=True)
                    self._thread.start()

                def _boot(self):
                    loop = asyncio.new_event_loop()
                    loop.run_until_complete(self._main())

                async def _main(self):
                    self.pending += 1
                    await asyncio.sleep(0)
        """)
        report, _ = analyze_races([path])
        assert not [f for f in report.findings
                    if f.rule_id.startswith("GSN80")
                    and "pending" in f.message]


class TestSeededBadExamples:
    def test_each_async_seed_is_rejected_strict(self):
        seeds = sorted(glob.glob("examples/bad/gsn90*.py"))
        assert len(seeds) == 5
        for seed in seeds:
            assert lint_main(
                ["--async", "--strict-warnings", seed]) == 1, seed

    def test_each_async_seed_names_its_rule(self, capsys):
        for rule_id in ("GSN901", "GSN902", "GSN903", "GSN904", "GSN905"):
            matches = glob.glob(
                f"examples/bad/gsn{rule_id[3:]}_*.py")
            assert len(matches) == 1, rule_id
            lint_main(["--async", "--strict-warnings", matches[0]])
            out = capsys.readouterr().out
            assert rule_id in out, (rule_id, out)

    def test_gateway_and_repro_are_async_clean(self):
        assert lint_main(
            ["--async", "--strict-warnings", "src/repro"]) == 0
