"""Faulty devices must not take the node's event loop down."""

from repro.datatypes import DataType
from repro.gsntime.clock import VirtualClock
from repro.gsntime.scheduler import EventScheduler
from repro.streams.schema import StreamSchema
from repro.wrappers.base import WrapperState
from repro.wrappers.scripted import ScriptedWrapper


def flaky_producer(fail_at):
    state = {"count": 0}

    def produce(now):
        state["count"] += 1
        if state["count"] in fail_at:
            raise RuntimeError("device glitch")
        return {"v": state["count"]}

    return produce


def build(producer):
    clock = VirtualClock(0)
    scheduler = EventScheduler(clock)
    wrapper = ScriptedWrapper()
    wrapper.script(producer, StreamSchema.build(v=DataType.INTEGER))
    wrapper.attach(clock, scheduler)
    wrapper.configure({"interval": "100"})
    wrapper.start()
    return scheduler, wrapper


class TestFaultIsolation:
    def test_single_glitch_skips_one_cycle(self):
        scheduler, wrapper = build(flaky_producer(fail_at={3}))
        seen = []
        wrapper.add_listener(seen.append)
        scheduler.run_for(1_000)  # exception must not escape here
        assert wrapper.produce_failures == 1
        assert len(seen) == 9
        assert wrapper.state is WrapperState.RUNNING

    def test_persistent_fault_stops_wrapper(self):
        scheduler, wrapper = build(flaky_producer(fail_at=set(range(1, 100))))
        seen = []
        wrapper.add_listener(seen.append)
        scheduler.run_for(5_000)
        assert wrapper.state is WrapperState.STOPPED
        assert wrapper.produce_failures == wrapper.MAX_CONSECUTIVE_FAILURES
        assert seen == []
        # Once stopped, no further events fire for this wrapper.
        fired_before = scheduler.events_fired
        scheduler.run_for(2_000)
        assert scheduler.events_fired == fired_before

    def test_recovery_resets_consecutive_count(self):
        # Fail 9 in a row (below the cap of 10), recover once, fail 9 more:
        # the wrapper must survive both stretches.
        fail_at = set(range(1, 10)) | set(range(11, 20))
        scheduler, wrapper = build(flaky_producer(fail_at=fail_at))
        seen = []
        wrapper.add_listener(seen.append)
        scheduler.run_for(2_500)
        assert wrapper.state is WrapperState.RUNNING
        assert wrapper.produce_failures == 18
        assert len(seen) == 25 - 18

    def test_manual_tick_still_raises(self):
        """tick() is the caller's direct request — failures propagate."""
        import pytest
        __, wrapper = build(flaky_producer(fail_at={1}))
        with pytest.raises(RuntimeError):
            wrapper.tick()
