"""Unit tests for the whole-program data-race pass (GSN8xx)."""

from __future__ import annotations

import glob
import textwrap

import pytest

from repro.analysis.racegraph import analyze_races


def write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return str(path)


def run(tmp_path, source, name="mod.py"):
    path = write(tmp_path, name, source)
    report, analysis = analyze_races([path])
    return report, analysis


def rules(report):
    return [f.rule_id for f in report.findings]


THREADED_CLASS = """\
    import threading

    class C:
        def __init__(self):
            self.{init}
            self._thread = None

        def start(self):
            self._thread = threading.Thread(target=self._work, daemon=True)
            self._thread.start()

        def _work(self):
            {work}

        def read(self):
            return {read}
"""


def threaded(init, work, read="None"):
    return THREADED_CLASS.format(init=init, work=work, read=read)


class TestRuleFiring:
    def test_gsn801_unguarded_scalar_write(self, tmp_path):
        report, __ = run(tmp_path, threaded(
            "value = None", "self.value = 1", "self.value"))
        assert rules(report) == ["GSN801"]

    def test_gsn802_declared_guard_not_held(self, tmp_path):
        report, __ = run(tmp_path, """\
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0  # guarded-by: C._lock
                    self._thread = None

                def start(self):
                    self._thread = threading.Thread(target=self._work)
                    self._thread.start()

                def _work(self):
                    with self._lock:
                        self.n += 1

                def reset(self):
                    self.n = 0
        """)
        assert rules(report) == ["GSN802"]
        finding = report.findings[0]
        assert "C._lock" in finding.message
        assert "reset" in finding.location

    def test_gsn802_dominant_guard_without_declaration(self, tmp_path):
        report, __ = run(tmp_path, """\
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0
                    self._thread = None

                def start(self):
                    self._thread = threading.Thread(target=self._work)
                    self._thread.start()

                def _work(self):
                    with self._lock:
                        self.n = 1

                def a(self):
                    with self._lock:
                        self.n = 2

                def b(self):
                    with self._lock:
                        self.n = 3

                def oops(self):
                    self.n = 4
        """)
        assert rules(report) == ["GSN802"]
        assert "oops" in report.findings[0].location

    def test_gsn803_unguarded_rmw(self, tmp_path):
        report, __ = run(tmp_path, threaded(
            "hits = 0", "self.hits += 1", "self.hits"))
        assert rules(report) == ["GSN803"]
        assert "read-modify-write" in report.findings[0].message

    def test_gsn804_unsynchronized_collection(self, tmp_path):
        report, __ = run(tmp_path, threaded(
            "events = []", "self.events.append(1)", "list(self.events)"))
        assert rules(report) == ["GSN804"]

    def test_gsn805_guarded_collection_escapes(self, tmp_path):
        report, __ = run(tmp_path, """\
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.samples = []  # guarded-by: C._lock
                    self._thread = None

                def start(self):
                    self._thread = threading.Thread(target=self._work)
                    self._thread.start()

                def _work(self):
                    with self._lock:
                        self.samples.append(1)

                def leak(self):
                    return self.samples

                def safe(self):
                    with self._lock:
                        return list(self.samples)
        """)
        assert rules(report) == ["GSN805"]
        assert "leak" in report.findings[0].location

    def test_gsn806_unknown_lock(self, tmp_path):
        report, __ = run(tmp_path, threaded(
            "n = 0  # guarded-by: _missing",
            "self.n = 1", "self.n"))
        assert "GSN806" in rules(report)
        assert "unknown lock" in report.findings[0].message

    def test_gsn806_non_canonical_name(self, tmp_path):
        report, __ = run(tmp_path, """\
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.d = {}  # guarded-by: _lock
                    self._thread = None

                def start(self):
                    self._thread = threading.Thread(target=self._work)
                    self._thread.start()

                def _work(self):
                    with self._lock:
                        self.d["k"] = 1
        """)
        assert rules(report) == ["GSN806"]
        assert "C._lock" in report.findings[0].message

    def test_gsn806_stale_declaration(self, tmp_path):
        report, __ = run(tmp_path, """\
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.d = {}  # guarded-by: C._lock
                    self._thread = None

                def start(self):
                    self._thread = threading.Thread(target=self._work)
                    self._thread.start()

                def _work(self):
                    self.d["k"] = 1
        """)
        assert "GSN806" in rules(report)
        messages = " ".join(f.message for f in report.findings)
        assert "stale" in messages


class TestPrecision:
    def test_main_only_state_is_quiet(self, tmp_path):
        report, __ = run(tmp_path, """\
            class C:
                def __init__(self):
                    self.n = 0

                def bump(self):
                    self.n += 1

                def read(self):
                    return self.n
        """)
        assert rules(report) == []

    def test_main_write_concurrent_read_scalar_is_benign(self, tmp_path):
        # The stop-flag idiom: a scalar rebind on the main thread read
        # by a worker is atomic under the GIL.
        report, __ = run(tmp_path, """\
            import threading

            class C:
                def __init__(self):
                    self._stop = False
                    self._thread = None

                def start(self):
                    self._thread = threading.Thread(target=self._work)
                    self._thread.start()

                def _work(self):
                    while not self._stop:
                        pass

                def stop(self):
                    self._stop = True
        """)
        assert rules(report) == []

    def test_collection_rebind_from_main_is_benign(self, tmp_path):
        # Publishing a freshly built list with one assignment is safe;
        # only in-place mutation of a shared collection races readers.
        report, __ = run(tmp_path, """\
            import threading

            class C:
                def __init__(self):
                    self.rows = []
                    self._thread = None

                def start(self):
                    self._thread = threading.Thread(target=self._work)
                    self._thread.start()

                def _work(self):
                    for row in list(self.rows):
                        pass

                def load(self, rows):
                    loaded = [dict(r) for r in rows]
                    self.rows = loaded
        """)
        assert rules(report) == []

    def test_fully_locked_class_is_clean(self, tmp_path):
        report, __ = run(tmp_path, """\
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0  # guarded-by: C._lock
                    self._thread = None

                def start(self):
                    self._thread = threading.Thread(target=self._work)
                    self._thread.start()

                def _work(self):
                    with self._lock:
                        self.n += 1

                def read(self):
                    with self._lock:
                        return self.n
        """)
        assert rules(report) == []

    def test_lock_context_propagates_into_helpers(self, tmp_path):
        # A private helper only ever called under the lock inherits the
        # caller's held set — the write inside it is guarded.
        report, __ = run(tmp_path, """\
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0
                    self._thread = None

                def start(self):
                    self._thread = threading.Thread(target=self._work)
                    self._thread.start()

                def _work(self):
                    with self._lock:
                        self._bump()

                def bump(self):
                    with self._lock:
                        self._bump()

                def _bump(self):
                    self.n += 1
        """)
        assert rules(report) == []

    def test_suppression_comment_silences_finding(self, tmp_path):
        report, __ = run(tmp_path, threaded(
            "hits = 0",
            "self.hits += 1  # gsn-lint: disable=GSN803",
            "self.hits"))
        assert rules(report) == []


class TestEntryDiscovery:
    def test_pool_submit_target_is_concurrent(self, tmp_path):
        report, analysis = run(tmp_path, """\
            class C:
                def __init__(self, pool):
                    self.pool = pool
                    self.n = 0

                def kick(self):
                    self.pool.submit(self._task)

                def _task(self):
                    self.n += 1

                def read(self):
                    return self.n
        """)
        assert rules(report) == ["GSN803"]

    def test_timer_callback_is_concurrent(self, tmp_path):
        report, __ = run(tmp_path, """\
            import threading

            class C:
                def __init__(self):
                    self.n = 0

                def arm(self):
                    threading.Timer(1.0, self._fire).start()

                def _fire(self):
                    self.n += 1

                def read(self):
                    return self.n
        """)
        assert rules(report) == ["GSN803"]


SEEDED = sorted(glob.glob("examples/bad/gsn80*.py"))


class TestSeededExamples:
    def test_six_seeds_exist(self):
        assert len(SEEDED) == 6

    @pytest.mark.parametrize("path", SEEDED)
    def test_each_seed_fires_exactly_its_rule(self, path):
        expected = "GSN" + path.rsplit("gsn", 1)[1][:3]
        report, __ = analyze_races([path])
        assert rules(report) == [expected], path
