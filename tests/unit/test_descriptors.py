"""Unit tests for descriptor model, XML I/O, and validation."""

import pytest

from repro.datatypes import DataType
from repro.descriptors.model import (
    AddressSpec, InputStreamSpec, LifeCycleConfig, StorageConfig,
    StreamSourceSpec, VirtualSensorDescriptor,
)
from repro.descriptors.validation import validate_descriptor
from repro.descriptors.xml_io import descriptor_from_xml, descriptor_to_xml
from repro.exceptions import DescriptorError, ValidationError
from repro.streams.schema import Field, StreamSchema

FIGURE1_XML = """
<virtual-sensor name="avg-temp" priority="10">
  <life-cycle pool-size="10" />
  <output-structure>
    <field name="TEMPERATURE" type="integer"/>
  </output-structure>
  <storage permanent-storage="true" size="10s" />
  <input-stream name="dummy" rate="100">
    <stream-source alias="src1" sampling-rate="1"
                   storage-size="1h" disconnect-buffer="10">
      <address wrapper="remote">
        <predicate key="type" val="temperature" />
        <predicate key="location" val="bc143" />
      </address>
      <query>select avg(temperature) as temperature from WRAPPER</query>
    </stream-source>
    <query>select * from src1</query>
  </input-stream>
</virtual-sensor>
"""


def make_descriptor(**overrides):
    base = dict(
        name="probe",
        output_structure=StreamSchema([Field("v", DataType.INTEGER)]),
        input_streams=(InputStreamSpec(
            name="in",
            sources=(StreamSourceSpec(
                alias="s1",
                address=AddressSpec("mote", {"interval": "100"}),
                query="select * from wrapper",
            ),),
            query="select * from s1",
        ),),
    )
    base.update(overrides)
    return VirtualSensorDescriptor(**base)


class TestModel:
    def test_figure1_fields_available(self):
        descriptor = descriptor_from_xml(FIGURE1_XML)
        assert descriptor.name == "avg-temp"
        assert descriptor.priority == 10
        assert descriptor.lifecycle.pool_size == 10
        assert descriptor.storage == StorageConfig(True, "10s")
        stream = descriptor.input_streams[0]
        assert stream.name == "dummy"
        assert stream.rate == 100
        source = stream.sources[0]
        assert source.alias == "src1"
        assert source.sampling_rate == 1.0
        assert source.storage_size == "1h"
        assert source.disconnect_buffer == 10
        assert source.address.wrapper == "remote"
        assert source.address.predicates == {"type": "temperature",
                                             "location": "bc143"}
        assert descriptor.output_structure["temperature"].type \
            is DataType.INTEGER

    def test_discovery_predicates_include_name(self):
        descriptor = make_descriptor(addressing={"type": "x"})
        assert descriptor.discovery_predicates == {"name": "probe",
                                                   "type": "x"}

    def test_name_normalized(self):
        assert make_descriptor(name=" Probe-1 ").name == "probe-1"

    @pytest.mark.parametrize("bad_kwargs", [
        {"name": ""},
        {"name": "has space"},
        {"input_streams": ()},
        {"priority": 99},
    ])
    def test_invalid_descriptor(self, bad_kwargs):
        with pytest.raises(ValidationError):
            make_descriptor(**bad_kwargs)

    def test_duplicate_stream_names_rejected(self):
        stream = make_descriptor().input_streams[0]
        with pytest.raises(ValidationError):
            make_descriptor(input_streams=(stream, stream))

    def test_duplicate_aliases_rejected(self):
        source = make_descriptor().input_streams[0].sources[0]
        with pytest.raises(ValidationError):
            InputStreamSpec(name="x", sources=(source, source),
                            query="select * from s1")

    def test_bad_sampling_rate(self):
        with pytest.raises(ValidationError):
            StreamSourceSpec(alias="s", address=AddressSpec("mote"),
                             sampling_rate=0.0)

    def test_bad_pool_size(self):
        with pytest.raises(ValidationError):
            LifeCycleConfig(pool_size=0)

    def test_source_aliases(self):
        assert make_descriptor().source_aliases() == ("s1",)


class TestXmlIO:
    def test_roundtrip(self):
        descriptor = descriptor_from_xml(FIGURE1_XML)
        regenerated = descriptor_from_xml(descriptor_to_xml(descriptor))
        assert regenerated == descriptor

    def test_malformed_xml(self):
        with pytest.raises(DescriptorError):
            descriptor_from_xml("<virtual-sensor name='x'")

    def test_wrong_root(self):
        with pytest.raises(DescriptorError):
            descriptor_from_xml("<sensor name='x'/>")

    def test_missing_output_structure(self):
        with pytest.raises(DescriptorError, match="output-structure"):
            descriptor_from_xml(
                "<virtual-sensor name='x'>"
                "<input-stream name='i'>"
                "<stream-source alias='s'>"
                "<address wrapper='mote'/></stream-source>"
                "<query>select * from s</query>"
                "</input-stream></virtual-sensor>"
            )

    def test_missing_query_defaults_for_source_only(self):
        descriptor = descriptor_from_xml("""
        <virtual-sensor name="x">
          <output-structure><field name="v" type="integer"/></output-structure>
          <input-stream name="i">
            <stream-source alias="s">
              <address wrapper="mote"/>
            </stream-source>
            <query>select * from s</query>
          </input-stream>
        </virtual-sensor>
        """)
        assert descriptor.input_streams[0].sources[0].query \
            == "select * from wrapper"

    def test_stream_query_required(self):
        with pytest.raises(DescriptorError, match="query"):
            descriptor_from_xml("""
            <virtual-sensor name="x">
              <output-structure>
                <field name="v" type="integer"/>
              </output-structure>
              <input-stream name="i">
                <stream-source alias="s"><address wrapper="mote"/>
                </stream-source>
              </input-stream>
            </virtual-sensor>
            """)

    def test_predicate_text_content_form(self):
        descriptor = descriptor_from_xml("""
        <virtual-sensor name="x">
          <output-structure><field name="v" type="integer"/></output-structure>
          <addressing><predicate key="room">BC-143</predicate></addressing>
          <input-stream name="i">
            <stream-source alias="s"><address wrapper="mote"/></stream-source>
            <query>select * from s</query>
          </input-stream>
        </virtual-sensor>
        """)
        assert descriptor.addressing == {"room": "BC-143"}

    def test_bad_attribute_types(self):
        bad = FIGURE1_XML.replace('pool-size="10"', 'pool-size="many"')
        with pytest.raises(DescriptorError):
            descriptor_from_xml(bad)

    def test_bad_field_type(self):
        bad = FIGURE1_XML.replace('type="integer"', 'type="quark"')
        with pytest.raises(DescriptorError):
            descriptor_from_xml(bad)

    def test_xml_escaping_roundtrip(self):
        descriptor = make_descriptor(
            description='needs <escaping> & "quotes"',
            addressing={"note": "a<b&c"},
        )
        assert descriptor_from_xml(descriptor_to_xml(descriptor)) \
            == descriptor

    def test_query_with_comparison_roundtrip(self):
        source = StreamSourceSpec(
            alias="s1", address=AddressSpec("mote"),
            query="select * from wrapper where v < 10 and v > 2",
        )
        descriptor = make_descriptor(input_streams=(InputStreamSpec(
            name="in", sources=(source,), query="select * from s1"),))
        again = descriptor_from_xml(descriptor_to_xml(descriptor))
        assert again.input_streams[0].sources[0].query == source.query


class TestValidation:
    def test_valid_descriptor_no_warnings(self):
        assert validate_descriptor(make_descriptor()) == []

    def test_source_query_must_read_wrapper_only(self):
        descriptor = make_descriptor()
        bad_source = StreamSourceSpec(
            alias="s1", address=AddressSpec("mote"),
            query="select * from other_table",
        )
        bad = make_descriptor(input_streams=(InputStreamSpec(
            name="in", sources=(bad_source,), query="select * from s1"),))
        del descriptor
        with pytest.raises(ValidationError, match="WRAPPER"):
            validate_descriptor(bad)

    def test_stream_query_unknown_alias(self):
        bad = make_descriptor(input_streams=(InputStreamSpec(
            name="in",
            sources=(StreamSourceSpec(alias="s1",
                                      address=AddressSpec("mote")),),
            query="select * from nonexistent",
        ),))
        with pytest.raises(ValidationError, match="unknown source"):
            validate_descriptor(bad)

    def test_unparseable_query(self):
        bad = make_descriptor(input_streams=(InputStreamSpec(
            name="in",
            sources=(StreamSourceSpec(alias="s1",
                                      address=AddressSpec("mote")),),
            query="selectt * from s1",
        ),))
        with pytest.raises(ValidationError, match="parse"):
            validate_descriptor(bad)

    def test_unknown_wrapper_with_registry(self):
        descriptor = make_descriptor()
        with pytest.raises(ValidationError, match="unknown wrapper"):
            validate_descriptor(descriptor,
                                known_wrapper=lambda name: False)

    def test_remote_needs_predicates(self):
        bad = make_descriptor(input_streams=(InputStreamSpec(
            name="in",
            sources=(StreamSourceSpec(alias="s1",
                                      address=AddressSpec("remote")),),
            query="select * from s1",
        ),))
        with pytest.raises(ValidationError, match="predicate"):
            validate_descriptor(bad)

    def test_bad_window_spec(self):
        bad = make_descriptor(input_streams=(InputStreamSpec(
            name="in",
            sources=(StreamSourceSpec(alias="s1",
                                      address=AddressSpec("mote"),
                                      storage_size="xyz"),),
            query="select * from s1",
        ),))
        with pytest.raises(ValidationError, match="window"):
            validate_descriptor(bad)

    def test_constant_source_warns(self):
        weird = make_descriptor(input_streams=(InputStreamSpec(
            name="in",
            sources=(StreamSourceSpec(alias="s1",
                                      address=AddressSpec("mote"),
                                      query="select 1"),),
            query="select * from s1",
        ),))
        warnings = validate_descriptor(weird)
        assert any("WRAPPER" in w for w in warnings)
