"""Unit tests for gsn-lint: one test (at least) per rule ID, plus the
CLI surface and the hypothesis guarantee that structurally-valid
descriptors never make the analyzer raise."""

import textwrap

from hypothesis import given, strategies as st

from repro.analysis import (
    analyze, analyze_descriptor, catalogue, describe, lint_source,
    schema_check,
)
from repro.analysis.cli import main as lint_main
from repro.datatypes import DataType
from repro.descriptors.model import (
    AddressSpec, InputStreamSpec, StorageConfig, StreamSourceSpec,
    VirtualSensorDescriptor,
)
from repro.streams.schema import Field, StreamSchema
from repro.wrappers.registry import default_registry
from tests.conftest import simple_mote_descriptor


def make_descriptor(name="probe", fields=None, wrapper="mica2",
                    predicates=None, source_query=(
                        "select avg(temperature) as temperature "
                        "from wrapper"),
                    stream_query="select * from src",
                    storage_size="5s", slide=None, sampling=1.0,
                    disconnect_buffer=0, permanent=False, history="1h",
                    addressing=None):
    if fields is None:
        fields = [("temperature", DataType.INTEGER)]
    if predicates is None:
        predicates = {"interval": "500"}
    return VirtualSensorDescriptor(
        name=name,
        output_structure=StreamSchema(
            [Field(n, t) for n, t in fields]
        ),
        input_streams=(InputStreamSpec(
            name="in",
            sources=(StreamSourceSpec(
                alias="src",
                address=AddressSpec(wrapper, dict(predicates)),
                query=source_query,
                storage_size=storage_size,
                slide=slide,
                sampling_rate=sampling,
                disconnect_buffer=disconnect_buffer,
            ),),
            query=stream_query,
        ),),
        storage=StorageConfig(permanent=permanent, history_size=history),
        addressing=addressing or {},
    )


def rule_ids(report):
    return set(report.rule_ids())


class TestCatalogue:
    def test_every_rule_has_id_severity_title(self):
        for rule in catalogue():
            assert rule.id.startswith("GSN")
            assert rule.severity in ("error", "warning")
            assert rule.title

    def test_describe(self):
        assert describe("GSN101") is not None
        assert describe("GSN999") is None

    def test_ids_are_stable(self):
        ids = {rule.id for rule in catalogue()}
        assert {"GSN100", "GSN101", "GSN102", "GSN103", "GSN104",
                "GSN105", "GSN106", "GSN107", "GSN108", "GSN109",
                "GSN110", "GSN201", "GSN202", "GSN203", "GSN204",
                "GSN205", "GSN301", "GSN302", "GSN303", "GSN304",
                "GSN305", "GSN401", "GSN402", "GSN403"} <= ids


class TestSchemaPass:
    def test_clean_descriptor_has_no_findings(self):
        report = analyze([simple_mote_descriptor()],
                         registry=default_registry())
        assert report.ok
        assert not report.findings

    def test_gsn100_basic_validation_failure(self):
        bad = make_descriptor(storage_size="5 parsecs")
        report = analyze_descriptor(bad, registry=default_registry())
        assert rule_ids(report) == {"GSN100"}

    def test_gsn101_unknown_column(self):
        bad = make_descriptor(
            source_query="select humidty as temperature from wrapper")
        report = analyze_descriptor(bad, registry=default_registry())
        assert "GSN101" in rule_ids(report)

    def test_gsn102_unknown_table_in_subquery(self):
        bad = make_descriptor(
            stream_query="select temperature from "
                         "(select temperature from elsewhere) t")
        report = schema_check(bad, default_registry())
        assert "GSN102" in rule_ids(report)

    def test_gsn103_type_mismatch_comparison(self):
        bad = make_descriptor(
            source_query="select avg(temperature) as temperature "
                         "from wrapper where temperature > 'hot'")
        report = analyze_descriptor(bad, registry=default_registry())
        assert "GSN103" in rule_ids(report)

    def test_gsn104_unknown_function(self):
        bad = make_descriptor(
            stream_query="select frobnicate(temperature) as temperature "
                         "from src")
        report = analyze_descriptor(bad, registry=default_registry())
        assert "GSN104" in rule_ids(report)

    def test_gsn105_missing_output_field(self):
        bad = make_descriptor(fields=[("humidity", DataType.DOUBLE)],
                              source_query="select temperature from wrapper",
                              stream_query="select temperature from src")
        report = analyze_descriptor(bad, registry=default_registry())
        assert "GSN105" in rule_ids(report)

    def test_gsn106_extra_column_dropped_is_warning(self):
        chatty = make_descriptor(
            source_query="select temperature, light from wrapper",
            stream_query="select temperature, light from src")
        report = analyze_descriptor(chatty, registry=default_registry())
        assert "GSN106" in rule_ids(report)
        assert report.ok  # warning only

    def test_gsn107_inconvertible_output_type(self):
        bad = make_descriptor(
            fields=[("temperature", DataType.BINARY)],
            source_query="select temperature from wrapper",
            stream_query="select temperature from src")
        report = analyze_descriptor(bad, registry=default_registry())
        assert "GSN107" in rule_ids(report)

    def test_double_into_integer_is_fine(self):
        # The runtime rounds floats into integer fields.
        ok = make_descriptor(
            fields=[("temperature", DataType.INTEGER)],
            source_query="select avg(temperature) as temperature "
                         "from wrapper")
        report = analyze_descriptor(ok, registry=default_registry())
        assert report.ok

    def test_gsn108_remote_schema_unknown_is_warning(self):
        remote = make_descriptor(
            wrapper="remote", predicates={"type": "temperature"},
            source_query="select temperature from wrapper",
            stream_query="select temperature from src",
            disconnect_buffer=10)
        report = analyze_descriptor(remote, registry=default_registry())
        assert "GSN108" in rule_ids(report)

    def test_gsn109_unknown_wrapper(self):
        bad = make_descriptor(wrapper="thermometer", predicates={})
        report = analyze_descriptor(bad, registry=default_registry())
        assert "GSN109" in rule_ids(report)

    def test_gsn109_wrapper_rejects_predicates(self):
        bad = make_descriptor(predicates={"interval": "0"})
        report = analyze_descriptor(bad, registry=default_registry())
        assert "GSN109" in rule_ids(report)

    def test_gsn110_ambiguous_column(self):
        two_motes = VirtualSensorDescriptor(
            name="pair",
            output_structure=StreamSchema(
                [Field("temperature", DataType.INTEGER)]
            ),
            input_streams=(InputStreamSpec(
                name="in",
                sources=(
                    StreamSourceSpec(
                        alias="a",
                        address=AddressSpec("mica2", {"node-id": "1"}),
                        query="select temperature from wrapper",
                        storage_size="1",
                    ),
                    StreamSourceSpec(
                        alias="b",
                        address=AddressSpec("mica2", {"node-id": "2"}),
                        query="select temperature from wrapper",
                        storage_size="1",
                    ),
                ),
                query="select temperature from a, b",
            ),),
            storage=StorageConfig(),
        )
        report = analyze_descriptor(two_motes, registry=default_registry())
        assert "GSN110" in rule_ids(report)

    def test_gsn111_scalar_wrong_arity(self):
        bad = make_descriptor(
            stream_query="select abs(temperature, 2) as temperature "
                         "from src")
        report = analyze_descriptor(bad, registry=default_registry())
        assert "GSN111" in rule_ids(report)

    def test_gsn111_variadic_minimum(self):
        bad = make_descriptor(
            stream_query="select coalesce() as temperature from src")
        report = analyze_descriptor(bad, registry=default_registry())
        assert "GSN111" in rule_ids(report)

    def test_gsn111_aggregate_wrong_arity(self):
        bad = make_descriptor(
            source_query="select avg(temperature, light) as temperature "
                         "from wrapper")
        report = analyze_descriptor(bad, registry=default_registry())
        assert "GSN111" in rule_ids(report)

    def test_gsn111_count_star_and_correct_arities_clean(self):
        good = make_descriptor(
            source_query="select count(*) as temperature from wrapper",
            stream_query="select coalesce(temperature, 0) as temperature "
                         "from src")
        report = analyze_descriptor(good, registry=default_registry())
        assert "GSN111" not in rule_ids(report)

    def test_select_star_mismatch_caught_statically(self):
        # The headline example: SELECT * used to defer all schema
        # checking to runtime.
        bad = make_descriptor(fields=[("humidity", DataType.DOUBLE)],
                              source_query="select * from wrapper")
        report = analyze_descriptor(bad, registry=default_registry())
        assert "GSN105" in rule_ids(report)


def remote_consumer(name, predicates, **kwargs):
    return make_descriptor(
        name=name, wrapper="remote", predicates=predicates,
        source_query="select temperature from wrapper",
        stream_query="select temperature from src",
        disconnect_buffer=10, **kwargs)


class TestGraphPass:
    def test_gsn201_cycle(self):
        a = remote_consumer("a", {"name": "b"})
        b = remote_consumer("b", {"name": "a"})
        report = analyze([a, b], registry=default_registry())
        assert "GSN201" in rule_ids(report)

    def test_gsn201_self_cycle(self):
        loop = remote_consumer("loop", {"name": "loop"})
        report = analyze([loop], registry=default_registry())
        assert "GSN201" in rule_ids(report)

    def test_gsn202_dangling_producer(self):
        orphan = remote_consumer("orphan", {"type": "nothing"})
        report = analyze([orphan], registry=default_registry())
        assert "GSN202" in rule_ids(report)

    def test_gsn202_suppressed_for_external_producers(self):
        orphan = remote_consumer("orphan", {"type": "nothing"})
        report = analyze([orphan], registry=default_registry(),
                         external_producers=True)
        assert "GSN202" not in rule_ids(report)

    def test_gsn203_multiple_producers(self):
        p1 = make_descriptor(name="p1",
                             addressing={"type": "temperature"})
        p2 = make_descriptor(name="p2",
                             addressing={"type": "temperature"})
        consumer = remote_consumer("consumer", {"type": "temperature"})
        report = analyze([p1, p2, consumer], registry=default_registry())
        assert "GSN203" in rule_ids(report)

    def test_gsn204_conflicting_predicates(self):
        producer = make_descriptor(name="producer",
                                   addressing={"location": "lab"})
        consumer = remote_consumer(
            "consumer", {"name": "producer", "location": "roof"})
        report = analyze([producer, consumer],
                         registry=default_registry())
        assert "GSN204" in rule_ids(report)

    def test_gsn205_duplicate_names(self):
        report = analyze([make_descriptor(), make_descriptor()],
                         registry=default_registry())
        assert "GSN205" in rule_ids(report)

    def test_chain_without_cycle_is_clean(self):
        producer = make_descriptor(name="producer",
                                   addressing={"type": "temperature"})
        consumer = remote_consumer("consumer", {"name": "producer"})
        report = analyze([producer, consumer],
                         registry=default_registry())
        assert "GSN201" not in rule_ids(report)
        assert report.ok


class TestResourcePass:
    def test_gsn301_window_over_budget(self):
        greedy = make_descriptor(storage_size="1h")
        report = analyze_descriptor(greedy, registry=default_registry(),
                                    memory_budget=1024)
        assert "GSN301" in rule_ids(report)

    def test_gsn302_and_gsn303_unbounded_history(self):
        hoarder = make_descriptor(permanent=True, history=None)
        report = analyze_descriptor(hoarder, registry=default_registry())
        assert {"GSN302", "GSN303"} <= rule_ids(report)
        assert report.ok  # warnings only

    def test_gsn303_suppressed_by_slide(self):
        paced = make_descriptor(permanent=True, history=None, slide="10")
        report = analyze_descriptor(paced, registry=default_registry())
        assert "GSN303" not in rule_ids(report)

    def test_gsn304_huge_count_window(self):
        greedy = make_descriptor(storage_size="2000000")
        report = analyze_descriptor(greedy, registry=default_registry())
        assert "GSN304" in rule_ids(report)

    def test_gsn305_remote_without_disconnect_buffer(self):
        fragile = make_descriptor(
            wrapper="remote", predicates={"type": "temperature"},
            source_query="select temperature from wrapper",
            stream_query="select temperature from src",
            disconnect_buffer=0)
        report = analyze_descriptor(fragile, registry=default_registry())
        assert "GSN305" in rule_ids(report)


LOCKED_TEMPLATE = """
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0  # guarded-by: _lock

{body}
"""


def lint(body):
    return lint_source(LOCKED_TEMPLATE.format(
        body=textwrap.indent(textwrap.dedent(body), "    ")))


class TestLockLint:
    def test_gsn401_unlocked_write(self):
        report = lint("""
            def bump(self):
                self.value += 1
        """)
        assert rule_ids(report) == {"GSN401"}

    def test_locked_write_is_clean(self):
        report = lint("""
            def bump(self):
                with self._lock:
                    self.value += 1
        """)
        assert report.ok and not report.findings

    def test_gsn401_unlocked_mutating_call(self):
        source = """
import threading


class Buffer:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []  # guarded-by: _lock

    def push(self, item):
        self.items.append(item)
"""
        report = lint_source(source)
        assert rule_ids(report) == {"GSN401"}

    def test_plain_read_is_not_flagged(self):
        report = lint("""
            def peek(self):
                return self.value
        """)
        assert not report.findings

    def test_init_is_exempt(self):
        report = lint("""
            def noop(self):
                pass
        """)
        assert not report.findings

    def test_gsn402_unknown_lock(self):
        source = """
class Odd:
    def __init__(self):
        self.value = 0  # guarded-by: _missing_lock
"""
        report = lint_source(source)
        assert "GSN402" in rule_ids(report)

    def test_gsn403_requires_lock_violation(self):
        report = lint("""
            def _unsafe_reset(self):  # requires-lock: _lock
                self.value = 0

            def reset(self):
                self._unsafe_reset()
        """)
        assert "GSN403" in rule_ids(report)

    def test_requires_lock_satisfied(self):
        report = lint("""
            def _unsafe_reset(self):  # requires-lock: _lock
                self.value = 0

            def reset(self):
                with self._lock:
                    self._unsafe_reset()
        """)
        assert not report.findings

    def test_syntax_error_reports_gsn100(self):
        report = lint_source("def broken(:\n    pass")
        assert "GSN100" in rule_ids(report)


class TestCli:
    def test_clean_examples_exit_zero(self, capsys):
        assert lint_main(["examples/descriptors/sine-wave.xml"]) == 0

    def test_bad_descriptor_exits_nonzero_with_rule_id(self, capsys):
        code = lint_main(["examples/bad/unknown-column.xml"])
        out = capsys.readouterr().out
        assert code == 1
        assert "GSN101" in out

    def test_each_seeded_bad_input_fails(self, capsys):
        import glob
        paths = sorted(glob.glob("examples/bad/*"))
        assert len(paths) >= 6
        for path in paths:
            # --plan --strict-warnings: the GSN7xx seeds include a
            # warning-only file (plan-ineligible.xml) that is clean to
            # every other pass by design.
            assert lint_main(["--plan", "--strict-warnings", path]) == 1, path

    def test_self_check_is_clean(self, capsys):
        assert lint_main(["--self-check"]) == 0

    def test_strict_warnings_escalates(self, capsys):
        remote = "examples/bad/dangling-remote.xml"
        assert lint_main(["--external-producers", remote]) == 0
        assert lint_main(["--external-producers", "--strict-warnings",
                          remote]) == 1

    def test_json_format(self, capsys):
        import json
        code = lint_main(["--format", "json",
                          "examples/bad/type-mismatch.xml"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["errors"] >= 1
        assert any(f["rule"] == "GSN103" for f in payload["findings"])

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "GSN101" in out and "GSN401" in out
        assert "GSN501" in out and "GSN111" in out
        assert "GSN601" in out and "GSN605" in out

    def test_json_findings_carry_location_and_suppression(self, capsys):
        import json
        code = lint_main(["--format", "json",
                          "examples/bad/swallowed_exception.py"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        finding = next(f for f in payload["findings"]
                       if f["rule"] == "GSN601")
        assert finding["path"] == "examples/bad/swallowed_exception.py"
        assert finding["line"] > 0
        assert finding["suppression"] == "# gsn-lint: disable=GSN601"

    def test_deadlock_pass_clean_on_repro(self, capsys):
        # The gating property: zero unsuppressed GSN5xx findings on the
        # shipped sources.
        assert lint_main(["--deadlock", "src/repro"]) == 0

    def test_deadlock_pass_flags_seeded_cycle(self, capsys):
        code = lint_main(["--deadlock", "examples/bad/deadlock_pair.py"])
        out = capsys.readouterr().out
        assert code == 1
        assert "GSN501" in out

    def test_deadlock_pass_flags_seeded_blocking(self, capsys):
        code = lint_main(
            ["--deadlock", "examples/bad/blocking_under_lock.py"])
        out = capsys.readouterr().out
        assert code == 1
        assert out.count("GSN502") == 2

    def test_default_python_lint_includes_deadlock_pass(self, capsys):
        # Without --deadlock, .py inputs run locklint AND the
        # interprocedural pass.
        assert lint_main(["examples/bad/deadlock_pair.py"]) == 1

    def test_flow_pass_clean_on_repro(self, capsys):
        # The gating property: zero unsuppressed GSN6xx findings on the
        # shipped sources (every real finding was fixed; the remaining
        # suppressions are justified in docs/reliability.md).
        assert lint_main(["--flow", "src/repro"]) == 0

    def test_flow_pass_flags_seeded_swallow(self, capsys):
        code = lint_main(["--flow", "examples/bad/swallowed_exception.py"])
        out = capsys.readouterr().out
        assert code == 1
        assert "GSN601" in out

    def test_flow_pass_flags_seeded_leak(self, capsys):
        code = lint_main(["--flow", "examples/bad/leaked_cursor.py"])
        out = capsys.readouterr().out
        assert code == 1
        assert "GSN603" in out

    def test_flow_pass_flags_seeded_dying_worker(self, capsys):
        code = lint_main(["--flow", "examples/bad/dying_worker.py"])
        out = capsys.readouterr().out
        assert code == 1
        assert "GSN602" in out

    def test_default_python_lint_includes_flow_pass(self, capsys):
        # Without --flow, .py inputs run locklint AND both
        # interprocedural passes.
        assert lint_main(["examples/bad/swallowed_exception.py"]) == 1

    def test_graph_dumps_dot(self, capsys):
        assert lint_main(["--graph", "src/repro"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph lock_order")
        assert "VirtualSensor._emit_lock" in out


_identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
_types = st.sampled_from(list(DataType))
_windows = st.one_of(
    st.integers(min_value=1, max_value=10_000).map(str),
    st.integers(min_value=1, max_value=3_600).map(lambda n: f"{n}s"),
    st.integers(min_value=1, max_value=60).map(lambda n: f"{n}m"),
)
_wrappers = st.sampled_from(
    ["mica2", "rfid", "camera", "generator", "remote", "no-such-wrapper"]
)
_queries = st.one_of(
    st.just("select * from wrapper"),
    _identifiers.map(lambda c: f"select {c} from wrapper"),
    _identifiers.map(
        lambda c: f"select avg({c}) as {c} from wrapper"),
    st.just("select temperature from wrapper where light > 5"),
)


@st.composite
def descriptors(draw):
    fields = draw(st.dictionaries(_identifiers, _types,
                                  min_size=1, max_size=4))
    wrapper = draw(_wrappers)
    predicates = draw(st.dictionaries(
        st.sampled_from(["interval", "type", "location", "name"]),
        st.one_of(_identifiers,
                  st.integers(min_value=1, max_value=10_000).map(str)),
        max_size=3))
    if wrapper == "remote" and not predicates:
        predicates = {"type": "anything"}
    return VirtualSensorDescriptor(
        name=draw(_identifiers),
        output_structure=StreamSchema(
            [Field(n, t) for n, t in fields.items()]
        ),
        input_streams=(InputStreamSpec(
            name="in",
            sources=(StreamSourceSpec(
                alias="src",
                address=AddressSpec(wrapper, predicates),
                query=draw(_queries),
                storage_size=draw(_windows),
                slide=draw(st.one_of(st.none(), _windows)),
            ),),
            query=draw(st.one_of(
                st.just("select * from src"),
                _identifiers.map(lambda c: f"select {c} from src"),
            )),
        ),),
        storage=StorageConfig(
            permanent=draw(st.booleans()),
            history_size=draw(st.one_of(st.none(), _windows)),
        ),
        addressing=draw(st.dictionaries(_identifiers, _identifiers,
                                        max_size=2)),
    )


class TestAnalyzerTotality:
    @given(st.lists(descriptors(), min_size=1, max_size=3))
    def test_analyze_never_raises(self, batch):
        report = analyze(batch, registry=default_registry())
        for finding in report:
            assert finding.rule is not None
        report.render()
