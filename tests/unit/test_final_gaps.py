"""Coverage for remaining corner paths across subsystems."""

import pytest

from repro.datatypes import DataType
from repro.sqlengine.executor import Catalog, execute
from repro.sqlengine.relation import Relation
from repro.storage.manager import StorageManager
from repro.streams.element import StreamElement
from repro.streams.schema import StreamSchema

from tests.conftest import simple_mote_descriptor


class TestMixedDirectionOrdering:
    def test_multi_key_mixed_directions(self):
        catalog = Catalog({"t": Relation(
            ["g", "v"],
            [("a", 1), ("a", 2), ("b", 1), ("b", 2), (None, 9)],
        )})
        result = execute(
            "select g, v from t order by g desc, v asc", catalog
        ).to_dicts()
        assert result == [
            {"g": "b", "v": 1}, {"g": "b", "v": 2},
            {"g": "a", "v": 1}, {"g": "a", "v": 2},
            {"g": None, "v": 9},   # NULL last when descending
        ]

    def test_matches_sqlite_semantics(self):
        import sqlite3
        rows = [(1, "x"), (2, None), (None, "y"), (2, "a"), (1, None)]
        catalog = Catalog({"t": Relation(["a", "s"], rows)})
        ours = execute("select a, s from t order by a desc, s", catalog).rows

        connection = sqlite3.connect(":memory:")
        connection.execute("CREATE TABLE t (a INTEGER, s TEXT)")
        connection.executemany("INSERT INTO t VALUES (?, ?)", rows)
        theirs = connection.execute(
            "select a, s from t order by a desc, s").fetchall()
        connection.close()
        assert ours == theirs


class TestStorageCatalogSnapshot:
    def test_catalog_respects_reference_time(self):
        manager = StorageManager()
        schema = StreamSchema.build(v=DataType.INTEGER)
        table = manager.create_stream("s", schema, retention="1s")
        for timed in (1_000, 1_500, 2_000):
            table.append(StreamElement({"v": timed}, timed=timed))
        # As of t=2000 the 1 s retention window is (1000, 2000].
        catalog = manager.catalog(now=2_000)
        assert [r[1] for r in catalog.get("s").rows] == [1_500, 2_000]
        # Eviction on append is destructive: after a newer element
        # arrives, rows older than its window are gone for good.
        table.append(StreamElement({"v": 3_000}, timed=3_000))
        later = manager.catalog()
        assert [r[1] for r in later.get("s").rows] == [3_000]
        manager.close()


class TestSealSignMode:
    def test_sign_only_transport(self):
        from repro import GSNContainer, PeerNetwork
        from repro.gsntime.clock import VirtualClock
        from repro.gsntime.scheduler import EventScheduler

        clock = VirtualClock()
        scheduler = EventScheduler(clock)
        network = PeerNetwork(scheduler=scheduler)
        a = GSNContainer("signer", network=network, clock=clock,
                         scheduler=scheduler, seal="sign")
        b = GSNContainer("reader", network=network, clock=clock,
                         scheduler=scheduler)
        try:
            a.deploy(simple_mote_descriptor(interval_ms=500))
            seen = []
            __, cancel = b.peer.subscribe({"type": "temperature"},
                                          seen.append)
            scheduler.run_for(1_500)
            cancel()
            assert len(seen) == 3
            assert a.integrity.sealed == 3
            assert b.integrity.opened == 3
            # Signed but not encrypted: the payload is readable on the wire.
            envelope_bodies = a.integrity.status()
            assert envelope_bodies["sealed"] == 3
        finally:
            b.shutdown()
            a.shutdown()


class TestPlanCacheAcrossContainerQueries:
    def test_repeated_adhoc_queries_hit_cache(self, container):
        container.deploy(simple_mote_descriptor(interval_ms=500))
        container.run_for(1_000)
        sql = "select count(*) n from vs_probe"
        for __ in range(5):
            container.query(sql)
        cache = container.processor.plan_cache
        assert cache.hits >= 4
        assert cache.hit_ratio > 0.5

    def test_undeploy_does_not_poison_cache(self, container):
        container.deploy(simple_mote_descriptor(interval_ms=500))
        container.run_for(500)
        sql = "select count(*) n from vs_probe"
        container.query(sql)
        container.undeploy("probe")
        # Cached plan remains, but execution now correctly fails: the
        # table is gone from the catalog.
        from repro.exceptions import SQLPlanError
        with pytest.raises(SQLPlanError):
            container.query(sql)
        # Redeploying brings it back with the same cached plan.
        container.deploy(simple_mote_descriptor(interval_ms=500))
        container.run_for(500)
        assert container.query(sql).first()["n"] == 1


class TestQueueChannelOverflowInLongRuns:
    def test_bounded_channel_for_slow_consumers(self, container):
        from repro.notifications.channels import QueueChannel
        container.notifications.add_channel(
            QueueChannel("bounded", maxlen=5))
        container.deploy(simple_mote_descriptor(interval_ms=200))
        container.register_query("select count(*) n from vs_probe",
                                 channel="bounded")
        container.run_for(10_000)  # 50 notifications offered
        channel = container.notifications.channel("bounded")
        assert channel.pending == 5  # oldest dropped, newest kept
        newest = channel.drain()[-1]
        assert newest["rows"][0]["n"] == 50
