"""Unit tests for the health model and the SLO objects."""

import pytest

from repro.metrics.health import (
    HealthModel,
    LatencySLO,
    SLOTracker,
    ThroughputSLO,
)
from repro.metrics.registry import (
    DEFAULT_LATENCY_BUCKETS_MS, MetricsRegistry,
)


class TestHealthModel:
    def test_worst_of_aggregation(self):
        model = HealthModel()
        model.register("a", lambda: {"status": "ok"})
        model.register("b", lambda: {"status": "degraded", "why": "queue"})
        report = model.report()
        assert report["status"] == "degraded"
        assert report["checks"]["a"]["status"] == "ok"
        assert report["checks"]["b"]["why"] == "queue"

        model.register("c", lambda: {"status": "failed"})
        assert model.report()["status"] == "failed"

    def test_raising_check_is_a_failed_component(self):
        model = HealthModel()

        def broken():
            raise RuntimeError("probe offline")

        model.register("flaky", broken)
        report = model.report()
        assert report["status"] == "failed"
        assert "RuntimeError" in report["checks"]["flaky"]["error"]

    def test_unknown_status_is_coerced_to_failed(self):
        model = HealthModel()
        model.register("typo", lambda: {"status": "okey-dokey"})
        assert model.report()["status"] == "failed"

    def test_register_replaces_and_unregister_removes(self):
        model = HealthModel()
        model.register("x", lambda: {"status": "failed"})
        model.register("x", lambda: {"status": "ok"})
        assert model.report()["status"] == "ok"
        model.unregister("x")
        assert model.check_names() == []
        assert model.report() == {"status": "ok", "checks": {}}


def _trigger_family(registry):
    return registry.histogram(
        "gsn_pipeline_trigger_latency_ms", "trigger latency",
        labelnames=("sensor",), buckets=DEFAULT_LATENCY_BUCKETS_MS,
    )


class TestLatencySLO:
    def test_empty_histogram_reports_met(self):
        registry = MetricsRegistry()
        slo = LatencySLO("p99", _trigger_family(registry),
                         objective_ms=250.0)
        doc = slo.measure()
        assert doc["events"] == 0
        assert doc["met"] is True
        assert doc["burn_rate"] == 0.0

    def test_all_fast_triggers_meet_the_objective(self):
        registry = MetricsRegistry()
        family = _trigger_family(registry)
        for __ in range(100):
            family.labels(sensor="s").observe(1.0)
        doc = LatencySLO("p99", family, objective_ms=250.0).measure()
        assert doc["events"] == 100
        assert doc["attainment"] == 1.0
        assert doc["met"] is True
        assert doc["error_budget_remaining"] == 1.0

    def test_slow_triggers_burn_the_budget(self):
        registry = MetricsRegistry()
        family = _trigger_family(registry)
        child = family.labels(sensor="s")
        for __ in range(95):
            child.observe(1.0)
        for __ in range(5):
            child.observe(2000.0)  # past the 250 ms objective
        doc = LatencySLO("p99", family, objective_ms=250.0,
                         target=0.99).measure()
        assert doc["events"] == 100
        assert doc["attainment"] == pytest.approx(0.95)
        # 5% bad over a 1% budget: burning 5x.
        assert doc["burn_rate"] == pytest.approx(5.0)
        assert doc["error_budget_remaining"] == 0.0
        assert doc["met"] is False
        assert doc["p99_ms_le"] == 2500.0

    def test_merges_across_sensor_labels(self):
        registry = MetricsRegistry()
        family = _trigger_family(registry)
        family.labels(sensor="a").observe(1.0)
        family.labels(sensor="b").observe(1.0)
        assert LatencySLO("p99", family, 250.0).measure()["events"] == 2

    def test_rejects_bad_target(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            LatencySLO("p99", _trigger_family(registry), 250.0, target=1.0)


class TestThroughputSLO:
    def test_rate_measured_on_the_given_clock(self):
        clock = {"now": 0}
        counted = {"n": 0}
        slo = ThroughputSLO("ingest", counter=lambda: counted["n"],
                            clock=lambda: clock["now"],
                            objective_per_s=10.0, target=0.95)
        clock["now"] = 10_000  # 10 s
        counted["n"] = 100     # exactly 10/s
        doc = slo.measure()
        assert doc["rate_per_s"] == pytest.approx(10.0)
        assert doc["attainment"] == 1.0
        assert doc["met"] is True

    def test_underachieving_rate_misses(self):
        clock = {"now": 0}
        counted = {"n": 0}
        slo = ThroughputSLO("ingest", counter=lambda: counted["n"],
                            clock=lambda: clock["now"],
                            objective_per_s=10.0, target=0.95)
        clock["now"] = 10_000  # 10 s
        counted["n"] = 50      # 5/s against a 10/s objective
        doc = slo.measure()
        assert doc["attainment"] == pytest.approx(0.5)
        assert doc["met"] is False
        assert doc["burn_rate"] == pytest.approx(10.0)

    def test_no_elapsed_time_reports_met(self):
        slo = ThroughputSLO("ingest", counter=lambda: 0,
                            clock=lambda: 0, objective_per_s=10.0)
        assert slo.measure()["met"] is True

    def test_rejects_bad_objective(self):
        with pytest.raises(ValueError):
            ThroughputSLO("x", lambda: 0, lambda: 0, objective_per_s=0.0)


class TestSLOTracker:
    def test_exports_gauge_families_at_scrape(self):
        registry = MetricsRegistry()
        family = _trigger_family(registry)
        family.labels(sensor="s").observe(1.0)
        SLOTracker(registry, [LatencySLO("trigger-p99", family, 250.0)])
        text = registry.expose_text()
        # integral floats render without a decimal point (exposition rule)
        assert 'gsn_slo_objective{slo="trigger-p99"} 250' in text
        assert 'gsn_slo_attainment_ratio{slo="trigger-p99"} 1' in text
        assert 'gsn_slo_burn_rate{slo="trigger-p99"} 0' in text
        assert ('gsn_slo_error_budget_remaining_ratio'
                '{slo="trigger-p99"} 1') in text

    def test_report_lists_every_slo(self):
        registry = MetricsRegistry()
        tracker = SLOTracker(registry, [
            LatencySLO("a", _trigger_family(registry), 250.0),
            ThroughputSLO("b", lambda: 0, lambda: 0, objective_per_s=1.0),
        ])
        assert [doc["slo"] for doc in tracker.report()] == ["a", "b"]
