"""Unit tests for the runtime event-loop lag witness."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.analysis import loopwitness
from repro.analysis.loopwitness import LoopLagViolation, LoopWitness


def drive(witness, body, duration=0.2):
    """Run ``body`` next to a heartbeat on a fresh loop."""

    async def main():
        task = asyncio.ensure_future(witness.heartbeat("test-loop"))
        try:
            await body()
            await asyncio.sleep(duration)
        finally:
            task.cancel()

    loop = asyncio.new_event_loop()
    try:
        loop.run_until_complete(main())
    finally:
        loop.close()


class TestLoopWitness:
    def test_clean_loop_records_no_violation(self):
        witness = LoopWitness(max_stall_ms=250.0, interval_ms=10.0)

        async def idle():
            await asyncio.sleep(0.05)

        drive(witness, idle)
        assert witness.ticks > 0
        assert not witness.violations

    def test_stalled_loop_is_caught(self):
        witness = LoopWitness(max_stall_ms=50.0, interval_ms=10.0)

        async def stall():
            # Let the heartbeat park in its sleep first, then do the one
            # thing a coroutine must never do — block the thread.
            await asyncio.sleep(0.03)
            time.sleep(0.15)

        drive(witness, stall)
        assert witness.violations
        worst = max(v.lag_ms for v in witness.violations)
        assert worst == pytest.approx(150.0, abs=100.0)
        assert witness.worst_ms >= worst

    def test_violation_render_names_the_loop(self):
        violation = LoopLagViolation("ingest", 312.5, 250.0)
        text = violation.render()
        assert "'ingest'" in text
        assert "312.5ms" in text
        assert "250ms" in text

    def test_record_thresholds(self):
        witness = LoopWitness(max_stall_ms=100.0)
        witness.record("loop", 99.0)
        witness.record("loop", 101.0)
        assert witness.ticks == 2
        assert witness.worst_ms == 101.0
        assert len(witness.violations) == 1

    def test_status_shape(self):
        witness = LoopWitness(max_stall_ms=100.0)
        witness.record("loop", 120.0)
        status = witness.status()
        assert status["ticks"] == 1
        assert status["worst_ms"] == 120.0
        assert status["max_stall_ms"] == 100.0
        assert len(status["violations"]) == 1


class TestModuleSwitch:
    def test_enable_disable_roundtrip(self):
        # The suite fixture installed a witness; swap it safely.
        previous = loopwitness.active()
        try:
            witness = loopwitness.enable(max_stall_ms=77.0)
            assert loopwitness.active() is witness
            assert witness.max_stall_ms == 77.0
            loopwitness.disable()
            assert loopwitness.active() is None
        finally:
            loopwitness._active = previous

    def test_suite_fixture_is_armed_by_default(self):
        # conftest arms the witness unless GSN_LOOP_WITNESS=0.
        import os
        if os.environ.get("GSN_LOOP_WITNESS", "1") == "0":
            pytest.skip("witness opted out via GSN_LOOP_WITNESS=0")
        assert loopwitness.active() is not None
