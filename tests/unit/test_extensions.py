"""Unit tests for the extension features: generator wrapper, EXPLAIN,
and the max-errors error-handling policy."""

import pytest

from repro.descriptors.model import LifeCycleConfig
from repro.descriptors.xml_io import descriptor_from_xml, descriptor_to_xml
from repro.exceptions import ValidationError, WrapperError
from repro.gsntime.clock import VirtualClock
from repro.query.processor import QueryProcessor
from repro.sqlengine.executor import Catalog
from repro.sqlengine.explain import expression_to_sql
from repro.sqlengine.parser import parse_select
from repro.sqlengine.relation import Relation
from repro.wrappers.generator import GeneratorWrapper

from tests.conftest import simple_mote_descriptor


class TestGeneratorWrapper:
    def make(self, **predicates):
        wrapper = GeneratorWrapper()
        wrapper.attach(VirtualClock(0))
        wrapper.configure({k.replace("_", "-"): str(v)
                           for k, v in predicates.items()})
        wrapper.start()
        return wrapper

    def test_sine_signal(self):
        wrapper = self.make(signal="sine", amplitude=10, period=1000)
        quarter = wrapper.produce(250)
        assert quarter["value"] == pytest.approx(10.0)
        half = wrapper.produce(500)
        assert half["value"] == pytest.approx(0.0, abs=1e-9)

    def test_square_signal(self):
        wrapper = self.make(signal="square", amplitude=5)
        assert wrapper.produce(0)["value"] == 5.0
        assert wrapper.produce(30_001)["value"] == -5.0

    def test_ramp_signal(self):
        wrapper = self.make(signal="ramp", amplitude=1, period=100)
        assert wrapper.produce(0)["value"] == -1.0
        assert wrapper.produce(50)["value"] == 0.0
        assert wrapper.produce(99)["value"] == pytest.approx(0.98)

    def test_constant_and_offset(self):
        wrapper = self.make(signal="constant", amplitude=3, offset=10)
        assert wrapper.produce(12345)["value"] == 13.0

    def test_noise_bounded_and_seeded(self):
        a = self.make(signal="noise", amplitude=2, seed=5)
        b = self.make(signal="noise", amplitude=2, seed=5)
        values_a = [a.produce(i)["value"] for i in range(50)]
        values_b = [b.produce(i)["value"] for i in range(50)]
        assert values_a == values_b
        assert all(-2 <= v <= 2 for v in values_a)

    def test_unknown_signal(self):
        with pytest.raises(WrapperError):
            self.make(signal="triangle")

    def test_registered(self):
        from repro.wrappers import default_registry
        assert "generator" in default_registry()

    def test_deployable_in_container(self, container):
        XML = """
        <virtual-sensor name="wave">
          <output-structure><field name="value" type="double"/>
          </output-structure>
          <storage permanent-storage="true"/>
          <input-stream name="in">
            <stream-source alias="s" storage-size="1">
              <address wrapper="generator">
                <predicate key="signal" val="ramp"/>
                <predicate key="interval" val="250"/>
                <predicate key="period" val="1000"/>
              </address>
              <query>select * from wrapper</query>
            </stream-source>
            <query>select value from s</query>
          </input-stream>
        </virtual-sensor>
        """
        container.deploy(XML)
        container.run_for(2_000)
        rows = container.query(
            "select count(*) n, min(value) lo, max(value) hi from vs_wave"
        ).first()
        assert rows["n"] == 8
        assert -100 <= rows["lo"] < rows["hi"] <= 100


class TestExplain:
    def test_hash_join_visible(self):
        catalog = Catalog({"t": Relation(["a"], []),
                           "u": Relation(["a"], [])})
        processor = QueryProcessor(lambda: catalog)
        plan = processor.explain(
            "select t.a from t join u on t.a = u.a where t.a > 5"
        )
        assert "HASH JOIN" in plan
        assert "SCAN t" in plan and "SCAN u" in plan
        assert "filter:" in plan

    def test_nested_loop_for_non_equi(self):
        processor = QueryProcessor(Catalog)
        plan = processor.explain("select * from t join u on t.a < u.a")
        assert "NESTED LOOP" in plan

    def test_aggregate_and_order(self):
        processor = QueryProcessor(Catalog)
        plan = processor.explain(
            "select b, count(*) n from t group by b "
            "having count(*) > 1 order by n desc limit 5"
        )
        assert "AGGREGATE BY [b]" in plan
        assert "LIMIT 5" in plan
        assert "having:" in plan

    def test_set_operations_and_derived(self):
        processor = QueryProcessor(Catalog)
        plan = processor.explain(
            "select a from (select a from t) s union select a from u"
        )
        assert "DERIVED s:" in plan
        assert "UNION:" in plan

    def test_web_endpoint(self, container):
        from repro.interfaces.web import WebInterface
        container.deploy(simple_mote_descriptor())
        web = WebInterface(container)
        response = web.explain("select * from vs_probe where temperature > 0")
        assert response["status"] == 200
        assert any("SCAN vs_probe" in line for line in response["plan"])
        assert web.explain("not sql")["status"] == 400

    def test_expression_rendering(self):
        stmt = parse_select(
            "select * from t where a between 1 and 2 and b like 'x%' "
            "and c is not null and d in (1, 2) and not (e = 'q''t')"
        )
        text = expression_to_sql(stmt.where)
        assert "BETWEEN" in text
        assert "LIKE 'x%'" in text
        assert "IS NOT NULL" in text
        assert "IN (1, 2)" in text
        assert "'q''t'" in text


class TestErrorPolicy:
    def failing_sensor(self, container, max_errors):
        from dataclasses import replace
        descriptor = simple_mote_descriptor(interval_ms=500)
        descriptor = replace(
            descriptor,
            lifecycle=LifeCycleConfig(pool_size=1, max_errors=max_errors),
        )
        sensor = container.deploy(descriptor)
        # Break the output table so every pipeline run fails.
        sensor.output_table.append = _boom
        return sensor

    def test_fails_after_threshold(self, container):
        sensor = self.failing_sensor(container, max_errors=3)
        container.run_for(5_000)
        assert sensor.lifecycle.state.value == "failed"
        assert "3 consecutive" in sensor.lifecycle.failure_reason
        assert sensor.lifecycle.pool.tasks_failed == 3  # stopped trying

    def test_unlimited_by_default(self, container):
        sensor = self.failing_sensor(container, max_errors=0)
        container.run_for(3_000)
        assert sensor.lifecycle.state.value == "running"
        assert sensor.lifecycle.pool.tasks_failed == 6

    def test_success_resets_counter(self, container):
        from dataclasses import replace
        descriptor = replace(
            simple_mote_descriptor(interval_ms=500),
            lifecycle=LifeCycleConfig(pool_size=1, max_errors=3),
        )
        sensor = container.deploy(descriptor)
        original_append = sensor.output_table.append

        # Fail twice, then recover.
        sensor.output_table.append = _boom
        container.run_for(1_000)
        sensor.output_table.append = original_append
        container.run_for(1_000)
        sensor.output_table.append = _boom
        container.run_for(1_000)
        assert sensor.lifecycle.state.value == "running"  # never hit 3 in a row

    def test_xml_roundtrip_max_errors(self):
        from dataclasses import replace
        descriptor = replace(
            simple_mote_descriptor(),
            lifecycle=LifeCycleConfig(pool_size=4, max_errors=7),
        )
        again = descriptor_from_xml(descriptor_to_xml(descriptor))
        assert again.lifecycle == LifeCycleConfig(4, 7)

    def test_negative_max_errors_rejected(self):
        with pytest.raises(ValidationError):
            LifeCycleConfig(max_errors=-1)


def _boom(element):
    raise RuntimeError("storage exploded")
