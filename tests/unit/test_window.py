"""Unit tests for count- and time-based windows."""

import pytest

from repro.exceptions import WindowError
from repro.streams.element import StreamElement
from repro.streams.window import CountWindow, TimeWindow, make_window


def element(timed, value=0):
    return StreamElement({"v": value}, timed=timed)


class TestCountWindow:
    def test_keeps_last_n(self):
        window = CountWindow(3)
        for i in range(5):
            window.append(element(i * 10, i))
        assert [e["v"] for e in window.contents()] == [2, 3, 4]

    def test_under_capacity(self):
        window = CountWindow(5)
        window.append(element(1))
        assert len(window) == 1

    def test_rejects_nonpositive_size(self):
        for bad in (0, -1):
            with pytest.raises(WindowError):
                CountWindow(bad)

    def test_rejects_unstamped(self):
        with pytest.raises(WindowError):
            CountWindow(2).append(StreamElement({"v": 1}))

    def test_clear(self):
        window = CountWindow(3)
        window.append(element(1))
        window.clear()
        assert window.contents() == []

    def test_spec_roundtrip(self):
        assert make_window(CountWindow(7).spec()).size == 7


class TestTimeWindow:
    def test_keeps_trailing_span(self):
        window = TimeWindow(100)
        window.append(element(1_000))
        window.append(element(1_050))
        window.append(element(1_150))
        held = window.contents(now=1_150)
        # (1050, 1150] given span 100: 1000 expired, 1050 is exactly at
        # the cutoff and excluded, 1150 included.
        assert [e.timed for e in held] == [1_150]

    def test_contents_without_now_uses_latest(self):
        window = TimeWindow(200)
        window.append(element(1_000))
        window.append(element(1_100))
        assert [e.timed for e in window.contents()] == [1_000, 1_100]

    def test_empty_window(self):
        assert TimeWindow(100).contents() == []

    def test_out_of_order_arrivals_tolerated(self):
        window = TimeWindow(1_000)
        window.append(element(2_000))
        window.append(element(1_500))  # late arrival, still in span
        held = window.contents(now=2_000)
        assert sorted(e.timed for e in held) == [1_500, 2_000]

    def test_out_of_order_expired_dropped(self):
        window = TimeWindow(100)
        window.append(element(2_000))
        window.append(element(1_000))  # too old already
        held = window.contents(now=2_000)
        assert [e.timed for e in held] == [2_000]

    def test_query_older_reference(self):
        window = TimeWindow(100)
        window.append(element(1_000))
        window.append(element(1_200))
        # Querying "as of" 1000 must not show the future element.
        assert [e.timed for e in window.contents(now=1_000)] == [1_000]

    def test_rejects_nonpositive_span(self):
        with pytest.raises(WindowError):
            TimeWindow(0)

    def test_rejects_unstamped(self):
        with pytest.raises(WindowError):
            TimeWindow(10).append(StreamElement({"v": 1}))

    def test_clear_resets(self):
        window = TimeWindow(100)
        window.append(element(1_000))
        window.clear()
        assert window.contents() == []
        window.append(element(5))
        assert len(window.contents()) == 1

    def test_expiry_frees_memory(self):
        window = TimeWindow(50)
        for t in range(0, 1_000, 10):
            window.append(element(t + 1))
        window.contents()
        assert len(window._elements) <= 6


class TestMakeWindow:
    def test_count_spec(self):
        window = make_window("10")
        assert isinstance(window, CountWindow)
        assert window.size == 10

    def test_time_spec(self):
        window = make_window("10s")
        assert isinstance(window, TimeWindow)
        assert window.span_millis == 10_000

    @pytest.mark.parametrize("bad", ["", "0", "abc", "-5s"])
    def test_bad_specs(self, bad):
        with pytest.raises(WindowError):
            make_window(bad)
