"""Unit tests for relations and the WRAPPER/table-name rewriter."""

import pytest

from repro.exceptions import SQLExecutionError
from repro.sqlengine.executor import Catalog, execute
from repro.sqlengine.relation import Relation
from repro.sqlengine.rewriter import (
    referenced_tables, rewrite_table_names, rewrite_wrapper,
)


class TestRelation:
    def test_columns_lowercased(self):
        relation = Relation(["A", "B"])
        assert relation.columns == ("a", "b")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SQLExecutionError):
            Relation(["a", "A"])

    def test_append_checks_width(self):
        relation = Relation(["a", "b"])
        with pytest.raises(SQLExecutionError):
            relation.append((1,))

    def test_from_dicts_fills_missing(self):
        relation = Relation.from_dicts(["a", "b"], [{"A": 1}])
        assert relation.rows == [(1, None)]

    def test_column_access(self):
        relation = Relation(["a", "b"], [(1, 2), (3, 4)])
        assert relation.column("b") == [2, 4]
        with pytest.raises(SQLExecutionError):
            relation.column("z")

    def test_scalar(self):
        assert Relation(["a"], [(7,)]).scalar() == 7
        assert Relation(["a"]).scalar() is None
        with pytest.raises(SQLExecutionError):
            Relation(["a"], [(1,), (2,)]).scalar()
        with pytest.raises(SQLExecutionError):
            Relation(["a", "b"], [(1, 2)]).scalar()

    def test_first_and_dicts(self):
        relation = Relation(["a"], [(1,), (2,)])
        assert relation.first() == {"a": 1}
        assert Relation(["a"]).first() is None
        assert relation.to_dicts() == [{"a": 1}, {"a": 2}]

    def test_contains_and_len_and_iter(self):
        relation = Relation(["a"], [(1,)])
        assert "a" in relation and "z" not in relation
        assert len(relation) == 1
        assert list(relation) == [(1,)]

    def test_pretty_truncates(self):
        relation = Relation(["a"], [(i,) for i in range(30)])
        text = relation.pretty(limit=5)
        assert "more rows" in text

    def test_pretty_renders_bytes_placeholder(self):
        relation = Relation(["blob"], [(b"\x00\x01",)])
        assert "<bytes>" in relation.pretty()


class TestReferencedTables:
    def test_simple(self):
        assert referenced_tables("select * from t") == {"t"}

    def test_joins_and_subqueries(self):
        tables = referenced_tables(
            "select * from a join b on a.x = b.x "
            "where a.y in (select y from c)"
        )
        assert tables == {"a", "b", "c"}

    def test_derived_tables(self):
        assert referenced_tables(
            "select * from (select * from inner_t) s"
        ) == {"inner_t"}

    def test_no_tables(self):
        assert referenced_tables("select 1") == set()


class TestRewriter:
    def test_wrapper_rewritten(self):
        sql = rewrite_wrapper("select avg(temp) from WRAPPER", "win_1")
        assert "win_1" in sql and "wrapper" not in sql.lower().replace(
            "win_1", "")

    def test_qualifier_rewritten(self):
        sql = rewrite_wrapper(
            "select wrapper.temp from wrapper where wrapper.temp > 1",
            "w1",
        )
        assert sql.count("w1") == 3

    def test_column_named_wrapper_untouched(self):
        # "wrapper" as a bare column (not in table position, not a
        # qualifier) must survive.
        sql = rewrite_table_names(
            "select wrapper from t where wrapper = 1", {"t": "t2"}
        )
        assert "select wrapper from t2 where wrapper = 1" == sql

    def test_string_literals_untouched(self):
        sql = rewrite_table_names(
            "select * from t where name = 'wrapper'", {"wrapper": "x"}
        )
        assert "'wrapper'" in sql

    def test_multiple_tables(self):
        sql = rewrite_table_names(
            "select * from a, b where a.x = b.x",
            {"a": "t_a", "b": "t_b"},
        )
        assert "t_a" in sql and "t_b" in sql

    def test_join_position(self):
        sql = rewrite_table_names(
            "select * from a join wrapper on a.x = wrapper.x",
            {"wrapper": "w"},
        )
        assert "join w on" in sql
        assert "w.x" in sql

    def test_subquery_from(self):
        sql = rewrite_table_names(
            "select * from (select * from wrapper) s", {"wrapper": "w"}
        )
        assert "from w" in sql

    def test_rewritten_sql_still_parses_and_runs(self):
        catalog = Catalog({"w1": Relation(["temp", "timed"],
                                          [(10, 1), (20, 2)])})
        sql = rewrite_wrapper(
            "select avg(temp) as t from WRAPPER where temp > 5", "w1"
        )
        assert execute(sql, catalog).to_dicts() == [{"t": 15.0}]

    def test_preserves_literals_and_numbers(self):
        original = ("select 'it''s', 2.5, X'ff' from wrapper "
                    "where a like '%x%'")
        sql = rewrite_wrapper(original, "w")
        assert "'it''s'" in sql
        assert "2.5" in sql
        assert "X'ff'" in sql
        assert "'%x%'" in sql
