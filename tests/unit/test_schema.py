"""Unit tests for stream schemas and data types."""

import pytest

from repro.datatypes import DataType, sql_affinity
from repro.exceptions import SchemaError
from repro.streams.schema import Field, StreamSchema, schema_from_example


class TestDataType:
    @pytest.mark.parametrize("text,expected", [
        ("integer", DataType.INTEGER),
        ("INT", DataType.INTEGER),
        ("bigint", DataType.INTEGER),
        ("double", DataType.DOUBLE),
        ("Float", DataType.DOUBLE),
        ("varchar", DataType.VARCHAR),
        ("string", DataType.VARCHAR),
        ("binary", DataType.BINARY),
        ("blob", DataType.BINARY),
        ("boolean", DataType.BOOLEAN),
        ("timestamp", DataType.TIMESTAMP),
    ])
    def test_parse_aliases(self, text, expected):
        assert DataType.parse(text) is expected

    def test_parse_unknown_raises(self):
        with pytest.raises(SchemaError):
            DataType.parse("quaternion")

    def test_coerce_integer(self):
        assert DataType.INTEGER.coerce("42") == 42
        assert DataType.INTEGER.coerce(3.0) == 3
        assert DataType.INTEGER.coerce(None) is None
        with pytest.raises(SchemaError):
            DataType.INTEGER.coerce(3.5)
        with pytest.raises(SchemaError):
            DataType.INTEGER.coerce("abc")

    def test_coerce_double(self):
        assert DataType.DOUBLE.coerce("2.5") == 2.5
        assert DataType.DOUBLE.coerce(3) == 3.0

    def test_coerce_binary(self):
        assert DataType.BINARY.coerce("hi") == b"hi"
        assert DataType.BINARY.coerce(bytearray(b"x")) == b"x"
        with pytest.raises(SchemaError):
            DataType.BINARY.coerce(3.14)

    def test_coerce_boolean(self):
        assert DataType.BOOLEAN.coerce("true") is True
        assert DataType.BOOLEAN.coerce("0") is False
        assert DataType.BOOLEAN.coerce(1) is True
        with pytest.raises(SchemaError):
            DataType.BOOLEAN.coerce("maybe")

    def test_accepts(self):
        assert DataType.INTEGER.accepts(5)
        assert not DataType.INTEGER.accepts(True)   # bools are not ints here
        assert not DataType.INTEGER.accepts(5.0)
        assert DataType.DOUBLE.accepts(5)           # ints widen to double
        assert DataType.DOUBLE.accepts(5.5)
        assert DataType.VARCHAR.accepts("x")
        assert DataType.BINARY.accepts(b"x")
        assert DataType.BOOLEAN.accepts(False)
        assert all(t.accepts(None) for t in DataType)

    def test_sql_affinity(self):
        assert sql_affinity(1) is DataType.INTEGER
        assert sql_affinity(1.5) is DataType.DOUBLE
        assert sql_affinity("x") is DataType.VARCHAR
        assert sql_affinity(b"x") is DataType.BINARY
        assert sql_affinity(True) is DataType.BOOLEAN
        assert sql_affinity(None) is None
        with pytest.raises(SchemaError):
            sql_affinity(object())


class TestField:
    def test_name_normalized_lowercase(self):
        assert Field("Temperature", DataType.INTEGER).name == "temperature"

    @pytest.mark.parametrize("bad", ["", "  ", "1abc", "a-b", "a b", "a.b"])
    def test_invalid_names(self, bad):
        with pytest.raises(SchemaError):
            Field(bad, DataType.INTEGER)

    def test_underscore_names_ok(self):
        assert Field("_x", DataType.INTEGER).name == "_x"
        assert Field("accel_x", DataType.DOUBLE).name == "accel_x"


class TestStreamSchema:
    def test_build_shorthand(self):
        schema = StreamSchema.build(a=DataType.INTEGER, b=DataType.VARCHAR)
        assert schema.field_names == ("a", "b")

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            StreamSchema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            StreamSchema([Field("a", DataType.INTEGER),
                          Field("A", DataType.DOUBLE)])

    def test_timed_reserved(self):
        with pytest.raises(SchemaError):
            StreamSchema([Field("timed", DataType.TIMESTAMP)])

    def test_lookup_case_insensitive(self):
        schema = StreamSchema.build(temp=DataType.INTEGER)
        assert schema["TEMP"].type is DataType.INTEGER
        assert "Temp" in schema
        with pytest.raises(SchemaError):
            schema["missing"]

    def test_validate_fills_missing_with_none(self):
        schema = StreamSchema.build(a=DataType.INTEGER, b=DataType.VARCHAR)
        assert schema.validate({"a": 1}) == {"a": 1, "b": None}

    def test_validate_rejects_unknown_field(self):
        schema = StreamSchema.build(a=DataType.INTEGER)
        with pytest.raises(SchemaError):
            schema.validate({"zz": 1})

    def test_validate_rejects_wrong_type(self):
        schema = StreamSchema.build(a=DataType.INTEGER)
        with pytest.raises(SchemaError):
            schema.validate({"a": "not-a-number"})

    def test_validate_ignores_timed_key(self):
        schema = StreamSchema.build(a=DataType.INTEGER)
        assert schema.validate({"a": 1, "timed": 99}) == {"a": 1}

    def test_coerce_converts(self):
        schema = StreamSchema.build(a=DataType.INTEGER, b=DataType.DOUBLE)
        assert schema.coerce({"a": "7", "b": "1.5"}) == {"a": 7, "b": 1.5}

    def test_project(self):
        schema = StreamSchema.build(a=DataType.INTEGER, b=DataType.VARCHAR,
                                    c=DataType.DOUBLE)
        projected = schema.project(["c", "a"])
        assert projected.field_names == ("c", "a")

    def test_merge(self):
        left = StreamSchema.build(a=DataType.INTEGER)
        right = StreamSchema.build(b=DataType.VARCHAR)
        assert left.merge(right).field_names == ("a", "b")

    def test_merge_conflict(self):
        left = StreamSchema.build(a=DataType.INTEGER)
        with pytest.raises(SchemaError):
            left.merge(left)
        assert left.merge(left, on_conflict="skip").field_names == ("a",)

    def test_equality_and_hash(self):
        a = StreamSchema.build(x=DataType.INTEGER)
        b = StreamSchema.build(x=DataType.INTEGER)
        assert a == b
        assert hash(a) == hash(b)
        assert a != StreamSchema.build(x=DataType.DOUBLE)


class TestSchemaFromExample:
    def test_infers_types(self):
        schema = schema_from_example(
            {"n": 1, "f": 2.5, "s": "x", "b": b"z"}
        )
        assert schema["n"].type is DataType.INTEGER
        assert schema["f"].type is DataType.DOUBLE
        assert schema["s"].type is DataType.VARCHAR
        assert schema["b"].type is DataType.BINARY

    def test_skips_timed(self):
        schema = schema_from_example({"n": 1, "timed": 123})
        assert schema.field_names == ("n",)

    def test_none_without_default_raises(self):
        with pytest.raises(SchemaError):
            schema_from_example({"n": None})

    def test_none_with_default(self):
        schema = schema_from_example({"n": None}, default=DataType.DOUBLE)
        assert schema["n"].type is DataType.DOUBLE
