"""Unit tests for CAST expressions."""

import pytest

from repro.exceptions import SQLExecutionError, SQLSyntaxError
from repro.sqlengine.executor import Catalog, execute
from repro.sqlengine.relation import Relation


def scalar(sql, catalog=None):
    return execute(sql, catalog or Catalog()).rows[0][0]


class TestCast:
    def test_string_to_integer(self):
        assert scalar("select cast('42' as integer)") == 42

    def test_float_truncates_toward_zero(self):
        assert scalar("select cast(2.9 as integer)") == 2
        assert scalar("select cast(-2.9 as integer)") == -2

    def test_numeric_string_with_fraction(self):
        assert scalar("select cast('2.5' as integer)") == 2

    def test_to_double(self):
        assert scalar("select cast('2.5' as double)") == 2.5
        assert scalar("select cast(3 as double)") == 3.0

    def test_to_varchar(self):
        assert scalar("select cast(42 as varchar)") == "42"
        assert scalar("select cast(2.5 as text)") == "2.5"
        assert scalar("select cast(true as varchar)") == "true"

    def test_blob_to_varchar(self):
        assert scalar("select cast(X'414243' as varchar)") == "ABC"

    def test_varchar_to_binary(self):
        assert scalar("select cast('hi' as blob)") == b"hi"

    def test_to_boolean(self):
        assert scalar("select cast(1 as boolean)") is True
        assert scalar("select cast(0 as bool)") is False

    def test_null_passthrough(self):
        assert scalar("select cast(null as integer)") is None

    def test_bad_numeric_string_raises(self):
        with pytest.raises(SQLExecutionError):
            scalar("select cast('abc' as integer)")

    def test_unknown_target_raises(self):
        with pytest.raises(SQLExecutionError):
            scalar("select cast(1 as quark)")

    def test_cast_in_where_and_aggregate(self):
        catalog = Catalog({"t": Relation(
            ["s", "timed"], [("10", 1), ("20", 2), ("x30", 3)])})
        result = execute(
            "select sum(cast(s as integer)) total from t "
            "where s not like 'x%'", catalog,
        )
        assert result.to_dicts() == [{"total": 30}]

    def test_cast_in_group_context(self):
        catalog = Catalog({"t": Relation(["v", "g"],
                                         [(1.9, "a"), (2.9, "a")])})
        result = execute(
            "select g, cast(avg(v) as integer) m from t group by g",
            catalog,
        )
        assert result.to_dicts() == [{"g": "a", "m": 2}]

    def test_syntax_requires_as(self):
        with pytest.raises(SQLSyntaxError):
            scalar("select cast(1, integer)")

    def test_explain_rendering(self):
        from repro.sqlengine.explain import expression_to_sql
        from repro.sqlengine.parser import parse_select
        stmt = parse_select("select cast(a as integer) from t")
        assert expression_to_sql(stmt.items[0].expression) \
            == "CAST(a AS INTEGER)"
