"""SQL engine edge cases beyond the core suites."""

import pytest

from repro.exceptions import SQLExecutionError, SQLSyntaxError
from repro.sqlengine.executor import Catalog, execute
from repro.sqlengine.relation import Relation


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register("t", Relation(
        ["a", "b", "timed"],
        [(1, "x", 100), (2, "y", 200), (3, "x", 300)],
    ))
    cat.register("empty", Relation(["a", "b"]))
    return cat


class TestEmptyInputs:
    def test_scan_empty(self, catalog):
        assert execute("select * from empty", catalog).rows == []

    def test_join_with_empty(self, catalog):
        assert execute(
            "select * from t join empty on t.a = empty.a", catalog
        ).rows == []

    def test_union_with_empty(self, catalog):
        result = execute(
            "select a from t union select a from empty", catalog)
        assert len(result) == 3

    def test_aggregate_empty_group_by(self, catalog):
        assert execute("select a, count(*) from empty group by a",
                       catalog).rows == []

    def test_order_limit_on_empty(self, catalog):
        assert execute("select * from empty order by a limit 5",
                       catalog).rows == []


class TestNestingDepth:
    def test_three_level_subqueries(self, catalog):
        result = execute(
            "select * from (select * from "
            "(select a from (select * from t) x1) x2) x3 order by a",
            catalog,
        )
        assert result.column("a") == [1, 2, 3]

    def test_correlated_two_levels(self, catalog):
        # Inner subquery references the outermost scope.
        result = execute(
            "select a from t outer_t where exists ("
            "  select 1 from t mid where mid.a = outer_t.a and exists ("
            "    select 1 from t inner_t "
            "    where inner_t.b = outer_t.b and inner_t.a <> outer_t.a"
            "  )"
            ") order by a",
            catalog,
        )
        # Rows sharing b='x' with a different row: a=1 and a=3.
        assert result.column("a") == [1, 3]

    def test_scalar_subquery_inside_case(self, catalog):
        result = execute(
            "select case when a = (select max(a) from t) then 'top' "
            "else 'rest' end k from t order by a",
            catalog,
        )
        assert result.column("k") == ["rest", "rest", "top"]


class TestProjectionEdges:
    def test_star_plus_expression(self, catalog):
        result = execute("select *, a * 10 as big from t where a = 1",
                         catalog)
        assert result.columns == ("a", "b", "timed", "big")
        assert result.rows == [(1, "x", 100, 10)]

    def test_double_star(self, catalog):
        result = execute("select t.*, t.* from t where a = 1", catalog)
        assert result.columns == ("a", "b", "timed", "a_2", "b_2",
                                  "timed_2")

    def test_alias_shadowing_column(self, catalog):
        result = execute(
            "select b as a from t order by a", catalog)
        # ORDER BY resolves the *output* column first (SQL rule).
        assert result.column("a") == ["x", "x", "y"]

    def test_expression_only_select(self, catalog):
        result = execute("select 1 + 1, 'k', null", catalog)
        assert result.rows == [(2, "k", None)]
        assert len(result.columns) == 3


class TestBooleanResults:
    def test_comparison_as_select_item(self, catalog):
        result = execute("select a > 1 as big from t order by timed",
                         catalog)
        assert result.column("big") == [False, True, True]

    def test_boolean_in_where(self, catalog):
        assert len(execute("select * from t where true", catalog)) == 3
        assert len(execute("select * from t where false", catalog)) == 0


class TestGroupingEdges:
    def test_group_by_multiple_keys(self, catalog):
        catalog.register("m", Relation(
            ["x", "y", "v"],
            [(1, "a", 10), (1, "a", 20), (1, "b", 5), (2, "a", 1)],
        ))
        result = execute(
            "select x, y, sum(v) s from m group by x, y order by x, y",
            catalog,
        )
        assert result.to_dicts() == [
            {"x": 1, "y": "a", "s": 30},
            {"x": 1, "y": "b", "s": 5},
            {"x": 2, "y": "a", "s": 1},
        ]

    def test_having_with_different_aggregate_than_select(self, catalog):
        result = execute(
            "select b from t group by b having max(a) >= 2 order by b",
            catalog,
        )
        assert result.column("b") == ["x", "y"]

    def test_nested_aggregate_rejected(self, catalog):
        with pytest.raises(SQLExecutionError):
            execute("select max(sum(a)) from t", catalog)

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(SQLExecutionError):
            execute("select a from t where sum(a) > 1", catalog)


class TestErrorPositions:
    def test_syntax_error_carries_position(self):
        with pytest.raises(SQLSyntaxError) as excinfo:
            execute("select a frm t", Catalog())
        assert excinfo.value.position >= 0

    def test_lexer_error_carries_position(self):
        with pytest.raises(SQLSyntaxError) as excinfo:
            execute("select ~a from t", Catalog())
        assert excinfo.value.position == 7
