"""Unit tests for the storage layer: backends, retention, manager."""

import pytest

from repro.datatypes import DataType
from repro.exceptions import StorageError
from repro.storage.base import RetentionPolicy
from repro.storage.manager import StorageManager, safe_table_name
from repro.storage.memory import MemoryStorage
from repro.storage.sqlite import SQLiteStorage
from repro.streams.element import StreamElement
from repro.streams.schema import StreamSchema

SCHEMA = StreamSchema.build(v=DataType.INTEGER, tag=DataType.VARCHAR)


def element(timed, v=0, tag="x"):
    return StreamElement({"v": v, "tag": tag}, timed=timed)


@pytest.fixture(params=["memory", "sqlite"])
def backend(request):
    if request.param == "memory":
        store = MemoryStorage()
    else:
        store = SQLiteStorage(":memory:")
    yield store
    store.close()


class TestRetentionPolicy:
    def test_parse_variants(self):
        assert RetentionPolicy.parse(None).kind == "all"
        assert RetentionPolicy.parse("all").kind == "all"
        assert RetentionPolicy.parse("10") == RetentionPolicy("count", 10)
        assert RetentionPolicy.parse("10s") == RetentionPolicy("time", 10_000)

    def test_invalid(self):
        with pytest.raises(StorageError):
            RetentionPolicy("weird")
        with pytest.raises(StorageError):
            RetentionPolicy("count", 0)


class TestStreamTables:
    def test_append_and_read(self, backend):
        table = backend.create("s", SCHEMA)
        table.append(element(1, 10))
        table.append(element(2, 20))
        relation = table.relation()
        assert relation.columns == ("v", "tag", "timed")
        assert relation.rows == [(10, "x", 1), (20, "x", 2)]

    def test_rejects_unstamped(self, backend):
        table = backend.create("s", SCHEMA)
        with pytest.raises(StorageError):
            table.append(StreamElement({"v": 1}))

    def test_schema_enforced(self, backend):
        table = backend.create("s", SCHEMA)
        with pytest.raises(Exception):
            table.append(StreamElement({"nope": 1}, timed=1))

    def test_count_retention(self, backend):
        table = backend.create("s", SCHEMA, RetentionPolicy("count", 3))
        for i in range(6):
            table.append(element(i, i))
        assert table.count() == 3
        assert [row[0] for row in table.relation().rows] == [3, 4, 5]

    def test_time_retention(self, backend):
        table = backend.create("s", SCHEMA, RetentionPolicy("time", 100))
        table.append(element(1_000))
        table.append(element(1_050))
        table.append(element(1_200))  # expires both older ones
        assert [row[2] for row in table.relation().rows] == [1_200]

    def test_time_retention_with_now(self, backend):
        table = backend.create("s", SCHEMA, RetentionPolicy("time", 100))
        table.append(element(1_000))
        table.append(element(1_050))
        assert table.count(now=1_060) == 2

    def test_latest(self, backend):
        table = backend.create("s", SCHEMA)
        assert table.latest() is None
        table.append(element(5, 50, "last"))
        latest = table.latest()
        assert latest.timed == 5
        assert latest["v"] == 50

    def test_appended_counter(self, backend):
        table = backend.create("s", SCHEMA, RetentionPolicy("count", 2))
        for i in range(5):
            table.append(element(i))
        assert table.appended == 5
        assert table.count() == 2

    def test_duplicate_create_rejected(self, backend):
        backend.create("s", SCHEMA)
        with pytest.raises(StorageError):
            backend.create("S", SCHEMA)

    def test_drop(self, backend):
        backend.create("s", SCHEMA)
        backend.drop("s")
        assert "s" not in backend
        with pytest.raises(StorageError):
            backend.drop("s")

    def test_null_values_stored(self, backend):
        table = backend.create("s", SCHEMA)
        table.append(StreamElement({"v": None, "tag": None}, timed=9))
        assert table.relation().rows == [(None, None, 9)]


class TestSQLiteSpecifics:
    def test_binary_roundtrip(self):
        store = SQLiteStorage(":memory:")
        schema = StreamSchema.build(img=DataType.BINARY)
        table = store.create("cam", schema)
        payload = bytes(range(256))
        table.append(StreamElement({"img": payload}, timed=1))
        assert table.relation().rows == [(payload, 1)]
        store.close()

    def test_boolean_roundtrip(self):
        store = SQLiteStorage(":memory:")
        schema = StreamSchema.build(flag=DataType.BOOLEAN)
        table = store.create("s", schema)
        table.append(StreamElement({"flag": True}, timed=1))
        table.append(StreamElement({"flag": False}, timed=2))
        assert [row[0] for row in table.relation().rows] == [True, False]
        assert table.latest()["flag"] is False
        store.close()

    def test_execute_sql(self):
        store = SQLiteStorage(":memory:")
        table = store.create("s", SCHEMA)
        for i in range(4):
            table.append(element(i, i))
        result = store.execute_sql("select count(*) as n from s")
        assert result.to_dicts() == [{"n": 4}]
        store.close()

    def test_execute_sql_error_wrapped(self):
        store = SQLiteStorage(":memory:")
        with pytest.raises(StorageError):
            store.execute_sql("select * from missing_table")
        store.close()

    def test_disk_persistence(self, tmp_path):
        path = str(tmp_path / "gsn.db")
        store = SQLiteStorage(path)
        table = store.create("s", SCHEMA)
        table.append(element(1, 42))
        store.close()

        reopened = SQLiteStorage(path)
        reloaded = reopened.create("s", SCHEMA)  # CREATE IF NOT EXISTS
        assert reloaded.relation().rows == [(42, "x", 1)]
        reopened.close()


class TestSafeTableName:
    @pytest.mark.parametrize("raw,expected", [
        ("simple", "simple"),
        ("With-Dash", "with_dash"),
        ("dots.and spaces", "dots_and_spaces"),
        ("1leading", "t_1leading"),
        ("", "t_"),
    ])
    def test_sanitization(self, raw, expected):
        assert safe_table_name(raw) == expected


class TestStorageManager:
    def test_routes_by_permanence(self):
        manager = StorageManager()
        transient = manager.create_stream("a", SCHEMA, permanent=False)
        durable = manager.create_stream("b", SCHEMA, permanent=True)
        assert type(transient).__name__ == "MemoryStreamTable"
        assert type(durable).__name__ == "SQLiteStreamTable"
        manager.close()

    def test_name_collision_across_backends(self):
        manager = StorageManager()
        manager.create_stream("x", SCHEMA, permanent=False)
        with pytest.raises(StorageError):
            manager.create_stream("x", SCHEMA, permanent=True)
        manager.close()

    def test_catalog_view(self):
        manager = StorageManager()
        table = manager.create_stream("s", SCHEMA)
        table.append(element(1, 5))
        catalog = manager.catalog()
        assert catalog.get("s").rows == [(5, "x", 1)]
        manager.close()

    def test_drop_stream(self):
        manager = StorageManager()
        manager.create_stream("s", SCHEMA)
        manager.drop_stream("s")
        assert "s" not in manager
        with pytest.raises(StorageError):
            manager.get("s")
        manager.close()

    def test_retention_spec_passthrough(self):
        manager = StorageManager()
        table = manager.create_stream("s", SCHEMA, retention="2")
        for i in range(5):
            table.append(element(i))
        assert table.count() == 2
        manager.close()
