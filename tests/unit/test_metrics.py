"""Unit tests for metrics collectors and report formatting."""

import pytest

from repro.metrics.collectors import LatencyRecorder, ThroughputCounter
from repro.metrics.report import Series, format_series_table, format_table


class TestLatencyRecorder:
    def test_record_and_stats(self):
        recorder = LatencyRecorder()
        for ms in (1.0, 2.0, 3.0):
            recorder.record(ms)
        assert recorder.count == 3
        assert recorder.mean_ms == 2.0
        assert recorder.min_ms == 1.0
        assert recorder.max_ms == 3.0

    def test_start_stop_measures(self):
        recorder = LatencyRecorder()
        recorder.start()
        elapsed = recorder.stop()
        assert elapsed >= 0
        assert recorder.count == 1

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            LatencyRecorder().stop()

    def test_percentiles(self):
        recorder = LatencyRecorder()
        for ms in range(100):
            recorder.record(float(ms))
        assert recorder.percentile(0) == 0.0
        assert recorder.percentile(50) == 50.0
        assert recorder.percentile(100) == 99.0
        with pytest.raises(ValueError):
            recorder.percentile(101)

    def test_empty_percentile(self):
        assert LatencyRecorder().percentile(50) == 0.0

    def test_no_samples_mode(self):
        recorder = LatencyRecorder(keep_samples=False)
        recorder.record(5.0)
        assert recorder.samples == []
        assert recorder.mean_ms == 5.0

    def test_reset(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        recorder.reset()
        assert recorder.count == 0
        assert recorder.summary()["min_ms"] == 0.0

    def test_summary_shape(self):
        recorder = LatencyRecorder()
        recorder.record(2.0)
        summary = recorder.summary()
        assert set(summary) == {"count", "mean_ms", "min_ms", "max_ms",
                                "p50_ms", "p95_ms"}


class TestThroughputCounter:
    def test_rate(self):
        counter = ThroughputCounter()
        for t in (0, 1_000, 2_000):
            counter.record(t)
        assert counter.per_second == 1.0

    def test_no_events_is_zero(self):
        assert ThroughputCounter().per_second == 0.0

    def test_single_event_is_zero(self):
        counter = ThroughputCounter()
        counter.record(5)
        assert counter.per_second == 0.0

    def test_identical_timestamps_clamp_to_one_ms(self):
        # Two events in the same millisecond: the span clamps to 1 ms,
        # so the rate is a finite lower bound instead of 0.0 (the old
        # behaviour made every single-burst measurement vanish).
        counter = ThroughputCounter()
        counter.record(5)
        counter.record(5)
        assert counter.per_second == 1000.0

    def test_two_events_one_second_apart(self):
        counter = ThroughputCounter()
        counter.record(0)
        counter.record(1_000)
        assert counter.per_second == 1.0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(("name", "value"), [("a", 1), ("long-name", 2.5)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "2.500" in lines[3]

    def test_format_table_empty(self):
        text = format_table(("x",), [])
        assert "x" in text

    def test_series(self):
        series = Series("s")
        series.add(1, 10.0)
        series.add(2, 20.0)
        assert series.xs() == [1, 2]
        assert series.ys() == [10.0, 20.0]

    def test_series_table_merges_x(self):
        a = Series("a")
        a.add(1, 1.0)
        a.add(2, 2.0)
        b = Series("b")
        b.add(2, 20.0)
        b.add(3, 30.0)
        text = format_series_table("x", [a, b])
        lines = text.splitlines()
        assert len(lines) == 5  # header + rule + x in {1,2,3}
        assert "a" in lines[0] and "b" in lines[0]
