"""Unit tests for the Chord-style distributed directory."""

import math

import pytest

from repro.exceptions import DiscoveryError, TransportError
from repro.network.overlay import (
    BITS, ChordRing, DistributedDirectory, ring_hash,
)


class TestRingHash:
    def test_deterministic_and_case_insensitive(self):
        assert ring_hash("Node-A") == ring_hash("node-a")

    def test_in_space(self):
        for name in ("a", "b", "some-long-name"):
            assert 0 <= ring_hash(name) < (1 << BITS)


class TestChordRing:
    def test_join_and_leave(self):
        ring = ChordRing()
        for name in ("a", "b", "c"):
            ring.join(name)
        assert ring.node_names() == ["a", "b", "c"]
        ring.leave("b")
        assert ring.node_names() == ["a", "c"]
        ring.leave("b")  # idempotent

    def test_duplicate_join_rejected(self):
        ring = ChordRing()
        ring.join("a")
        with pytest.raises(TransportError):
            ring.join("A")

    def test_owner_is_successor(self):
        ring = ChordRing()
        nodes = [ring.join(f"n{i}") for i in range(8)]
        ids = sorted(node.node_id for node in nodes)
        for key in (0, ids[0], ids[3] + 1, (1 << BITS) - 1):
            owner = ring.owner_of(key)
            expected = next((i for i in ids if i >= key), ids[0])
            assert owner.node_id == expected

    def test_routing_reaches_owner_from_any_start(self):
        ring = ChordRing()
        nodes = [ring.join(f"peer-{i}") for i in range(16)]
        for start in nodes:
            for probe in ("x", "y", "key=value", "name=s1"):
                key = ring_hash(probe)
                owner, hops = ring.route(start, key)
                assert owner is ring.owner_of(key)
                assert hops <= BITS

    def test_hops_logarithmic(self):
        ring = ChordRing()
        nodes = [ring.join(f"peer-{i}") for i in range(64)]
        ring.total_hops = 0
        ring.lookups_routed = 0
        for start in nodes:
            for probe in range(8):
                ring.route(start, ring_hash(f"probe-{probe}"))
        mean_hops = ring.total_hops / ring.lookups_routed
        assert mean_hops <= 2 * math.log2(64), mean_hops

    def test_keys_move_on_join(self):
        ring = ChordRing()
        first = ring.join("only")
        key = ring_hash("the-key")
        first.store[key] = {"payload"}
        # Join nodes until one of them takes over the key.
        for i in range(32):
            ring.join(f"extra-{i}")
        owner = ring.owner_of(key)
        assert owner.store.get(key) == {"payload"}
        total = sum(1 for node in ring._nodes.values()
                    if key in node.store)
        assert total == 1  # exactly one home

    def test_keys_move_on_leave(self):
        ring = ChordRing()
        for i in range(8):
            ring.join(f"n{i}")
        key = ring_hash("survivor-key")
        owner = ring.owner_of(key)
        owner.store[key] = {"data"}
        ring.leave(owner.name)
        assert ring.owner_of(key).store.get(key) == {"data"}


class TestDistributedDirectory:
    def build(self, peers=8, sensors=10):
        directory = DistributedDirectory()
        for i in range(peers):
            directory.add_peer(f"node-{i}")
        for i in range(sensors):
            directory.publish(
                f"node-{i % peers}", f"sensor-{i}",
                {"type": "mote" if i % 2 == 0 else "camera",
                 "location": f"room-{i % 3}"},
                schema=(("v", "integer"),),
            )
        return directory

    def test_lookup_semantics_match_centralized(self):
        from repro.network.directory import PeerDirectory
        distributed = self.build()
        central = PeerDirectory()
        for entry in distributed.entries():
            central.publish(entry.container, entry.sensor,
                            entry.predicate_dict(), entry.schema)
        for query in ({}, {"type": "mote"},
                      {"type": "camera", "location": "room-1"},
                      {"type": "mote", "location": "room-0"},
                      {"missing": "x"}):
            assert [(e.container, e.sensor)
                    for e in distributed.lookup(query)] \
                == [(e.container, e.sensor) for e in central.lookup(query)]

    def test_lookup_one(self):
        directory = self.build()
        entry = directory.lookup_one({"name": "sensor-3"})
        assert entry.sensor == "sensor-3"
        with pytest.raises(DiscoveryError):
            directory.lookup_one({"type": "nothing"})

    def test_entries_sharded_across_peers(self):
        directory = self.build(peers=8, sensors=16)
        populated = [node for node in directory.ring._nodes.values()
                     if node.store]
        assert len(populated) >= 2, "entries should spread over the ring"

    def test_republish_replaces(self):
        directory = self.build(peers=4, sensors=0)
        directory.publish("node-0", "s", {"v": "1"})
        directory.publish("node-0", "s", {"v": "2"})
        assert len(directory) == 1
        assert directory.lookup({"v": "2"})
        assert not directory.lookup({"v": "1"})

    def test_unpublish_container(self):
        directory = self.build(peers=4, sensors=8)
        directory.unpublish_container("node-0")
        assert all(e.container != "node-0" for e in directory.entries())

    def test_publisher_autojoins_ring(self):
        directory = DistributedDirectory()
        directory.publish("newcomer", "s", {"k": "v"})
        assert "newcomer" in directory.ring.node_names()
        assert directory.lookup_one({"k": "v"}).sensor == "s"

    def test_peer_departure_preserves_other_entries(self):
        directory = self.build(peers=6, sensors=12)
        before = {(e.container, e.sensor) for e in directory.entries()
                  if e.container != "node-2"}
        directory.unpublish_container("node-2")
        directory.remove_peer("node-2")
        after = {(e.container, e.sensor) for e in directory.entries()}
        assert after == before


class TestPeerNetworkIntegration:
    def test_containers_over_distributed_directory(self):
        from repro import GSNContainer, PeerNetwork
        from repro.gsntime.clock import VirtualClock
        from repro.gsntime.scheduler import EventScheduler
        from tests.conftest import simple_mote_descriptor

        clock = VirtualClock()
        scheduler = EventScheduler(clock)
        network = PeerNetwork(scheduler=scheduler, distributed=True)
        a = GSNContainer("node-a", network=network, clock=clock,
                         scheduler=scheduler)
        b = GSNContainer("node-b", network=network, clock=clock,
                         scheduler=scheduler)
        try:
            a.deploy(simple_mote_descriptor(interval_ms=500))
            b.deploy("""
            <virtual-sensor name="mirror">
              <output-structure>
                <field name="temperature" type="integer"/>
              </output-structure>
              <input-stream name="in">
                <stream-source alias="r" storage-size="1">
                  <address wrapper="remote">
                    <predicate key="type" val="temperature"/>
                  </address>
                  <query>select * from wrapper</query>
                </stream-source>
                <query>select * from r</query>
              </input-stream>
            </virtual-sensor>
            """)
            scheduler.run_for(3_000)
            assert b.query("select count(*) n from vs_mirror"
                           ).first()["n"] == 6
            assert network.status()["overlay_hops"] >= 0
        finally:
            b.shutdown()
            a.shutdown()
