"""Unit tests for notification channels and the manager."""

import logging

import pytest

from repro.exceptions import NotificationError
from repro.notifications.channels import (
    CallbackChannel, EmailChannel, LogChannel, QueueChannel, WebhookChannel,
)
from repro.notifications.manager import NotificationManager
from repro.query.subscription import Subscription
from repro.sqlengine.relation import Relation


def make_subscription(channel="queue", name="watch"):
    return Subscription(sql="select 1", channel=channel, name=name,
                        client="bob", tables=frozenset({"vs_x"}))


class TestChannels:
    def test_queue_buffers_and_drains(self):
        channel = QueueChannel()
        channel.deliver({"a": 1})
        channel.deliver({"a": 2})
        assert channel.pending == 2
        assert channel.peek() == {"a": 2}
        assert channel.drain() == [{"a": 1}, {"a": 2}]
        assert channel.pending == 0

    def test_queue_maxlen(self):
        channel = QueueChannel(maxlen=2)
        for i in range(5):
            channel.deliver({"i": i})
        assert [p["i"] for p in channel.drain()] == [3, 4]

    def test_callback(self):
        seen = []
        channel = CallbackChannel("cb", seen.append)
        channel.deliver({"x": 1})
        assert seen == [{"x": 1}]
        assert channel.delivered == 1

    def test_callback_failure_counted(self):
        def boom(payload):
            raise RuntimeError("nope")
        channel = CallbackChannel("cb", boom)
        with pytest.raises(NotificationError):
            channel.deliver({})
        assert channel.failed == 1

    def test_email_outbox(self):
        channel = EmailChannel(recipient="ops@example.org")
        channel.deliver({"subscription": "s", "client": "c"})
        assert channel.outbox[0]["to"] == "ops@example.org"

    def test_email_bad_recipient(self):
        with pytest.raises(NotificationError):
            EmailChannel(recipient="not-an-address")

    def test_webhook_records_requests(self):
        channel = WebhookChannel(url="https://example.org/hook")
        channel.deliver({"x": 1})
        assert channel.requests == [
            {"url": "https://example.org/hook", "json": {"x": 1}}]

    def test_webhook_bad_url(self):
        with pytest.raises(NotificationError):
            WebhookChannel(url="ftp://nope")

    def test_log_channel(self, caplog):
        channel = LogChannel(logger=logging.getLogger("test.notify"))
        with caplog.at_level(logging.INFO, logger="test.notify"):
            channel.deliver({"subscription": "s", "summary": "1 row"})
        assert "notification" in caplog.text

    def test_empty_name_rejected(self):
        with pytest.raises(NotificationError):
            QueueChannel("  ")


class TestNotificationManager:
    def test_default_queue_channel(self):
        manager = NotificationManager()
        assert manager.has_channel("queue")
        assert manager.channel_names() == ["queue"]

    def test_add_remove_channel(self):
        manager = NotificationManager()
        manager.add_channel(EmailChannel("mail", "a@b.c"))
        assert manager.has_channel("mail")
        manager.remove_channel("mail")
        assert not manager.has_channel("mail")

    def test_queue_channel_protected(self):
        manager = NotificationManager()
        with pytest.raises(NotificationError):
            manager.remove_channel("queue")

    def test_duplicate_channel_rejected(self):
        manager = NotificationManager()
        with pytest.raises(NotificationError):
            manager.add_channel(QueueChannel("queue"))

    def test_deliver_shapes_payload(self):
        manager = NotificationManager()
        result = Relation(["n"], [(3,)])
        notification = manager.deliver(make_subscription(), result)
        assert notification.row_count == 1
        assert notification.rows == ({"n": 3},)
        assert "vs_x" in notification.summary
        assert manager.dispatched == 1

    def test_deliver_truncates_rows(self):
        manager = NotificationManager()
        big = Relation(["n"], [(i,) for i in range(500)])
        notification = manager.deliver(make_subscription(), big)
        assert notification.row_count == 500
        assert len(notification.rows) == NotificationManager.MAX_ROWS

    def test_channel_failure_does_not_propagate(self):
        manager = NotificationManager()

        def boom(payload):
            raise RuntimeError("client gone")
        manager.add_channel(CallbackChannel("bad", boom))
        manager.deliver(make_subscription(channel="bad"),
                        Relation(["n"], [(1,)]))
        assert manager.failures == 1

    def test_emit_event(self):
        manager = NotificationManager()
        manager.emit_event("queue", {"kind": "sensor-deployed"})
        queue = manager.channel("queue")
        assert queue.drain() == [{"kind": "sensor-deployed"}]

    def test_status(self):
        manager = NotificationManager()
        manager.deliver(make_subscription(), Relation(["n"], [(1,)]))
        status = manager.status()
        assert status["dispatched"] == 1
        assert status["channels"]["queue"]["delivered"] == 1
