"""Unit tests for pools, lifecycle, ISM, and the virtual sensor pipeline."""

import pytest

from repro.datatypes import DataType
from repro.descriptors.model import (
    AddressSpec, InputStreamSpec, LifeCycleConfig, StreamSourceSpec,
)
from repro.exceptions import LifecycleError, StreamError
from repro.gsntime.clock import VirtualClock
from repro.storage.base import RetentionPolicy
from repro.storage.memory import MemoryStorage
from repro.streams.schema import StreamSchema
from repro.vsensor.input_manager import InputStreamManager
from repro.vsensor.lifecycle import LifecycleState, LifeCycleManager
from repro.vsensor.pool import WorkerPool
from repro.vsensor.virtual_sensor import VirtualSensor
from repro.wrappers.scripted import ScriptedWrapper

from tests.conftest import simple_mote_descriptor


class TestWorkerPool:
    def test_synchronous_runs_inline(self):
        pool = WorkerPool(1, synchronous=True)
        seen = []
        pool.submit(lambda: seen.append(1))
        assert seen == [1]
        assert pool.tasks_completed == 1

    def test_errors_captured_not_raised(self):
        pool = WorkerPool(1, synchronous=True)
        pool.submit(lambda: 1 / 0)
        assert pool.tasks_failed == 1
        assert isinstance(pool.errors()[0], ZeroDivisionError)
        pool.clear_errors()
        assert pool.errors() == []

    def test_threaded_pool_drains(self):
        pool = WorkerPool(3, synchronous=False)
        seen = []
        for i in range(30):
            pool.submit(lambda i=i: seen.append(i))
        pool.drain()
        assert sorted(seen) == list(range(30))
        pool.shutdown()

    def test_submit_after_shutdown_rejected(self):
        pool = WorkerPool(1, synchronous=True)
        pool.shutdown()
        with pytest.raises(LifecycleError):
            pool.submit(lambda: None)

    def test_bad_size(self):
        with pytest.raises(LifecycleError):
            WorkerPool(0)

    def test_context_manager(self):
        with WorkerPool(2, synchronous=False) as pool:
            pool.submit(lambda: None)
            pool.drain()


class TestLifeCycleManager:
    def make(self):
        return LifeCycleManager("s", LifeCycleConfig(pool_size=2))

    def test_happy_path(self):
        lcm = self.make()
        assert lcm.state is LifecycleState.LOADED
        lcm.start(now=100)
        assert lcm.state is LifecycleState.RUNNING
        assert lcm.started_at == 100
        lcm.pause()
        assert not lcm.is_processing
        lcm.resume()
        assert lcm.is_processing
        lcm.stop()
        assert lcm.state is LifecycleState.STOPPED

    def test_illegal_transitions(self):
        lcm = self.make()
        with pytest.raises(LifecycleError):
            lcm.pause()  # not running yet
        lcm.start(0)
        with pytest.raises(LifecycleError):
            lcm.start(0)  # already running

    def test_fail_path(self):
        lcm = self.make()
        lcm.start(0)
        lcm.fail("wrapper died")
        assert lcm.state is LifecycleState.FAILED
        assert lcm.failure_reason == "wrapper died"
        lcm.stop()

    def test_status(self):
        status = self.make().status()
        assert status["state"] == "loaded"
        assert status["pool_size"] == 2


def scripted(schema=None, value=7):
    wrapper = ScriptedWrapper()
    wrapper.script(lambda now: {"v": value},
                   schema or StreamSchema.build(v=DataType.INTEGER))
    return wrapper


def stream_spec(alias="s1", window="10", sampling=1.0, buffer_size=0,
                rate=0.0, source_query="select * from wrapper",
                stream_query=None):
    return InputStreamSpec(
        name="in",
        sources=(StreamSourceSpec(
            alias=alias, address=AddressSpec("scripted"),
            query=source_query, storage_size=window,
            sampling_rate=sampling, disconnect_buffer=buffer_size,
        ),),
        query=stream_query or f"select * from {alias}",
        rate=rate,
    )


class TestInputStreamManager:
    def setup_method(self):
        self.clock = VirtualClock(1_000)
        self.triggers = []
        self.ism = InputStreamManager(
            self.clock, lambda name, el: self.triggers.append((name, el))
        )

    def test_trigger_on_admission(self):
        wrapper = scripted()
        wrapper.attach(self.clock)
        wrapper.configure({})
        self.ism.add_stream(stream_spec(), {"s1": wrapper})
        wrapper.start()
        wrapper.tick()
        assert len(self.triggers) == 1
        name, element = self.triggers[0]
        assert name == "in"
        assert element.timed == 1_000

    def test_unstamped_elements_get_local_clock(self):
        wrapper = scripted()
        wrapper.attach(self.clock)
        self.ism.add_stream(stream_spec(), {"s1": wrapper})
        wrapper.emit({"v": 1})  # no timestamp
        assert self.triggers[0][1].timed == 1_000
        assert self.triggers[0][1].arrival_time == 1_000

    def test_producer_timestamp_kept(self):
        wrapper = scripted()
        wrapper.attach(self.clock)
        self.ism.add_stream(stream_spec(), {"s1": wrapper})
        wrapper.emit({"v": 1}, timed=123)
        assert self.triggers[0][1].timed == 123

    def test_rate_bounding(self):
        wrapper = scripted()
        wrapper.attach(self.clock)
        self.ism.add_stream(stream_spec(rate=1.0), {"s1": wrapper})
        wrapper.emit({"v": 1}, timed=1_000)
        wrapper.emit({"v": 2}, timed=1_100)   # < 1s later: bounded
        wrapper.emit({"v": 3}, timed=2_500)
        assert len(self.triggers) == 2
        stream = self.ism.stream("in")
        assert stream.triggers_bounded == 1

    def test_sampling_drops(self):
        wrapper = scripted()
        wrapper.attach(self.clock)
        self.ism = InputStreamManager(self.clock,
                                      lambda *a: self.triggers.append(a),
                                      seed=1)
        self.ism.add_stream(stream_spec(sampling=0.01), {"s1": wrapper})
        for i in range(100):
            wrapper.emit({"v": i}, timed=1_000 + i)
        assert len(self.triggers) < 20

    def test_disconnect_buffers_and_replays(self):
        wrapper = scripted()
        wrapper.attach(self.clock)
        self.ism.add_stream(stream_spec(buffer_size=5), {"s1": wrapper})
        source = self.ism.stream("in").source("s1")
        source.disconnect()
        wrapper.emit({"v": 1}, timed=1_001)
        wrapper.emit({"v": 2}, timed=1_002)
        assert self.triggers == []
        replayed = source.reconnect()
        assert len(replayed) == 2
        assert len(source.window.contents()) == 2

    def test_pause_resume(self):
        wrapper = scripted()
        wrapper.attach(self.clock)
        self.ism.add_stream(stream_spec(), {"s1": wrapper})
        self.ism.pause()
        wrapper.emit({"v": 1}, timed=1_001)
        assert self.triggers == []
        self.ism.resume()
        wrapper.emit({"v": 2}, timed=1_002)
        assert len(self.triggers) == 1

    def test_window_relation_shape(self):
        wrapper = scripted()
        wrapper.attach(self.clock)
        self.ism.add_stream(stream_spec(window="3"), {"s1": wrapper})
        for i in range(5):
            wrapper.emit({"v": i}, timed=1_000 + i)
        relation = self.ism.stream("in").source("s1").window_relation()
        assert relation.columns == ("v", "timed")
        assert [row[0] for row in relation.rows] == [2, 3, 4]

    def test_duplicate_stream_rejected(self):
        wrapper = scripted()
        wrapper.attach(self.clock)
        self.ism.add_stream(stream_spec(), {"s1": wrapper})
        with pytest.raises(StreamError):
            self.ism.add_stream(stream_spec(), {"s1": wrapper})

    def test_unknown_stream_and_source(self):
        with pytest.raises(StreamError):
            self.ism.stream("nope")
        wrapper = scripted()
        wrapper.attach(self.clock)
        stream = self.ism.add_stream(stream_spec(), {"s1": wrapper})
        with pytest.raises(StreamError):
            stream.source("zz")


class TestVirtualSensorPipeline:
    def build_sensor(self, descriptor=None, value=7):
        descriptor = descriptor or simple_mote_descriptor()
        clock = VirtualClock(10_000)
        wrapper = ScriptedWrapper()
        wrapper.script(
            lambda now: {"temperature": value},
            StreamSchema.build(temperature=DataType.INTEGER),
        )
        wrapper.attach(clock)
        wrapper.configure({})
        storage = MemoryStorage()
        table = storage.create("out", descriptor.output_structure,
                               RetentionPolicy("all"))
        sensor = VirtualSensor(descriptor, clock, {"src": wrapper},
                               output_table=table)
        return sensor, wrapper, clock, table

    def test_trigger_produces_output(self):
        sensor, wrapper, clock, table = self.build_sensor()
        sensor.start()
        wrapper.tick()
        assert sensor.elements_produced == 1
        assert table.latest()["temperature"] == 7

    def test_average_computed_over_window(self):
        descriptor = simple_mote_descriptor(window="10")
        sensor, wrapper, clock, table = self.build_sensor(descriptor)
        sensor.start()
        for value in (10, 20, 30):
            wrapper._producer = lambda now, v=value: {"temperature": v}
            clock.advance(100)
            wrapper.tick()
        assert table.latest()["temperature"] == 20  # avg(10,20,30)

    def test_not_processing_when_paused(self):
        sensor, wrapper, clock, table = self.build_sensor()
        sensor.start()
        sensor.pause()
        wrapper.tick()
        assert sensor.elements_produced == 0
        sensor.resume()
        wrapper.tick()
        assert sensor.elements_produced == 1

    def test_output_rounding_for_integer_fields(self):
        # avg() yields floats; the integer output field must round.
        descriptor = simple_mote_descriptor(window="10")
        sensor, wrapper, clock, table = self.build_sensor(descriptor)
        sensor.start()
        for value in (10, 11):
            wrapper._producer = lambda now, v=value: {"temperature": v}
            clock.advance(10)
            wrapper.tick()
        assert table.latest()["temperature"] == 10  # round(10.5) -> 10

    def test_latency_recorded(self):
        sensor, wrapper, clock, __ = self.build_sensor()
        sensor.start()
        wrapper.tick()
        assert sensor.latency.count == 1
        assert sensor.latency.mean_ms > 0

    def test_processing_hook_invoked(self):
        sensor, wrapper, clock, __ = self.build_sensor()
        calls = []
        sensor.processing_hooks.append(lambda t, ms: calls.append((t, ms)))
        sensor.start()
        wrapper.tick()
        assert len(calls) == 1
        assert calls[0][0] == 10_000

    def test_stop_stops_wrappers(self):
        sensor, wrapper, clock, __ = self.build_sensor()
        sensor.start()
        sensor.stop()
        assert wrapper.state.value == "stopped"

    def test_pipeline_errors_counted_not_raised(self):
        descriptor = simple_mote_descriptor(
            stream_query="select temperature from src",
        )
        sensor, wrapper, clock, __ = self.build_sensor(descriptor)
        sensor.start()
        # Break the output query's input: emit a payload whose field is a
        # string, making avg() fail inside the pipeline.
        wrapper._producer = lambda now: {"temperature": "boom"}
        wrapper.tick()
        assert sensor.lifecycle.pool.tasks_failed == 1
        assert sensor.elements_produced == 0

    def test_status_document(self):
        sensor, wrapper, clock, __ = self.build_sensor()
        sensor.start()
        wrapper.tick()
        status = sensor.status()
        assert status["name"] == "probe"
        assert status["elements_produced"] == 1
        assert "in" in status["input_streams"]
