"""Unit tests for the container-wide metrics registry."""

import pytest

from repro.exceptions import ConfigurationError
from repro.metrics.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
    counter_family,
    gauge_family,
)


class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("gsn_test_total", "help").child()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("gsn_test_total").child()
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("gsn_depth").child()
        gauge.set(10)
        gauge.dec(4)
        gauge.inc()
        assert gauge.value == 7.0

    def test_labeled_children_are_distinct_and_cached(self):
        family = MetricsRegistry().counter("gsn_events_total",
                                           labelnames=("sensor",))
        a = family.labels(sensor="a")
        b = family.labels(sensor="b")
        a.inc()
        assert b.value == 0.0
        assert family.labels(sensor="a") is a

    def test_wrong_labels_rejected(self):
        family = MetricsRegistry().counter("gsn_events_total",
                                           labelnames=("sensor",))
        with pytest.raises(ConfigurationError):
            family.labels(wrong="x")
        with pytest.raises(ConfigurationError):
            family.child()  # labeled family has no anonymous child

    def test_reregistration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("gsn_x_total", labelnames=("s",))
        again = registry.counter("gsn_x_total", labelnames=("s",))
        assert first is again

    def test_reregistration_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("gsn_x_total")
        with pytest.raises(ConfigurationError):
            registry.gauge("gsn_x_total")

    def test_bad_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("9starts_with_digit")
        with pytest.raises(ConfigurationError):
            registry.counter("has space")
        with pytest.raises(ConfigurationError):
            registry.counter("ok_total", labelnames=("__reserved",))


class TestHistogramBucketing:
    def test_value_on_boundary_is_inclusive(self):
        # Prometheus `le` semantics: value == bound lands in that bucket.
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(1.0)
        snapshot = histogram.snapshot()
        assert snapshot.counts == (1, 0, 0)

    def test_value_above_all_bounds_goes_to_inf(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(99.0)
        assert histogram.snapshot().counts == (0, 0, 1)

    def test_cumulative_includes_inf(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        for value in (0.5, 1.5, 3.0):
            histogram.observe(value)
        pairs = histogram.snapshot().cumulative()
        assert pairs == [(1.0, 1), (2.0, 2), (float("inf"), 3)]

    def test_sum_count_mean(self):
        histogram = Histogram(bounds=(10.0,))
        histogram.observe(2.0)
        histogram.observe(4.0)
        snapshot = histogram.snapshot()
        assert snapshot.sum == 6.0
        assert snapshot.count == 2
        assert snapshot.mean == 3.0

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram(bounds=(1.0,)).snapshot().mean == 0.0

    def test_default_buckets_are_sorted_unique(self):
        bounds = DEFAULT_LATENCY_BUCKETS_MS
        assert tuple(sorted(set(bounds))) == bounds

    def test_bad_bucket_configs(self):
        with pytest.raises(ConfigurationError):
            Histogram(bounds=())
        with pytest.raises(ConfigurationError):
            Histogram(bounds=(1.0, 1.0))


class TestExposition:
    def test_counter_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("gsn_events_total", "Number of events.",
                         labelnames=("sensor",)).labels(sensor="s1").inc(3)
        text = registry.expose_text()
        assert "# HELP gsn_events_total Number of events." in text
        assert "# TYPE gsn_events_total counter" in text
        assert 'gsn_events_total{sensor="s1"} 3' in text
        assert text.endswith("\n")

    def test_histogram_exposition_format(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("gsn_latency_ms", "Latency.",
                                       buckets=(1.0, 5.0)).child()
        histogram.observe(0.5)
        histogram.observe(3.0)
        text = registry.expose_text()
        assert "# TYPE gsn_latency_ms histogram" in text
        assert 'gsn_latency_ms_bucket{le="1"} 1' in text
        assert 'gsn_latency_ms_bucket{le="5"} 2' in text
        assert 'gsn_latency_ms_bucket{le="+Inf"} 2' in text
        assert "gsn_latency_ms_sum 3.5" in text
        assert "gsn_latency_ms_count 2" in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("gsn_x_total", labelnames=("p",)) \
            .labels(p='a"b\\c\nd').inc()
        text = registry.expose_text()
        assert r'gsn_x_total{p="a\"b\\c\nd"} 1' in text

    def test_families_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("gsn_zz_total").child().inc()
        registry.counter("gsn_aa_total").child().inc()
        text = registry.expose_text()
        assert text.index("gsn_aa_total") < text.index("gsn_zz_total")

    def test_empty_registry_exposes_empty(self):
        assert MetricsRegistry().expose_text() == ""


class TestCollectors:
    def test_collector_sampled_at_scrape_time(self):
        registry = MetricsRegistry()
        state = {"value": 1.0}
        registry.register_collector(lambda: [
            gauge_family("gsn_live", "Live reading.",
                         [({}, state["value"])])
        ])
        assert "gsn_live 1" in registry.expose_text()
        state["value"] = 2.0
        assert "gsn_live 2" in registry.expose_text()

    def test_instruments_win_over_collectors(self):
        registry = MetricsRegistry()
        registry.counter("gsn_dup_total").child().inc(5)
        registry.register_collector(lambda: [
            counter_family("gsn_dup_total", "shadowed", [({}, 99.0)])
        ])
        text = registry.expose_text()
        assert "gsn_dup_total 5" in text
        assert "99" not in text

    def test_status_counts_families_and_samples(self):
        registry = MetricsRegistry()
        family = registry.counter("gsn_x_total", labelnames=("s",))
        family.labels(s="a").inc()
        family.labels(s="b").inc()
        assert registry.status() == {"families": 1, "samples": 2}
