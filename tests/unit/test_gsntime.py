"""Unit tests for the time substrate: clocks, durations, scheduler."""

import pytest

from repro.exceptions import ConfigurationError
from repro.gsntime.clock import SystemClock, VirtualClock
from repro.gsntime.duration import (
    Duration, format_duration, parse_duration, parse_window_spec,
)


class TestVirtualClock:
    def test_starts_at_given_time(self):
        assert VirtualClock(42).now() == 42

    def test_defaults_to_epoch(self):
        assert VirtualClock().now() == 0

    def test_advance_moves_forward(self):
        clock = VirtualClock(100)
        assert clock.advance(50) == 150
        assert clock.now() == 150

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_set_rejects_past(self):
        clock = VirtualClock(100)
        with pytest.raises(ValueError):
            clock.set(99)

    def test_set_accepts_same_instant(self):
        clock = VirtualClock(100)
        clock.set(100)
        assert clock.now() == 100

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-1)

    def test_now_seconds(self):
        assert VirtualClock(1_500).now_seconds() == 1.5


class TestSystemClock:
    def test_monotone_nondecreasing(self):
        clock = SystemClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_epoch_scale(self):
        # Sanity: the year is after 2020 in epoch milliseconds.
        assert SystemClock().now() > 1_577_836_800_000


class TestParseDuration:
    @pytest.mark.parametrize("text,millis", [
        ("10s", 10_000),
        ("500ms", 500),
        ("1h", 3_600_000),
        ("2m", 120_000),
        ("1d", 86_400_000),
        ("2m30s", 150_000),
        ("1h30m", 5_400_000),
        ("0s", 0),
        ("1.5s", 1_500),
        ("10 s", 10_000),
        ("5MIN", 300_000),
    ])
    def test_valid(self, text, millis):
        assert parse_duration(text).millis == millis

    @pytest.mark.parametrize("text", ["", "  ", "10", "s10", "10x", "-5s",
                                      "10s extra", "ten seconds"])
    def test_invalid(self, text):
        with pytest.raises(ConfigurationError):
            parse_duration(text)

    def test_duration_arithmetic(self):
        assert (Duration(100) + Duration(50)).millis == 150
        assert (Duration(100) * 3).millis == 300
        assert bool(Duration(0)) is False
        assert bool(Duration(1)) is True
        assert int(Duration(250)) == 250

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            Duration(-1)


class TestWindowSpec:
    def test_bare_number_is_count(self):
        assert parse_window_spec("10") == ("count", 10)

    def test_suffixed_is_time(self):
        assert parse_window_spec("10s") == ("time", 10_000)

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_window_spec("0")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_window_spec("   ")


class TestFormatDuration:
    @pytest.mark.parametrize("millis,text", [
        (0, "0ms"),
        (500, "500ms"),
        (10_000, "10s"),
        (90_000, "1m30s"),
        (3_600_000, "1h"),
        (90_061_001, "1d1h1m1s1ms"),
    ])
    def test_round_numbers(self, millis, text):
        assert format_duration(millis) == text

    def test_roundtrip(self):
        for millis in (1, 999, 1_000, 61_000, 3_661_000):
            assert parse_duration(format_duration(millis)).millis == millis


class TestEventScheduler:
    def test_one_shot_fires_at_time(self, clock, scheduler):
        fired = []
        scheduler.at(clock.now() + 100, fired.append)
        scheduler.run_until(clock.now() + 99)
        assert fired == []
        scheduler.run_until(clock.now() + 1)
        assert fired == [1_000_100]

    def test_after_schedules_relative(self, clock, scheduler):
        fired = []
        scheduler.after(50, fired.append)
        scheduler.run_for(50)
        assert fired == [1_000_050]

    def test_periodic_fires_repeatedly(self, clock, scheduler):
        fired = []
        scheduler.every(100, fired.append)
        scheduler.run_for(1_000)
        assert len(fired) == 10
        assert fired[0] == 1_000_100
        assert fired[-1] == 1_001_000

    def test_periodic_with_phase(self, clock, scheduler):
        fired = []
        scheduler.every(100, fired.append, start_delay=30)
        scheduler.run_for(250)
        assert fired == [1_000_030, 1_000_130, 1_000_230]

    def test_cancel_stops_recurrence(self, clock, scheduler):
        fired = []
        event = scheduler.every(100, fired.append)
        scheduler.run_for(250)
        event.cancel()
        scheduler.run_for(1_000)
        assert len(fired) == 2

    def test_same_time_fifo_order(self, clock, scheduler):
        order = []
        scheduler.at(clock.now() + 10, lambda t: order.append("first"))
        scheduler.at(clock.now() + 10, lambda t: order.append("second"))
        scheduler.run_for(10)
        assert order == ["first", "second"]

    def test_clock_advances_to_end(self, clock, scheduler):
        scheduler.run_for(500)
        assert clock.now() == 1_000_500

    def test_cannot_schedule_in_past(self, clock, scheduler):
        with pytest.raises(ConfigurationError):
            scheduler.at(clock.now() - 1, lambda t: None)

    def test_rejects_bad_intervals(self, scheduler):
        with pytest.raises(ConfigurationError):
            scheduler.every(0, lambda t: None)
        with pytest.raises(ConfigurationError):
            scheduler.after(-5, lambda t: None)

    def test_step_fires_single_event(self, clock, scheduler):
        fired = []
        scheduler.after(10, fired.append)
        scheduler.after(20, fired.append)
        assert scheduler.step() is True
        assert len(fired) == 1
        assert scheduler.step() is True
        assert len(fired) == 2
        assert scheduler.step() is False

    def test_events_fired_counter(self, clock, scheduler):
        scheduler.every(10, lambda t: None)
        scheduler.run_for(100)
        assert scheduler.events_fired == 10

    def test_callback_scheduling_more_events(self, clock, scheduler):
        fired = []

        def chain(t):
            fired.append(t)
            if len(fired) < 3:
                scheduler.after(10, chain)

        scheduler.after(10, chain)
        scheduler.run_for(100)
        assert len(fired) == 3
