"""Unit tests for the interprocedural lock-order analysis (GSN5xx):
the call-graph builder, the held-locks propagation, the cycle detector,
and the annotation vocabulary."""

import textwrap

from repro.analysis.callgraph import Call, DeclaredEdge, ProgramIndex
from repro.analysis.lockgraph import (
    EdgeSite, LockGraph, analyze_deadlocks, expand_paths,
)


def write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return str(path)


def run(tmp_path, name, source):
    # include_sanctioned=False keeps repro's own LOCK_ORDER out of
    # these hermetic single-file fixtures.
    path = write(tmp_path, name, source)
    return analyze_deadlocks([path], include_sanctioned=False)


def rules(report):
    return [f.rule_id for f in report.findings]


class TestLockGraphCycles:
    def test_two_node_cycle(self):
        graph = LockGraph()
        site = EdgeSite("f", "x.py", 1)
        graph.add("A", "B", site)
        graph.add("B", "A", site)
        cycles = graph.cycles()
        assert len(cycles) == 1
        assert cycles[0][0] == cycles[0][-1]
        assert set(cycles[0]) == {"A", "B"}

    def test_acyclic_chain(self):
        graph = LockGraph()
        site = EdgeSite("f", "x.py", 1)
        graph.add("A", "B", site)
        graph.add("B", "C", site)
        assert graph.cycles() == []

    def test_declared_edges_participate(self):
        graph = LockGraph()
        graph.add("A", "B", EdgeSite("f", "x.py", 1))
        graph.declared.append(DeclaredEdge("B", "A", "x.py", 2))
        assert len(graph.cycles()) == 1

    def test_to_dot_lists_nodes_and_edges(self):
        graph = LockGraph()
        graph.add("A", "B", EdgeSite("f", "x.py", 1))
        dot = graph.to_dot()
        assert dot.startswith("digraph lock_order")
        assert '"A" -> "B"' in dot


class TestCallGraphBuilder:
    def test_method_resolution_via_attribute_annotation(self, tmp_path):
        path = write(tmp_path, "resolve.py", """\
            class Helper:
                def work(self):
                    return 1

            class Owner:
                def __init__(self):
                    self.helper: Helper = Helper()

                def go(self):
                    self.helper.work()
            """)
        index = ProgramIndex.build([path])
        calls = [e for e in index.events("Owner.go")
                 if isinstance(e, Call)]
        assert calls and calls[0].targets == ("Helper.work",)

    def test_subclass_override_fanout(self, tmp_path):
        path = write(tmp_path, "fanout.py", """\
            class Base:
                def run(self):
                    pass

            class Sub(Base):
                def run(self):
                    pass
            """)
        index = ProgramIndex.build([path])
        targets = index.resolve_method("Base", "run")
        assert "Base.run" in targets and "Sub.run" in targets

    def test_requires_lock_resolves_to_declaring_class(self, tmp_path):
        path = write(tmp_path, "req.py", """\
            import threading

            class Base:
                def __init__(self):
                    self._lock = threading.Lock()

            class Child(Base):
                def helper(self):  # requires-lock: _lock
                    pass
            """)
        index = ProgramIndex.build([path])
        assert index.functions["Child.helper"].requires == ("Base._lock",)

    def test_mutual_recursion_terminates(self, tmp_path):
        report, __ = run(tmp_path, "rec.py", """\
            def ping(n):
                return pong(n - 1)

            def pong(n):
                return ping(n - 1)
            """)
        assert report.ok

    def test_docstring_annotations_are_inert(self, tmp_path):
        # The vocabulary quoted in prose must not declare edges or
        # suppress findings; only real comments count.
        path = write(tmp_path, "doc.py", '''\
            """Mentions # lock-order: doc.A < doc.B in a docstring."""
            import threading

            A = threading.Lock()
            B = threading.Lock()
            ''')
        index = ProgramIndex.build([path])
        assert index.declared_order == []


class TestDeadlockFindings:
    def test_gsn501_inconsistent_order_across_functions(self, tmp_path):
        report, __ = run(tmp_path, "cyc.py", """\
            import threading

            A = threading.Lock()
            B = threading.Lock()

            def forward():
                with A:
                    with B:
                        pass

            def backward():
                with B:
                    with A:
                        pass
            """)
        assert rules(report) == ["GSN501"]

    def test_gsn501_from_declared_order_comment(self, tmp_path):
        report, __ = run(tmp_path, "decl.py", """\
            import threading

            A = threading.Lock()
            B = threading.Lock()
            # lock-order: decl.B < decl.A

            def f():
                with A:
                    with B:
                        pass
            """)
        assert rules(report) == ["GSN501"]

    def test_gsn502_blocking_reached_through_a_call(self, tmp_path):
        # The interprocedural case: the sleep is in a helper that never
        # mentions the lock.
        report, __ = run(tmp_path, "block.py", """\
            import threading
            import time

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    time.sleep(0.5)
            """)
        assert rules(report) == ["GSN502"]
        assert "Worker._lock" in report.findings[0].message

    def test_gsn502_via_requires_lock_annotation(self, tmp_path):
        report, __ = run(tmp_path, "reqblock.py", """\
            import threading
            import time

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()

                def helper(self):  # requires-lock: _lock
                    time.sleep(0.5)
            """)
        assert rules(report) == ["GSN502"]

    def test_gsn503_dispatch_under_lock(self, tmp_path):
        report, __ = run(tmp_path, "disp.py", """\
            import threading

            class Bus:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._subs = []

                def fire(self, payload):
                    with self._lock:
                        for listener in self._subs:
                            listener.notify(payload)
            """)
        assert rules(report) == ["GSN503"]

    def test_registry_maintenance_is_not_dispatch(self, tmp_path):
        # Mutating a list *of* listeners under the lock is bookkeeping,
        # not a callback invocation.
        report, __ = run(tmp_path, "reg.py", """\
            import threading

            class Bus:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._listeners = []

                def add(self, cb):
                    with self._lock:
                        self._listeners.append(cb)

                def drop(self, cb):
                    with self._lock:
                        self._listeners.remove(cb)
            """)
        assert report.ok

    def test_lambda_body_escapes_defining_lock_scope(self, tmp_path):
        # A lambda built under a lock runs later, when the lock is no
        # longer held; its body must not inherit the held set.
        report, __ = run(tmp_path, "lam.py", """\
            import threading
            import time

            class Deferred:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._thunks = []

                def schedule(self):
                    with self._lock:
                        self._thunks.append(lambda: time.sleep(1.0))
            """)
        assert report.ok

    def test_gsn504_reacquire_through_helper(self, tmp_path):
        report, __ = run(tmp_path, "self.py", """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()

                def bump(self):
                    with self._lock:
                        self.read()

                def read(self):
                    with self._lock:
                        return 0
            """)
        assert rules(report) == ["GSN504"]

    def test_reentrant_lock_reacquire_is_fine(self, tmp_path):
        report, __ = run(tmp_path, "rlock.py", """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.RLock()

                def bump(self):
                    with self._lock:
                        self.read()

                def read(self):
                    with self._lock:
                        return 0
            """)
        assert report.ok

    def test_suppression_comment_silences_finding(self, tmp_path):
        report, __ = run(tmp_path, "supp.py", """\
            import threading
            import time

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()

                def pause(self):
                    with self._lock:
                        time.sleep(0.1)  # gsn-lint: disable=GSN502
            """)
        assert report.ok

    def test_expand_paths_walks_directories(self, tmp_path):
        write(tmp_path, "one.py", "x = 1\n")
        write(tmp_path, "two.py", "y = 2\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("z = 3\n")
        found = expand_paths([str(tmp_path)])
        assert [p.rsplit("/", 1)[-1] for p in found] == ["one.py", "two.py"]

    def test_parse_error_reports_gsn100(self, tmp_path):
        report, __ = run(tmp_path, "broken.py", "def oops(:\n")
        assert rules(report) == ["GSN100"]
