"""Unit tests for the SQL lexer."""

import pytest

from repro.exceptions import SQLSyntaxError
from repro.sqlengine.lexer import Token, TokenType, tokenize


def kinds(sql):
    return [(t.type, t.value) for t in tokenize(sql)[:-1]]


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert kinds("SELECT select SeLeCt") == [
            (TokenType.KEYWORD, "select")] * 3

    def test_identifiers_lowercased(self):
        assert kinds("Temp_1") == [(TokenType.IDENTIFIER, "temp_1")]

    def test_end_token_always_present(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.END

    def test_operators(self):
        assert [v for __, v in kinds("= <> != <= >= < > + - * / % || ( ) , .")] \
            == ["=", "<>", "!=", "<=", ">=", "<", ">", "+", "-", "*", "/",
                "%", "||", "(", ")", ",", "."]

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("select @x")


class TestNumbers:
    @pytest.mark.parametrize("text,value", [
        ("42", 42),
        ("0", 0),
        ("3.14", 3.14),
        (".5", 0.5),
        ("1e3", 1000.0),
        ("2.5e-2", 0.025),
        ("1E+2", 100.0),
    ])
    def test_literals(self, text, value):
        tokens = tokenize(text)
        assert tokens[0].type is TokenType.NUMBER
        assert tokens[0].value == value

    def test_int_stays_int(self):
        assert isinstance(tokenize("7")[0].value, int)

    def test_float_is_float(self):
        assert isinstance(tokenize("7.0")[0].value, float)

    def test_identifier_starting_with_e_after_number(self):
        # "1e" followed by non-digit: `1` then identifier `e`.
        tokens = tokenize("1e")
        assert tokens[0].value == 1
        assert tokens[1].value == "e"


class TestStrings:
    def test_simple(self):
        assert tokenize("'hello'")[0].value == "hello"

    def test_quote_escaping(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_empty(self):
        assert tokenize("''")[0].value == ""

    def test_unterminated(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_case_preserved(self):
        assert tokenize("'MiXeD'")[0].value == "MiXeD"


class TestBlobs:
    def test_hex_blob(self):
        assert tokenize("X'0aFF'")[0].value == b"\x0a\xff"

    def test_lower_x(self):
        assert tokenize("x'00'")[0].value == b"\x00"

    def test_bad_hex(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("X'zz'")

    def test_unterminated(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("X'00")


class TestCommentsAndQuoting:
    def test_line_comment(self):
        assert kinds("select -- everything here\n 1") == [
            (TokenType.KEYWORD, "select"), (TokenType.NUMBER, 1)]

    def test_block_comment(self):
        assert kinds("select /* x */ 1") == [
            (TokenType.KEYWORD, "select"), (TokenType.NUMBER, 1)]

    def test_unterminated_block_comment(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("select /* oops")

    def test_double_quoted_identifier(self):
        tokens = tokenize('"From"')
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "from"

    def test_matches_helper(self):
        token = Token(TokenType.KEYWORD, "select", 0)
        assert token.matches(TokenType.KEYWORD)
        assert token.matches(TokenType.KEYWORD, "select")
        assert not token.matches(TokenType.KEYWORD, "from")
        assert not token.matches(TokenType.IDENTIFIER)
