"""Unit tests for the interprocedural exception-flow analysis (GSN6xx):
raised-set propagation to a fixed point, handler matching against the
exception hierarchy, resource-lifecycle tracking, and the thread rules."""

import textwrap

from repro.analysis.flowgraph import FlowAnalysis, analyze_flow
from repro.analysis.callgraph import ProgramIndex


def write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return str(path)


def run(tmp_path, source, name="mod.py"):
    path = write(tmp_path, name, source)
    return analyze_flow([path])


def rules(report):
    return [f.rule_id for f in report.findings]


class TestExceptionPropagation:
    def summaries(self, tmp_path, source):
        __, flow = run(tmp_path, source)
        return flow.summaries

    def test_direct_raise(self, tmp_path):
        summaries = self.summaries(tmp_path, """\
            def boom():
                raise ValueError("no")
            """)
        assert summaries["mod.boom"] == frozenset({"ValueError"})

    def test_propagates_through_calls(self, tmp_path):
        summaries = self.summaries(tmp_path, """\
            def inner():
                raise KeyError("k")

            def middle():
                return inner()

            def outer():
                return middle()
            """)
        assert "KeyError" in summaries["mod.outer"]

    def test_fixed_point_over_recursion(self, tmp_path):
        summaries = self.summaries(tmp_path, """\
            def ping(n):
                if n < 0:
                    raise ValueError("negative")
                return pong(n - 1)

            def pong(n):
                return ping(n)
            """)
        assert "ValueError" in summaries["mod.ping"]
        assert "ValueError" in summaries["mod.pong"]

    def test_exact_handler_catches(self, tmp_path):
        summaries = self.summaries(tmp_path, """\
            def safe():
                try:
                    raise KeyError("k")
                except KeyError:
                    raise ValueError("translated")
            """)
        assert summaries["mod.safe"] == frozenset({"ValueError"})

    def test_parent_handler_catches_subclass(self, tmp_path):
        summaries = self.summaries(tmp_path, """\
            import logging

            def safe():
                try:
                    raise KeyError("k")
                except LookupError:
                    logging.error("lookup failed")
            """)
        assert summaries["mod.safe"] == frozenset()

    def test_narrow_handler_lets_siblings_escape(self, tmp_path):
        summaries = self.summaries(tmp_path, """\
            def narrow():
                try:
                    do()
                except KeyError:
                    raise RuntimeError("key")

            def do():
                raise ValueError("v")
            """)
        # ValueError is not a KeyError: the handler does not catch it,
        # so it escapes. (The handler body's own raise is conservatively
        # kept too — this is a may-escape analysis.)
        assert "ValueError" in summaries["mod.narrow"]

    def test_bare_raise_rethrows_caught_set(self, tmp_path):
        summaries = self.summaries(tmp_path, """\
            import logging

            def rethrow():
                try:
                    raise OSError("io")
                except Exception:
                    logging.exception("failed")
                    raise
            """)
        assert "OSError" in summaries["mod.rethrow"]

    def test_raise_from_names_new_type(self, tmp_path):
        summaries = self.summaries(tmp_path, """\
            def translate():
                try:
                    raise KeyError("k")
                except KeyError as exc:
                    raise RuntimeError("wrapped") from exc
            """)
        assert summaries["mod.translate"] == frozenset({"RuntimeError"})

    def test_raise_bound_var_rethrows_caught_type(self, tmp_path):
        summaries = self.summaries(tmp_path, """\
            import logging

            def relay():
                try:
                    raise OSError("io")
                except OSError as exc:
                    logging.error("io trouble")
                    raise exc
            """)
        assert "OSError" in summaries["mod.relay"]

    def test_finally_return_swallows(self, tmp_path):
        summaries = self.summaries(tmp_path, """\
            def swallowed():
                try:
                    raise ValueError("gone")
                finally:
                    return 0
            """)
        assert summaries["mod.swallowed"] == frozenset()

    def test_finally_without_return_keeps_raising(self, tmp_path):
        summaries = self.summaries(tmp_path, """\
            def cleanup():
                try:
                    raise ValueError("kept")
                finally:
                    print("bye")
            """)
        assert "ValueError" in summaries["mod.cleanup"]

    def test_finally_break_inside_nested_loop_does_not_swallow(
            self, tmp_path):
        summaries = self.summaries(tmp_path, """\
            def looped():
                try:
                    raise ValueError("kept")
                finally:
                    for item in (1, 2):
                        break
            """)
        # The break terminates the inner for loop, not the finally.
        assert "ValueError" in summaries["mod.looped"]

    def test_assert_adds_assertion_error(self, tmp_path):
        summaries = self.summaries(tmp_path, """\
            def checked(x):
                assert x > 0, "positive only"
                return x
            """)
        assert "AssertionError" in summaries["mod.checked"]

    def test_handler_body_escapes_propagate(self, tmp_path):
        summaries = self.summaries(tmp_path, """\
            def handler_raises():
                try:
                    raise KeyError("k")
                except KeyError:
                    cleanup()

            def cleanup():
                raise OSError("cleanup failed")
            """)
        assert "OSError" in summaries["mod.handler_raises"]

    def test_custom_hierarchy_from_index(self, tmp_path):
        summaries = self.summaries(tmp_path, """\
            import logging

            class AppError(Exception):
                pass

            class ParseError(AppError):
                pass

            def safe():
                try:
                    raise ParseError("bad")
                except AppError:
                    logging.error("app-level failure")
            """)
        assert summaries["mod.safe"] == frozenset()


class TestSwallowRule:
    def test_gsn601_bare_pass(self, tmp_path):
        report, __ = run(tmp_path, """\
            def eat():
                try:
                    work()
                except Exception:
                    pass
            """)
        assert "GSN601" in rules(report)

    def test_logging_is_a_sink(self, tmp_path):
        report, __ = run(tmp_path, """\
            import logging

            def noted():
                try:
                    work()
                except Exception:
                    logging.exception("work failed")
            """)
        assert "GSN601" not in rules(report)

    def test_counter_increment_is_a_sink(self, tmp_path):
        report, __ = run(tmp_path, """\
            def counted(self):
                try:
                    work()
                except Exception:
                    self.errors_total += 1
            """)
        assert "GSN601" not in rules(report)

    def test_reraise_is_a_sink(self, tmp_path):
        report, __ = run(tmp_path, """\
            def relays():
                try:
                    work()
                except Exception as exc:
                    raise RuntimeError("wrapped") from exc
            """)
        assert "GSN601" not in rules(report)

    def test_error_as_value_is_a_sink(self, tmp_path):
        report, __ = run(tmp_path, """\
            def returns_it():
                try:
                    return work()
                except Exception as exc:
                    return exc
            """)
        assert "GSN601" not in rules(report)

    def test_narrow_handler_not_flagged(self, tmp_path):
        report, __ = run(tmp_path, """\
            def narrow():
                try:
                    return work()
                except KeyError:
                    pass
            """)
        assert "GSN601" not in rules(report)

    def test_suppression_comment(self, tmp_path):
        report, flow = run(tmp_path, """\
            def eat():
                try:
                    work()
                except Exception:  # gsn-lint: disable=GSN601
                    pass
            """)
        assert "GSN601" not in rules(report)
        assert flow.suppressed_count == 1


class TestResourceRule:
    def test_gsn603_leaked_cursor(self, tmp_path):
        report, __ = run(tmp_path, """\
            def leak(conn):
                cur = conn.cursor()
                return cur.fetchall()[0]
            """)
        assert "GSN603" in rules(report)

    def test_with_block_is_managed(self, tmp_path):
        report, __ = run(tmp_path, """\
            def managed(conn):
                cur = conn.cursor()
                with cur:
                    return cur.fetchall()
            """)
        assert "GSN603" not in rules(report)

    def test_finally_close_is_managed(self, tmp_path):
        report, __ = run(tmp_path, """\
            def closed(conn):
                cur = conn.cursor()
                try:
                    return cur.fetchall()
                finally:
                    cur.close()
            """)
        assert "GSN603" not in rules(report)

    def test_returned_resource_is_handoff(self, tmp_path):
        report, __ = run(tmp_path, """\
            def make(conn):
                cur = conn.cursor()
                return cur
            """)
        assert "GSN603" not in rules(report)

    def test_stored_resource_is_handoff(self, tmp_path):
        report, __ = run(tmp_path, """\
            def attach(self, conn):
                cur = conn.cursor()
                self.cur = cur
            """)
        assert "GSN603" not in rules(report)


class TestThreadRules:
    def test_gsn602_escaping_entry(self, tmp_path):
        report, __ = run(tmp_path, """\
            import threading

            def worker():
                raise ValueError("dead")

            def start():
                threading.Thread(target=worker, daemon=True).start()
            """)
        findings = [f for f in report.findings if f.rule_id == "GSN602"]
        assert findings and "ValueError" in findings[0].message

    def test_supervised_entry_is_clean(self, tmp_path):
        report, __ = run(tmp_path, """\
            import logging
            import threading

            def worker():
                try:
                    risky()
                except Exception:
                    logging.exception("worker failed")

            def risky():
                raise ValueError("v")

            def start():
                threading.Thread(target=worker, daemon=True).start()
            """)
        assert "GSN602" not in rules(report)

    def test_system_exit_is_allowed(self, tmp_path):
        report, __ = run(tmp_path, """\
            import threading

            def worker():
                raise SystemExit(0)

            def start():
                threading.Thread(target=worker, daemon=True).start()
            """)
        assert "GSN602" not in rules(report)

    def test_thread_subclass_run_is_an_entry(self, tmp_path):
        report, __ = run(tmp_path, """\
            import threading

            class Worker(threading.Thread):
                def run(self):
                    raise OSError("boom")
            """)
        assert "GSN602" in rules(report)

    def test_gsn605_no_join_path(self, tmp_path):
        report, __ = run(tmp_path, """\
            import threading

            def idle():
                return None

            def start():
                worker = threading.Thread(target=idle)
                worker.start()
            """)
        assert "GSN605" in rules(report)

    def test_join_path_satisfies_gsn605(self, tmp_path):
        report, __ = run(tmp_path, """\
            import threading

            def idle():
                return None

            def run_once():
                worker = threading.Thread(target=idle)
                worker.start()
                worker.join(timeout=5.0)
            """)
        assert "GSN605" not in rules(report)

    def test_daemon_thread_satisfies_gsn605(self, tmp_path):
        report, __ = run(tmp_path, """\
            import threading

            def idle():
                return None

            def start():
                worker = threading.Thread(target=idle, daemon=True)
                worker.start()
            """)
        assert "GSN605" not in rules(report)

    def test_gsn604_unbounded_get_in_worker(self, tmp_path):
        report, __ = run(tmp_path, """\
            import threading

            def worker(work_queue):
                while True:
                    work_queue.get()

            def start(work_queue):
                threading.Thread(target=worker, args=(work_queue,),
                                 daemon=True).start()
            """)
        assert "GSN604" in rules(report)

    def test_bounded_get_is_clean(self, tmp_path):
        report, __ = run(tmp_path, """\
            import threading

            def worker(work_queue):
                while True:
                    work_queue.get(timeout=0.2)

            def start(work_queue):
                threading.Thread(target=worker, args=(work_queue,),
                                 daemon=True).start()
            """)
        assert "GSN604" not in rules(report)

    def test_gsn604_reaches_through_calls(self, tmp_path):
        report, __ = run(tmp_path, """\
            import threading

            def worker(work_queue):
                while True:
                    fetch(work_queue)

            def fetch(work_queue):
                return work_queue.get()

            def start(work_queue):
                threading.Thread(target=worker, args=(work_queue,),
                                 daemon=True).start()
            """)
        findings = [f for f in report.findings if f.rule_id == "GSN604"]
        assert findings and "mod.worker" in findings[0].message


class TestReportShape:
    def test_findings_carry_path_line_and_suppression(self, tmp_path):
        report, __ = run(tmp_path, """\
            def eat():
                try:
                    work()
                except Exception:
                    pass
            """)
        finding = report.findings[0]
        assert finding.path.endswith("mod.py")
        assert finding.line == 4
        assert finding.suppression == "# gsn-lint: disable=GSN601"
        payload = report.as_dicts()[0]
        for key in ("rule", "severity", "message", "path", "line",
                    "suppression"):
            assert key in payload

    def test_shared_index_is_reused(self, tmp_path):
        path = write(tmp_path, "mod.py", """\
            def boom():
                raise ValueError("no")
            """)
        index = ProgramIndex.build([path])
        __, flow = analyze_flow([path], index=index)
        assert flow.index is index
        assert isinstance(flow, FlowAnalysis)
