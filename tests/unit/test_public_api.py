"""Public API surface regression tests.

Downstream code imports from ``repro`` directly; this pins the exported
surface so refactors cannot silently drop it.
"""

import inspect

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_core_entry_points(self):
        assert inspect.isclass(repro.GSNContainer)
        assert inspect.isclass(repro.PeerNetwork)
        assert inspect.isclass(repro.GSNClient)
        assert inspect.isclass(repro.WebInterface)
        assert callable(repro.descriptor_from_xml)
        assert callable(repro.descriptor_to_xml)
        assert callable(repro.validate_descriptor)
        assert callable(repro.default_registry)

    def test_version_is_semver(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_exception_root(self):
        from repro import exceptions
        for name in dir(exceptions):
            value = getattr(exceptions, name)
            if inspect.isclass(value) and issubclass(value, Exception) \
                    and value is not repro.GSNError:
                assert issubclass(value, repro.GSNError), (
                    f"{name} must derive from GSNError"
                )

    def test_container_signature_stability(self):
        parameters = inspect.signature(repro.GSNContainer).parameters
        for expected in ("name", "simulated", "storage_path", "registry",
                         "network", "access_enabled", "synchronous",
                         "seal", "seed", "clock", "scheduler"):
            assert expected in parameters, expected

    def test_subsystem_imports(self):
        # Every subpackage must import cleanly on its own.
        import repro.access
        import repro.descriptors
        import repro.experiments
        import repro.gsntime
        import repro.interfaces
        import repro.metrics
        import repro.network
        import repro.notifications
        import repro.query
        import repro.simulation
        import repro.sqlengine
        import repro.storage
        import repro.streams
        import repro.tools
        import repro.vsensor
        import repro.wrappers

    def test_public_callables_documented(self):
        """Every public class/function exported at top level has a
        docstring — documentation is a deliverable, not an accident."""
        for name in repro.__all__:
            value = getattr(repro, name)
            if inspect.isclass(value) or inspect.isfunction(value):
                assert (value.__doc__ or "").strip(), (
                    f"{name} lacks a docstring"
                )
