"""Unit tests for the plan cache, query processor, and repository."""

import pytest

from repro.exceptions import SQLSyntaxError, ValidationError
from repro.gsntime.clock import VirtualClock
from repro.notifications.manager import NotificationManager
from repro.query.plan_cache import PlanCache
from repro.query.processor import QueryProcessor
from repro.query.repository import QueryRepository
from repro.sqlengine.executor import Catalog
from repro.sqlengine.relation import Relation


def make_catalog():
    return Catalog({
        "vs_temp": Relation(["temperature", "timed"],
                            [(20, 1), (25, 2), (30, 3)]),
        "vs_light": Relation(["light", "timed"], [(500, 1)]),
    })


@pytest.fixture
def processor():
    return QueryProcessor(make_catalog)


@pytest.fixture
def repo(processor):
    return QueryRepository(processor, NotificationManager(),
                           VirtualClock(5_000))


class TestPlanCache:
    def test_hit_after_miss(self):
        cache = PlanCache()
        cache.compile("select 1")
        cache.compile("select 1")
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_ratio == 0.5

    def test_same_plan_object_returned(self):
        cache = PlanCache()
        first = cache.compile("select 1")
        second = cache.compile("select 1")
        assert first[1] is second[1]

    def test_whitespace_normalized(self):
        cache = PlanCache()
        cache.compile("select 1")
        cache.compile("  select 1  ")
        assert cache.hits == 1

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.compile("select 1")
        cache.compile("select 2")
        cache.compile("select 1")  # refresh 1
        cache.compile("select 3")  # evicts 2
        cache.compile("select 2")
        assert cache.misses == 4

    def test_zero_capacity_disables(self):
        cache = PlanCache(capacity=0)
        cache.compile("select 1")
        cache.compile("select 1")
        assert cache.hits == 0
        assert len(cache) == 0

    def test_invalidate(self):
        cache = PlanCache()
        cache.compile("select 1")
        cache.invalidate("select 1")
        cache.compile("select 1")
        assert cache.misses == 2
        cache.invalidate()
        assert len(cache) == 0

    def test_syntax_errors_propagate(self):
        with pytest.raises(SQLSyntaxError):
            PlanCache().compile("not sql")


class TestQueryProcessor:
    def test_execute(self, processor):
        result = processor.execute("select count(*) as n from vs_temp")
        assert result.to_dicts() == [{"n": 3}]
        assert processor.queries_executed == 1

    def test_catalog_override(self, processor):
        pinned = Catalog({"vs_temp": Relation(["temperature", "timed"],
                                              [(99, 9)])})
        result = processor.execute("select max(temperature) m from vs_temp",
                                   pinned)
        assert result.to_dicts() == [{"m": 99}]

    def test_latency_tracked(self, processor):
        processor.execute("select 1")
        assert processor.latency.count == 1

    def test_status(self, processor):
        processor.execute("select 1")
        processor.execute("select 1")
        status = processor.status()
        assert status["queries_executed"] == 2
        assert status["plan_cache"]["hits"] == 1


class TestQueryRepository:
    def test_register_and_trigger(self, repo):
        sub = repo.register("select max(temperature) m from vs_temp")
        assert sub.tables == {"vs_temp"}
        fired = repo.data_arrived("vs_temp")
        assert fired == 1
        assert sub.notifications_sent == 1
        assert sub.last_result.to_dicts() == [{"m": 30}]

    def test_only_affected_subscriptions_fire(self, repo):
        temp_sub = repo.register("select * from vs_temp")
        light_sub = repo.register("select * from vs_light")
        repo.data_arrived("vs_temp")
        assert temp_sub.notifications_sent == 1
        assert light_sub.notifications_sent == 0

    def test_multi_table_subscription(self, repo):
        sub = repo.register(
            "select * from vs_temp, vs_light"
        )
        repo.data_arrived("vs_light")
        repo.data_arrived("vs_temp")
        assert sub.notifications_sent == 2

    def test_unregister(self, repo):
        sub = repo.register("select * from vs_temp")
        repo.unregister(sub.id)
        assert repo.data_arrived("vs_temp") == 0
        with pytest.raises(ValidationError):
            repo.unregister(sub.id)

    def test_invalid_sql_rejected_eagerly(self, repo):
        with pytest.raises(ValidationError):
            repo.register("selectt wat")

    def test_unknown_channel_rejected(self, repo):
        with pytest.raises(ValidationError):
            repo.register("select 1", channel="carrier-pigeon")

    def test_notification_payload_via_queue(self, repo):
        repo.register("select avg(temperature) a from vs_temp",
                      name="avg-watch", client="alice")
        repo.data_arrived("vs_temp")
        queue = repo.notifications.channel("queue")
        payload = queue.drain()[0]
        assert payload["subscription"] == "avg-watch"
        assert payload["client"] == "alice"
        assert payload["rows"] == [{"a": 25.0}]

    def test_data_arrived_uses_one_snapshot(self, repo):
        repo.register("select count(*) n from vs_temp")
        repo.register("select max(temperature) m from vs_temp")
        pinned = Catalog({"vs_temp": Relation(["temperature", "timed"],
                                              [(1, 1)])})
        assert repo.data_arrived("vs_temp", pinned) == 2
        results = [s.last_result.to_dicts() for s in repo.subscriptions()]
        assert results == [[{"n": 1}], [{"m": 1}]]

    def test_status(self, repo):
        repo.register("select * from vs_temp")
        status = repo.status()
        assert status["registered"] == 1
        assert status["by_table"] == {"vs_temp": 1}
