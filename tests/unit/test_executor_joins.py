"""Unit tests for join execution (hash and nested-loop) and the planner's
join-strategy choice."""

import pytest

from repro.exceptions import SQLPlanError
from repro.sqlengine.executor import Catalog, execute
from repro.sqlengine.parser import parse_select
from repro.sqlengine.planner import (
    HashJoinPlan, NestedLoopJoinPlan, plan_select,
)
from repro.sqlengine.relation import Relation


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register("l", Relation(
        ["id", "grp", "v"],
        [(1, "a", 10), (2, "b", 20), (3, "a", 30), (4, None, 40)],
    ))
    cat.register("r", Relation(
        ["grp", "label"],
        [("a", "alpha"), ("b", "beta"), ("c", "gamma")],
    ))
    return cat


def rows(catalog, sql):
    return execute(sql, catalog).to_dicts()


class TestPlannerChoice:
    def test_equi_join_becomes_hash(self):
        plan = plan_select(parse_select(
            "select * from l join r on l.grp = r.grp"))
        assert isinstance(plan.source, HashJoinPlan)

    def test_reversed_sides_still_hash(self):
        plan = plan_select(parse_select(
            "select * from l join r on r.grp = l.grp"))
        assert isinstance(plan.source, HashJoinPlan)

    def test_non_equi_falls_back_to_nested_loop(self):
        plan = plan_select(parse_select(
            "select * from l join r on l.v > 15"))
        assert isinstance(plan.source, NestedLoopJoinPlan)

    def test_mixed_condition_hash_with_residual(self):
        plan = plan_select(parse_select(
            "select * from l join r on l.grp = r.grp and l.v > 15"))
        assert isinstance(plan.source, HashJoinPlan)
        assert plan.source.residual is not None

    def test_unqualified_columns_stay_residual(self):
        # Ambiguous columns cannot be assigned to a side at plan time.
        plan = plan_select(parse_select(
            "select * from l join r on grp = label"))
        assert isinstance(plan.source, NestedLoopJoinPlan)

    def test_duplicate_alias_rejected(self):
        with pytest.raises(SQLPlanError):
            plan_select(parse_select("select * from l, l"))

    def test_cross_join_plan(self):
        plan = plan_select(parse_select("select * from l cross join r"))
        assert isinstance(plan.source, NestedLoopJoinPlan)
        assert plan.source.kind == "cross"


class TestInnerJoin:
    def test_matches(self, catalog):
        result = rows(catalog,
                      "select l.id, r.label from l join r on l.grp = r.grp "
                      "order by l.id")
        assert result == [
            {"id": 1, "label": "alpha"},
            {"id": 2, "label": "beta"},
            {"id": 3, "label": "alpha"},
        ]

    def test_null_keys_never_join(self, catalog):
        result = rows(catalog,
                      "select l.id from l join r on l.grp = r.grp")
        assert 4 not in [r["id"] for r in result]

    def test_residual_filters(self, catalog):
        result = rows(
            catalog,
            "select l.id from l join r on l.grp = r.grp and l.v > 15",
        )
        assert [r["id"] for r in result] == [2, 3]

    def test_comma_join_with_where(self, catalog):
        result = rows(
            catalog,
            "select l.id from l, r where l.grp = r.grp order by l.id",
        )
        assert [r["id"] for r in result] == [1, 2, 3]

    def test_three_way(self, catalog):
        catalog.register("x", Relation(["label", "rank"],
                                       [("alpha", 1), ("beta", 2)]))
        result = rows(
            catalog,
            "select l.id, x.rank from l "
            "join r on l.grp = r.grp join x on r.label = x.label "
            "order by l.id",
        )
        assert result == [{"id": 1, "rank": 1}, {"id": 2, "rank": 2},
                          {"id": 3, "rank": 1}]


class TestLeftJoin:
    def test_unmatched_left_rows_padded(self, catalog):
        result = rows(
            catalog,
            "select l.id, r.label from l left join r on l.grp = r.grp "
            "order by l.id",
        )
        assert result[-1] == {"id": 4, "label": None}
        assert len(result) == 4

    def test_left_join_non_equi(self, catalog):
        result = rows(
            catalog,
            "select l.id, r.label from l left join r "
            "on l.grp = r.grp and r.label = 'alpha' order by l.id",
        )
        labels = {r["id"]: r["label"] for r in result}
        assert labels == {1: "alpha", 2: None, 3: "alpha", 4: None}

    def test_left_join_empty_right(self, catalog):
        catalog.register("empty", Relation(["grp", "z"]))
        result = rows(
            catalog,
            "select l.id, empty.z from l left join empty "
            "on l.grp = empty.grp order by l.id",
        )
        assert all(r["z"] is None for r in result)
        assert len(result) == 4


class TestCrossJoin:
    def test_cartesian(self, catalog):
        assert len(rows(catalog, "select * from l cross join r")) == 12

    def test_comma_cartesian(self, catalog):
        assert len(rows(catalog, "select * from l, r")) == 12


class TestQualifiedAccess:
    def test_ambiguous_unqualified_column(self, catalog):
        with pytest.raises(Exception, match="ambiguous"):
            execute("select grp from l join r on l.grp = r.grp", catalog)

    def test_qualified_star(self, catalog):
        result = execute(
            "select r.* from l join r on l.grp = r.grp", catalog
        )
        assert result.columns == ("grp", "label")

    def test_self_join_with_aliases(self, catalog):
        result = rows(
            catalog,
            "select a.id as low, b.id as high from l a join l b "
            "on a.grp = b.grp where a.id < b.id",
        )
        assert result == [{"low": 1, "high": 3}]


class TestDerivedTables:
    def test_subquery_in_from(self, catalog):
        result = rows(
            catalog,
            "select s.grp, s.total from "
            "(select grp, sum(v) as total from l "
            " where grp is not null group by grp) s order by s.grp",
        )
        assert result == [{"grp": "a", "total": 40},
                          {"grp": "b", "total": 20}]

    def test_join_with_derived(self, catalog):
        result = rows(
            catalog,
            "select r.label, s.total from r join "
            "(select grp, sum(v) as total from l group by grp) s "
            "on r.grp = s.grp order by r.label",
        )
        assert [r["label"] for r in result] == ["alpha", "beta"]
