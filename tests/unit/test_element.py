"""Unit tests for stream elements."""

import pytest

from repro.datatypes import DataType
from repro.exceptions import SchemaError
from repro.streams.element import StreamElement
from repro.streams.schema import StreamSchema


class TestConstruction:
    def test_values_lowercased(self):
        element = StreamElement({"Temp": 5})
        assert element["temp"] == 5
        assert element["TEMP"] == 5

    def test_timed_key_stripped_from_values(self):
        element = StreamElement({"a": 1, "timed": 99}, timed=50)
        assert element.timed == 50
        assert "a" in element.values and "timed" not in element.values

    def test_negative_timestamp_rejected(self):
        with pytest.raises(SchemaError):
            StreamElement({"a": 1}, timed=-1)

    def test_unstamped_by_default(self):
        assert StreamElement({"a": 1}).timed is None


class TestAccess:
    def test_getitem_timed(self):
        assert StreamElement({"a": 1}, timed=7)["timed"] == 7

    def test_missing_field_raises(self):
        with pytest.raises(SchemaError):
            StreamElement({"a": 1})["b"]

    def test_get_with_default(self):
        element = StreamElement({"a": None})
        assert element.get("a", "dft") is None
        assert element.get("b", "dft") == "dft"
        assert element.get("timed", -1) == -1

    def test_contains_len_iter(self):
        element = StreamElement({"a": 1, "b": 2})
        assert "a" in element and "timed" in element and "z" not in element
        assert len(element) == 2
        assert sorted(element) == ["a", "b"]


class TestDerivation:
    def test_with_timestamp_copies(self):
        original = StreamElement({"a": 1})
        stamped = original.with_timestamp(100)
        assert original.timed is None
        assert stamped.timed == 100
        assert stamped["a"] == 1

    def test_with_arrival(self):
        element = StreamElement({"a": 1}, timed=10).with_arrival(25)
        assert element.arrival_time == 25
        assert element.timed == 10

    def test_with_values_merges(self):
        element = StreamElement({"a": 1, "b": 2}, timed=5)
        updated = element.with_values(B=20, c=3)
        assert updated["b"] == 20
        assert updated["c"] == 3
        assert updated["a"] == 1
        assert updated.timed == 5

    def test_with_producer(self):
        assert StreamElement({"a": 1}).with_producer("w").producer == "w"


class TestConversion:
    def test_as_row_includes_timed(self):
        element = StreamElement({"a": 1}, timed=9)
        assert element.as_row() == {"a": 1, "timed": 9}

    def test_as_row_with_schema_validates(self):
        schema = StreamSchema.build(a=DataType.INTEGER, b=DataType.VARCHAR)
        element = StreamElement({"a": 1}, timed=9)
        assert element.as_row(schema) == {"a": 1, "b": None, "timed": 9}

    def test_as_row_schema_mismatch_raises(self):
        schema = StreamSchema.build(a=DataType.INTEGER)
        with pytest.raises(SchemaError):
            StreamElement({"zz": 1}).as_row(schema)

    @pytest.mark.parametrize("values,size", [
        ({"a": 42}, 8),
        ({"a": 1.5}, 8),
        ({"a": True}, 1),
        ({"a": "abcd"}, 4),
        ({"a": b"12345"}, 5),
        ({"a": None}, 0),
        ({"a": 42, "b": b"xyz"}, 11),
    ])
    def test_payload_size(self, values, size):
        assert StreamElement(values).payload_size() == size


class TestEquality:
    def test_equal_same_payload_and_time(self):
        assert StreamElement({"a": 1}, timed=5) == StreamElement({"a": 1},
                                                                 timed=5)

    def test_unequal_different_time(self):
        assert StreamElement({"a": 1}, timed=5) != StreamElement({"a": 1},
                                                                 timed=6)

    def test_hashable(self):
        elements = {StreamElement({"a": 1}, timed=5),
                    StreamElement({"a": 1}, timed=5)}
        assert len(elements) == 1

    def test_repr_truncates_blobs(self):
        element = StreamElement({"img": b"\x00" * 1000})
        assert "<1000 bytes>" in repr(element)
