"""Unit tests for samplers, rate bounders, disconnect buffers, and the
stream quality monitor."""

import pytest

from repro.exceptions import StreamError
from repro.streams.buffer import DisconnectBuffer
from repro.streams.element import StreamElement
from repro.streams.quality import StreamQualityMonitor
from repro.streams.sampling import (
    FilterChain, ProbabilisticSampler, RateBounder, SystematicSampler,
)


def element(timed=None, arrival=None, **values):
    e = StreamElement(values or {"v": 1}, timed=timed)
    if arrival is not None:
        e = e.with_arrival(arrival)
    return e


class TestProbabilisticSampler:
    def test_rate_one_admits_all(self):
        sampler = ProbabilisticSampler(1.0)
        assert all(sampler.admit(element(i)) for i in range(100))

    def test_rate_zero_admits_none(self):
        sampler = ProbabilisticSampler(0.0)
        assert not any(sampler.admit(element(i)) for i in range(100))

    def test_rate_half_is_roughly_half(self):
        sampler = ProbabilisticSampler(0.5, seed=42)
        admitted = sum(sampler.admit(element(i)) for i in range(2_000))
        assert 850 < admitted < 1_150

    def test_seeded_reproducible(self):
        a = ProbabilisticSampler(0.3, seed=7)
        b = ProbabilisticSampler(0.3, seed=7)
        pattern_a = [a.admit(element(i)) for i in range(50)]
        pattern_b = [b.admit(element(i)) for i in range(50)]
        assert pattern_a == pattern_b

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_bad_rate(self, bad):
        with pytest.raises(StreamError):
            ProbabilisticSampler(bad)


class TestSystematicSampler:
    def test_every_third(self):
        sampler = SystematicSampler(3)
        results = [sampler.admit(element(i)) for i in range(9)]
        assert results == [False, False, True] * 3

    def test_every_one_admits_all(self):
        sampler = SystematicSampler(1)
        assert all(sampler.admit(element(i)) for i in range(5))

    def test_reset(self):
        sampler = SystematicSampler(2)
        sampler.admit(element(0))
        sampler.reset()
        assert sampler.admit(element(1)) is False

    def test_bad_every(self):
        with pytest.raises(StreamError):
            SystematicSampler(0)


class TestRateBounder:
    def test_enforces_spacing(self):
        bounder = RateBounder(10)  # max 10/s => 100 ms spacing
        assert bounder.admit(element(1_000))
        assert not bounder.admit(element(1_050))
        assert bounder.admit(element(1_100))
        assert bounder.dropped == 1

    def test_first_element_always_admitted(self):
        assert RateBounder(1).admit(element(0))

    def test_requires_timestamps(self):
        with pytest.raises(StreamError):
            RateBounder(1).admit(StreamElement({"v": 1}))

    def test_reset(self):
        bounder = RateBounder(1)
        bounder.admit(element(1_000))
        bounder.reset()
        assert bounder.admit(element(1_001))
        assert bounder.dropped == 0

    def test_bad_rate(self):
        with pytest.raises(StreamError):
            RateBounder(0)


class TestFilterChain:
    def test_all_must_admit(self):
        chain = FilterChain(SystematicSampler(1), RateBounder(10))
        assert chain.admit(element(1_000))
        assert not chain.admit(element(1_010))

    def test_short_circuits(self):
        bounder = RateBounder(1000)
        chain = FilterChain(SystematicSampler(2), bounder)
        chain.admit(element(1_000))  # rejected by sampler
        assert bounder.dropped == 0  # bounder never saw it


class TestDisconnectBuffer:
    def test_connected_passthrough(self):
        buffer = DisconnectBuffer(5)
        assert buffer.offer(element(1)) is True
        assert buffer.pending == 0

    def test_buffers_while_disconnected(self):
        buffer = DisconnectBuffer(5)
        buffer.disconnect()
        for i in range(3):
            assert buffer.offer(element(i)) is False
        assert buffer.pending == 3

    def test_reconnect_replays_in_order(self):
        buffer = DisconnectBuffer(5)
        buffer.disconnect()
        for i in range(3):
            buffer.offer(element(i))
        replay = buffer.reconnect()
        assert [e.timed for e in replay] == [0, 1, 2]
        assert buffer.connected
        assert buffer.pending == 0

    def test_overflow_drops_oldest(self):
        buffer = DisconnectBuffer(2)
        buffer.disconnect()
        for i in range(4):
            buffer.offer(element(i))
        replay = buffer.reconnect()
        assert [e.timed for e in replay] == [2, 3]
        assert buffer.total_dropped == 2

    def test_zero_capacity_drops_everything(self):
        buffer = DisconnectBuffer(0)
        buffer.disconnect()
        buffer.offer(element(1))
        assert buffer.reconnect() == []
        assert buffer.total_dropped == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(StreamError):
            DisconnectBuffer(-1)


class TestQualityMonitor:
    def test_counts_elements(self):
        monitor = StreamQualityMonitor()
        monitor.observe(element(timed=1, arrival=1))
        monitor.observe(element(timed=2, arrival=2))
        assert monitor.report.elements_seen == 2

    def test_missing_values_tracked_per_field(self):
        monitor = StreamQualityMonitor()
        monitor.observe(StreamElement({"a": None, "b": 1}, timed=1))
        monitor.observe(StreamElement({"a": None, "b": None}, timed=2))
        report = monitor.report
        assert report.missing_value_count == 3
        assert report.missing_by_field == {"a": 2, "b": 1}
        assert report.missing_value_ratio == 1.5  # per element average > 1

    def test_late_detection(self):
        monitor = StreamQualityMonitor(late_threshold_ms=100)
        monitor.observe(element(timed=1_000, arrival=1_050))   # on time
        monitor.observe(element(timed=1_000, arrival=1_500))   # late
        assert monitor.report.late_count == 1
        assert monitor.report.max_delay_ms == 500

    def test_out_of_order_detection(self):
        monitor = StreamQualityMonitor()
        monitor.observe(element(timed=2_000, arrival=2_000))
        monitor.observe(element(timed=1_000, arrival=2_001))
        assert monitor.report.out_of_order_count == 1

    def test_interarrival_mean(self):
        monitor = StreamQualityMonitor()
        for arrival in (1_000, 1_100, 1_200):
            monitor.observe(element(timed=arrival, arrival=arrival))
        assert monitor.report.mean_interarrival_ms == 100.0

    def test_disconnect_recorded(self):
        monitor = StreamQualityMonitor()
        monitor.record_disconnect()
        assert monitor.report.disconnect_count == 1

    def test_healthy_verdict(self):
        monitor = StreamQualityMonitor(late_threshold_ms=10)
        assert monitor.healthy()  # vacuously healthy with no data
        monitor.observe(element(timed=1_000, arrival=2_000))
        monitor.observe(StreamElement({"v": None}, timed=3_000,
                                      ).with_arrival(4_000))
        assert not monitor.healthy(max_missing_ratio=0.4,
                                   max_late_ratio=0.4)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            StreamQualityMonitor(late_threshold_ms=-1)
