"""Unit tests for the P2P directory, message bus, and peering."""

import pytest

from repro.datatypes import DataType
from repro.exceptions import DiscoveryError, TransportError
from repro.gsntime.clock import VirtualClock
from repro.gsntime.scheduler import EventScheduler
from repro.network.directory import PeerDirectory
from repro.network.peer import (
    PeerNetwork, PeerNode, schema_from_wire, schema_to_wire,
)
from repro.network.transport import MessageBus
from repro.streams.element import StreamElement
from repro.streams.schema import StreamSchema


class TestDirectory:
    def test_publish_and_lookup(self):
        directory = PeerDirectory()
        directory.publish("node1", "s1", {"type": "temp", "loc": "bc"})
        matches = directory.lookup({"type": "temp"})
        assert len(matches) == 1
        assert matches[0].sensor == "s1"

    def test_all_predicates_must_match(self):
        directory = PeerDirectory()
        directory.publish("n", "s", {"type": "temp", "loc": "bc"})
        assert directory.lookup({"type": "temp", "loc": "bc"})
        assert not directory.lookup({"type": "temp", "loc": "xx"})
        assert not directory.lookup({"missing": "key"})

    def test_case_insensitive_matching(self):
        directory = PeerDirectory()
        directory.publish("N", "S", {"Type": "Temp"})
        assert directory.lookup({"type": "TEMP"})

    def test_empty_query_matches_all(self):
        directory = PeerDirectory()
        directory.publish("n", "a", {})
        directory.publish("n", "b", {})
        assert len(directory.lookup({})) == 2

    def test_republish_overwrites(self):
        directory = PeerDirectory()
        directory.publish("n", "s", {"v": "1"})
        directory.publish("n", "s", {"v": "2"})
        assert len(directory) == 1
        assert directory.lookup_one({"v": "2"}).sensor == "s"

    def test_unpublish(self):
        directory = PeerDirectory()
        directory.publish("n", "s", {})
        directory.unpublish("n", "s")
        assert len(directory) == 0

    def test_unpublish_container(self):
        directory = PeerDirectory()
        directory.publish("n1", "a", {})
        directory.publish("n1", "b", {})
        directory.publish("n2", "c", {})
        directory.unpublish_container("n1")
        assert [e.sensor for e in directory.entries()] == ["c"]

    def test_lookup_one_deterministic(self):
        directory = PeerDirectory()
        directory.publish("zeta", "s", {"t": "x"})
        directory.publish("alpha", "s", {"t": "x"})
        assert directory.lookup_one({"t": "x"}).container == "alpha"

    def test_lookup_one_raises_when_empty(self):
        with pytest.raises(DiscoveryError):
            PeerDirectory().lookup_one({"t": "x"})


class TestMessageBus:
    def test_route(self):
        bus = MessageBus()
        seen = []
        bus.register("dst", seen.append)
        assert bus.send("src", "dst", "ping", {"n": 1})
        assert seen[0].kind == "ping"
        assert seen[0].payload == {"n": 1}
        assert (bus.sent, bus.delivered) == (1, 1)

    def test_unknown_destination(self):
        bus = MessageBus()
        with pytest.raises(TransportError):
            bus.send("a", "ghost", "x")

    def test_duplicate_registration(self):
        bus = MessageBus()
        bus.register("a", lambda m: None)
        with pytest.raises(TransportError):
            bus.register("A", lambda m: None)

    def test_loss_injection(self):
        bus = MessageBus(loss_rate=0.5, seed=42)
        bus.register("dst", lambda m: None)
        outcomes = [bus.send("s", "dst", "x") for __ in range(200)]
        assert 60 < sum(outcomes) < 140
        assert bus.dropped == 200 - sum(outcomes)

    def test_latency_via_scheduler(self):
        clock = VirtualClock()
        scheduler = EventScheduler(clock)
        bus = MessageBus(scheduler=scheduler, latency_ms=50)
        seen = []
        bus.register("dst", seen.append)
        bus.send("s", "dst", "x")
        assert seen == []  # in flight
        scheduler.run_for(50)
        assert len(seen) == 1

    def test_bad_parameters(self):
        with pytest.raises(TransportError):
            MessageBus(latency_ms=-1)
        with pytest.raises(TransportError):
            MessageBus(loss_rate=1.0)


class FakeSensor:
    """Stands in for a VirtualSensor on the producer side."""

    def __init__(self):
        self.listeners = []
        self.schema = StreamSchema.build(v=DataType.INTEGER)

    def add_listener(self, listener):
        self.listeners.append(listener)

    def remove_listener(self, listener):
        self.listeners.remove(listener)

    def emit(self, value, timed):
        for listener in list(self.listeners):
            listener(StreamElement({"v": value}, timed=timed,
                                   producer="fake"))


class TestPeering:
    def make_nodes(self, seal="none"):
        network = PeerNetwork()
        sensor = FakeSensor()
        from repro.access.integrity import IntegrityService
        producer = PeerNode(network, "producer",
                            sensor_getter=lambda name: sensor,
                            integrity=IntegrityService("producer"),
                            seal=seal)
        consumer = PeerNode(network, "consumer",
                            sensor_getter=lambda name: None,
                            integrity=IntegrityService("consumer"))
        producer.publish("s", {"type": "x"}, sensor.schema)
        return network, sensor, producer, consumer

    def test_subscribe_streams_elements(self):
        __, sensor, __, consumer = self.make_nodes()
        seen = []
        schema, cancel = consumer.subscribe({"type": "x"}, seen.append)
        assert schema.field_names == ("v",)
        sensor.emit(42, timed=7)
        assert seen[0]["v"] == 42
        assert seen[0].timed == 7

    def test_cancel_stops_stream(self):
        __, sensor, producer, consumer = self.make_nodes()
        seen = []
        __, cancel = consumer.subscribe({"type": "x"}, seen.append)
        cancel()
        sensor.emit(1, timed=1)
        assert seen == []
        assert sensor.listeners == []  # producer side detached

    def test_unknown_predicates(self):
        __, __, __, consumer = self.make_nodes()
        with pytest.raises(DiscoveryError):
            consumer.subscribe({"type": "nothing"}, lambda e: None)

    def test_sealed_streaming(self):
        __, sensor, __, consumer = self.make_nodes(seal="encrypt")
        seen = []
        consumer.subscribe({"type": "x"}, seen.append)
        sensor.emit(9, timed=3)
        assert seen[0]["v"] == 9

    def test_seal_requires_integrity(self):
        network = PeerNetwork()
        with pytest.raises(TransportError):
            PeerNode(network, "x", sensor_getter=lambda n: None,
                     integrity=None, seal="sign")

    def test_leave_cleans_up(self):
        network, sensor, producer, consumer = self.make_nodes()
        consumer.subscribe({"type": "x"}, lambda e: None)
        producer.leave()
        assert len(network.directory) == 0
        assert sensor.listeners == []
        with pytest.raises(TransportError):
            network.bus.send("consumer", "producer", "subscribe", {})

    def test_schema_wire_roundtrip(self):
        schema = StreamSchema.build(a=DataType.INTEGER, b=DataType.BINARY)
        assert schema_from_wire(schema_to_wire(schema)) == schema

    def test_counters(self):
        __, sensor, producer, consumer = self.make_nodes()
        consumer.subscribe({"type": "x"}, lambda e: None)
        sensor.emit(1, timed=1)
        assert producer.elements_forwarded == 1
        assert consumer.elements_received == 1
