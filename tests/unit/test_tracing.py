"""Unit tests for pipeline spans, the trace ring buffer, and sampling."""

import threading

from repro.metrics.registry import MetricsRegistry
from repro.metrics.tracing import (
    PIPELINE_STEPS,
    PipelineTracer,
    Span,
    TraceBuffer,
    new_trace_id,
)


class TestSpan:
    def test_trace_ids_are_fresh_and_short(self):
        first, second = new_trace_id(), new_trace_id()
        assert first != second
        assert len(first) == 16
        assert all(c in "0123456789abcdef" for c in first)

    def test_children_nest_and_share_trace_id(self):
        root = Span("abc", "trigger", started_at=100)
        child = root.child("window_select", source="wind")
        grandchild = child.child("source_query")
        assert root.children == [child]
        assert child.children == [grandchild]
        assert grandchild.trace_id == "abc"
        assert child.attributes["source"] == "wind"

    def test_finish_fixes_duration_once(self):
        span = Span("abc", "trigger", started_at=0)
        span.finish()
        first = span.duration_ms
        assert first is not None and first >= 0.0
        span.finish()
        assert span.duration_ms == first

    def test_trace_ids_are_unique_across_threads(self):
        # Id generation is per-thread (no shared lock on the ingest hot
        # path); distinct threads must still never collide.
        per_thread = {}

        def mint(name):
            per_thread[name] = [new_trace_id() for __ in range(200)]

        threads = [threading.Thread(target=mint, args=(index,))
                   for index in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        all_ids = [tid for ids in per_thread.values() for tid in ids]
        assert len(per_thread) == 4
        assert len(set(all_ids)) == len(all_ids)

    def test_close_uses_external_duration(self):
        span = Span("abc", "remote_hop", started_at=0)
        span.close(42.0)
        assert span.duration_ms == 42.0

    def test_to_dict_round_trips_the_tree(self):
        root = Span("abc", "trigger", started_at=7, sensor="s")
        root.child("output_query", rows=3).finish()
        root.finish()
        doc = root.to_dict()
        assert doc["trace_id"] == "abc"
        assert doc["started_at"] == 7
        assert doc["attributes"]["sensor"] == "s"
        (child,) = doc["children"]
        assert child["name"] == "output_query"
        assert child["attributes"]["rows"] == 3
        assert "children" not in child  # leaf spans omit the key


class TestTraceBuffer:
    def test_ring_buffer_is_bounded(self):
        buffer = TraceBuffer(capacity=3)
        for index in range(5):
            buffer.add(Span(f"t{index}", "trigger", started_at=index))
        assert len(buffer) == 3
        status = buffer.status()
        assert status == {"buffered": 3, "capacity": 3, "recorded": 5}
        # the oldest two were evicted
        assert [s.trace_id for s in buffer.recent()] == ["t4", "t3", "t2"]

    def test_recent_respects_limit(self):
        buffer = TraceBuffer(capacity=10)
        for index in range(4):
            buffer.add(Span(f"t{index}", "trigger", started_at=index))
        assert [s.trace_id for s in buffer.recent(limit=2)] == ["t3", "t2"]

    def test_find_returns_all_trees_of_one_trace(self):
        buffer = TraceBuffer()
        buffer.add(Span("aa", "timestamp", started_at=1))
        buffer.add(Span("bb", "trigger", started_at=2))
        buffer.add(Span("aa", "trigger", started_at=3))
        found = buffer.find("aa")
        assert [s.name for s in found] == ["timestamp", "trigger"]

    def test_eviction_is_strictly_oldest_first(self):
        buffer = TraceBuffer(capacity=4)
        for index in range(10):
            buffer.add(Span(f"t{index}", "trigger", started_at=index))
        survivors = [s.trace_id for s in buffer.recent()]
        assert survivors == ["t9", "t8", "t7", "t6"]
        # recent() (newest-first) is the exact reverse of arrival order.
        assert list(reversed(survivors)) == \
            [f"t{index}" for index in range(6, 10)]

    def test_find_after_eviction_loses_only_evicted_trees(self):
        # One trace spread over several trees: once the ring evicts the
        # early trees, find() returns the surviving tail, oldest first —
        # never a hole in the middle.
        buffer = TraceBuffer(capacity=3)
        buffer.add(Span("aa", "timestamp", started_at=1))
        buffer.add(Span("aa", "trigger", started_at=2))
        buffer.add(Span("bb", "trigger", started_at=3))
        buffer.add(Span("aa", "remote_hop", started_at=4))  # evicts #1
        found = buffer.find("aa")
        assert [s.name for s in found] == ["trigger", "remote_hop"]
        assert [s.started_at for s in found] == [2, 4]
        buffer.add(Span("cc", "trigger", started_at=5))  # evicts #2
        buffer.add(Span("cc", "trigger", started_at=6))  # evicts #3
        assert [s.name for s in buffer.find("aa")] == ["remote_hop"]
        assert buffer.find("bb") == []


class TestSampling:
    def test_disabled_tracer_never_samples(self):
        tracer = PipelineTracer("s", sampling=1.0)  # no sink, no registry
        assert not tracer.enabled
        assert tracer.sample() is False
        assert tracer.begin("abc", 0) is None

    def test_sampling_zero_never_samples(self):
        tracer = PipelineTracer("s", sampling=0.0, sink=TraceBuffer())
        assert all(not tracer.sample() for _ in range(50))

    def test_sampling_one_always_samples(self):
        tracer = PipelineTracer("s", sampling=1.0, sink=TraceBuffer())
        assert all(tracer.sample() for _ in range(50))

    def test_fractional_sampling_is_seeded_and_partial(self):
        tracer = PipelineTracer("s", sampling=0.5, sink=TraceBuffer(),
                                seed=42)
        draws = [tracer.sample() for _ in range(200)]
        assert 0 < sum(draws) < 200
        replay = PipelineTracer("s", sampling=0.5, sink=TraceBuffer(),
                                seed=42)
        assert [replay.sample() for _ in range(200)] == draws

    def test_inbound_trace_id_always_honoured(self):
        # A downstream sensor with sampling 0 still traces elements that
        # arrive carrying an upstream trace id.
        tracer = PipelineTracer("s", sampling=0.0, sink=TraceBuffer())
        assert tracer.begin("upstream-id", 0) is not None


class TestTracerPipeline:
    def test_finish_feeds_sink_and_histograms(self):
        registry = MetricsRegistry()
        sink = TraceBuffer()
        tracer = PipelineTracer("s1", node="n1", sampling=1.0,
                                sink=sink, registry=registry)
        root = tracer.begin("abc", 10, stream="input")
        for step in PIPELINE_STEPS[1:]:
            root.child(step).finish()
        tracer.finish(root)

        assert len(sink) == 1
        assert sink.recent()[0].attributes["node"] == "n1"
        text = registry.expose_text()
        for step in PIPELINE_STEPS[1:]:
            assert (f'gsn_pipeline_step_latency_ms_count'
                    f'{{sensor="s1",step="{step}"}} 1') in text
        assert 'gsn_pipeline_trigger_latency_ms_count{sensor="s1"} 1' in text
        assert 'gsn_traces_recorded_total{sensor="s1"} 1' in text

    def test_ingest_span_feeds_timestamp_histogram(self):
        registry = MetricsRegistry()
        tracer = PipelineTracer("s1", sampling=1.0, registry=registry)
        span = tracer.ingest_span("abc", 5, source="wind")
        tracer.record_ingest(span)
        assert span.duration_ms is not None
        assert ('gsn_pipeline_step_latency_ms_count'
                '{sensor="s1",step="timestamp"} 1') in registry.expose_text()

    def test_finish_none_is_a_noop(self):
        PipelineTracer("s", sampling=0.0).finish(None)  # must not raise
