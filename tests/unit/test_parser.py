"""Unit tests for the SQL parser."""

import pytest

from repro.exceptions import SQLSyntaxError
from repro.sqlengine.ast_nodes import (
    BetweenExpr, BinaryOp, CaseExpr, ColumnRef, ExistsExpr, FunctionCall,
    InExpr, IsNullExpr, Join, LikeExpr, Literal, ScalarSubquery, Star,
    SubqueryRef, TableRef, UnaryOp, contains_aggregate,
)
from repro.sqlengine.parser import parse_select


class TestSelectList:
    def test_star(self):
        stmt = parse_select("select * from t")
        assert isinstance(stmt.items[0].expression, Star)

    def test_qualified_star(self):
        stmt = parse_select("select t.* from t")
        assert stmt.items[0].expression == Star("t")

    def test_alias_with_as(self):
        stmt = parse_select("select a as x from t")
        assert stmt.items[0].alias == "x"

    def test_alias_without_as(self):
        stmt = parse_select("select a x from t")
        assert stmt.items[0].alias == "x"

    def test_multiple_items(self):
        stmt = parse_select("select a, b + 1, count(*) from t")
        assert len(stmt.items) == 3

    def test_distinct(self):
        assert parse_select("select distinct a from t").distinct
        assert not parse_select("select all a from t").distinct


class TestFromClause:
    def test_table_alias(self):
        stmt = parse_select("select * from temps t1")
        ref = stmt.from_items[0]
        assert isinstance(ref, TableRef)
        assert (ref.name, ref.alias) == ("temps", "t1")

    def test_comma_join(self):
        stmt = parse_select("select * from a, b, c")
        assert len(stmt.from_items) == 3

    def test_inner_join_on(self):
        stmt = parse_select("select * from a join b on a.x = b.x")
        join = stmt.from_items[0]
        assert isinstance(join, Join)
        assert join.kind == "inner"
        assert isinstance(join.condition, BinaryOp)

    def test_left_join(self):
        stmt = parse_select("select * from a left outer join b on a.x = b.x")
        assert stmt.from_items[0].kind == "left"

    def test_cross_join(self):
        stmt = parse_select("select * from a cross join b")
        assert stmt.from_items[0].kind == "cross"

    def test_right_join_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("select * from a right join b on a.x = b.x")

    def test_chained_joins(self):
        stmt = parse_select(
            "select * from a join b on a.x = b.x join c on b.y = c.y"
        )
        outer = stmt.from_items[0]
        assert isinstance(outer, Join)
        assert isinstance(outer.left, Join)

    def test_derived_table(self):
        stmt = parse_select("select * from (select a from t) sub")
        ref = stmt.from_items[0]
        assert isinstance(ref, SubqueryRef)
        assert ref.alias == "sub"

    def test_derived_table_requires_alias(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("select * from (select a from t)")

    def test_no_from(self):
        stmt = parse_select("select 1 + 2")
        assert stmt.from_items == ()


class TestExpressions:
    def test_precedence_arithmetic(self):
        expr = parse_select("select 1 + 2 * 3").items[0].expression
        assert expr == BinaryOp("+", Literal(1),
                                BinaryOp("*", Literal(2), Literal(3)))

    def test_precedence_and_or(self):
        expr = parse_select("select a or b and c from t").items[0].expression
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_not_binds_tighter_than_and(self):
        expr = parse_select("select not a and b from t").items[0].expression
        assert expr.op == "and"
        assert isinstance(expr.left, UnaryOp)

    def test_parentheses(self):
        expr = parse_select("select (1 + 2) * 3").items[0].expression
        assert expr.op == "*"

    def test_unary_minus(self):
        expr = parse_select("select -a from t").items[0].expression
        assert expr == UnaryOp("-", ColumnRef("a"))

    def test_concat(self):
        expr = parse_select("select a || b from t").items[0].expression
        assert expr.op == "||"

    def test_qualified_column(self):
        expr = parse_select("select t.a from t").items[0].expression
        assert expr == ColumnRef("a", table="t")

    def test_literals(self):
        stmt = parse_select("select 1, 2.5, 'x', null, true, false, X'ff'")
        values = [item.expression.value for item in stmt.items]
        assert values == [1, 2.5, "x", None, True, False, b"\xff"]

    def test_bang_equals_normalized(self):
        expr = parse_select("select a != b from t").items[0].expression
        assert expr.op == "<>"


class TestPredicates:
    def test_in_list(self):
        stmt = parse_select("select * from t where a in (1, 2, 3)")
        assert isinstance(stmt.where, InExpr)
        assert len(stmt.where.options) == 3

    def test_not_in(self):
        stmt = parse_select("select * from t where a not in (1)")
        assert stmt.where.negated

    def test_in_subquery(self):
        stmt = parse_select("select * from t where a in (select b from u)")
        assert stmt.where.subquery is not None

    def test_between(self):
        stmt = parse_select("select * from t where a between 1 and 10")
        assert isinstance(stmt.where, BetweenExpr)

    def test_not_between(self):
        stmt = parse_select("select * from t where a not between 1 and 10")
        assert stmt.where.negated

    def test_like(self):
        stmt = parse_select("select * from t where name like 'a%'")
        assert isinstance(stmt.where, LikeExpr)

    def test_is_null_and_not_null(self):
        assert not parse_select(
            "select * from t where a is null").where.negated
        assert parse_select(
            "select * from t where a is not null").where.negated

    def test_exists(self):
        stmt = parse_select(
            "select * from t where exists (select 1 from u)")
        assert isinstance(stmt.where, ExistsExpr)

    def test_scalar_subquery(self):
        stmt = parse_select("select (select max(a) from t) m from u")
        assert isinstance(stmt.items[0].expression, ScalarSubquery)


class TestFunctionsAndCase:
    def test_count_star(self):
        expr = parse_select("select count(*) from t").items[0].expression
        assert expr == FunctionCall("count", (), star=True)

    def test_distinct_aggregate(self):
        expr = parse_select("select count(distinct a) from t"
                            ).items[0].expression
        assert expr.distinct

    def test_multi_arg_function(self):
        expr = parse_select("select coalesce(a, b, 0) from t"
                            ).items[0].expression
        assert len(expr.args) == 3

    def test_searched_case(self):
        expr = parse_select(
            "select case when a > 1 then 'big' else 'small' end from t"
        ).items[0].expression
        assert isinstance(expr, CaseExpr)
        assert expr.operand is None
        assert expr.default == Literal("small")

    def test_simple_case(self):
        expr = parse_select(
            "select case a when 1 then 'one' when 2 then 'two' end from t"
        ).items[0].expression
        assert expr.operand == ColumnRef("a")
        assert len(expr.branches) == 2
        assert expr.default is None

    def test_case_requires_when(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("select case else 1 end from t")

    def test_contains_aggregate(self):
        stmt = parse_select("select avg(a) + 1 from t")
        assert contains_aggregate(stmt.items[0].expression)
        stmt = parse_select("select a + 1 from t")
        assert not contains_aggregate(stmt.items[0].expression)

    def test_aggregate_in_subquery_not_counted(self):
        stmt = parse_select("select (select avg(a) from t) from u")
        assert not contains_aggregate(stmt.items[0].expression)


class TestClauses:
    def test_group_by_having(self):
        stmt = parse_select(
            "select b, count(*) from t group by b having count(*) > 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by_directions(self):
        stmt = parse_select("select * from t order by a desc, b asc, c")
        directions = [item.ascending for item in stmt.order_by]
        assert directions == [False, True, True]

    def test_limit_offset(self):
        stmt = parse_select("select * from t limit 10 offset 5")
        assert (stmt.limit, stmt.offset) == (10, 5)

    def test_mysql_limit_comma(self):
        stmt = parse_select("select * from t limit 5, 10")
        assert (stmt.limit, stmt.offset) == (10, 5)

    def test_limit_requires_nonnegative_int(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("select * from t limit -1")
        with pytest.raises(SQLSyntaxError):
            parse_select("select * from t limit 1.5")

    def test_union_and_friends(self):
        stmt = parse_select(
            "select a from t union select a from u "
            "intersect select a from v"
        )
        assert [op.op for op in stmt.set_operations] == ["union",
                                                         "intersect"]

    def test_union_all(self):
        stmt = parse_select("select a from t union all select a from u")
        assert stmt.set_operations[0].all

    def test_order_by_applies_after_set_ops(self):
        stmt = parse_select(
            "select a from t union select a from u order by a"
        )
        assert stmt.order_by


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "update t set a = 1",
        "select",
        "select from t",
        "select * from",
        "select a from t where",
        "select a from t group by",
        "select a from t trailing garbage",
        "select (1 from t",
        "select a from t order",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(SQLSyntaxError):
            parse_select(bad)

    def test_trailing_semicolon_ok(self):
        assert parse_select("select 1;") is not None
