"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.analysis import (
    crashwitness, lockwitness, loopwitness, racewitness,
)
from repro.container import GSNContainer
from repro.datatypes import DataType
from repro.descriptors.model import (
    AddressSpec, InputStreamSpec, StorageConfig, StreamSourceSpec,
    VirtualSensorDescriptor,
)
from repro.gsntime.clock import VirtualClock
from repro.gsntime.scheduler import EventScheduler
from repro.streams.schema import Field, StreamSchema


@pytest.fixture(scope="session", autouse=True)
def lock_order_witness():
    """Run the whole suite under the runtime lock-order witness.

    Every ``new_lock()`` in repro hands out an instrumented lock that
    records per-thread acquisition order and raises LockOrderViolation
    the moment two locks are taken in an order inverted against
    ``repro.concurrency.LOCK_ORDER`` or a previously observed order.
    Opt out with ``GSN_LOCK_WITNESS=0`` (e.g. when bisecting an
    unrelated failure).
    """
    if os.environ.get("GSN_LOCK_WITNESS", "1") == "0":
        yield None
        return
    witness = lockwitness.enable(strict=True)
    try:
        yield witness
    finally:
        lockwitness.disable()
    assert not witness.violations, witness.violations
    assert not witness.check_acyclic(), witness.check_acyclic()


@pytest.fixture(scope="session", autouse=True)
def race_witness(lock_order_witness):
    """Run the whole suite under the runtime race witness.

    Every core shared class (:data:`racewitness.CORE_CLASSES`) is
    instrumented so that writing a ``# guarded-by:`` attribute — or
    mutating a guarded collection — without holding the declared lock
    raises :class:`racewitness.RaceWitnessViolation` at the faulty
    write, with the attribute, guard, and thread in the message.
    Depends on ``lock_order_witness`` so locks are created by whichever
    factory stack is active (the witnesses compose by wrapping). Opt
    out with ``GSN_RACE_WITNESS=0``.
    """
    if os.environ.get("GSN_RACE_WITNESS", "1") == "0":
        yield None
        return
    witness = racewitness.enable(strict=True)
    try:
        yield witness
    finally:
        racewitness.disable()
    unexpected = witness.unexpected()
    assert not unexpected, [str(v) for v in unexpected]


@pytest.fixture(scope="session", autouse=True)
def thread_crash_witness():
    """Run the whole suite under the runtime thread-crash witness.

    ``threading.excepthook`` is replaced with a sentinel that records
    every exception escaping a thread (the GSN602 failure mode at
    runtime). Any *unexpected* crash — one not wrapped in
    ``witness.expected()`` — fails the suite at the end of the session.
    Opt out with ``GSN_CRASH_WITNESS=0``.
    """
    if os.environ.get("GSN_CRASH_WITNESS", "1") == "0":
        yield None
        return
    witness = crashwitness.enable()
    try:
        yield witness
    finally:
        crashwitness.disable()
    unexpected = witness.unexpected()
    assert not unexpected, [crash.render() for crash in unexpected]


@pytest.fixture(scope="session", autouse=True)
def loop_lag_witness():
    """Run the whole suite under the event-loop lag witness.

    Every event loop the runtime starts (the async ingest gateway arms
    this automatically) runs a heartbeat task; a wake-up later than the
    stall ceiling — the runtime shadow of a GSN901 finding — is
    recorded and fails the suite at teardown. Opt out with
    ``GSN_LOOP_WITNESS=0``; tune the ceiling (milliseconds) with
    ``GSN_LOOP_WITNESS_MS``.
    """
    if os.environ.get("GSN_LOOP_WITNESS", "1") == "0":
        yield None
        return
    ceiling = float(os.environ.get(
        "GSN_LOOP_WITNESS_MS", loopwitness.DEFAULT_MAX_STALL_MS))
    witness = loopwitness.enable(max_stall_ms=ceiling)
    try:
        yield witness
    finally:
        loopwitness.disable()
    assert not witness.violations, [v.render() for v in witness.violations]


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock(1_000_000)


@pytest.fixture
def scheduler(clock: VirtualClock) -> EventScheduler:
    return EventScheduler(clock)


@pytest.fixture
def container():
    with GSNContainer("test") as node:
        yield node


def simple_mote_descriptor(name: str = "probe", interval_ms: int = 500,
                           window: str = "5s", permanent: bool = True,
                           history: str = "1h",
                           source_query: str = (
                               "select avg(temperature) as temperature "
                               "from wrapper"),
                           stream_query: str = "select * from src",
                           rate: float = 0.0,
                           sampling: float = 1.0,
                           disconnect_buffer: int = 0,
                           ) -> VirtualSensorDescriptor:
    """The canonical single-mote averaged-temperature descriptor."""
    return VirtualSensorDescriptor(
        name=name,
        output_structure=StreamSchema([
            Field("temperature", DataType.INTEGER),
        ]),
        input_streams=(InputStreamSpec(
            name="in",
            sources=(StreamSourceSpec(
                alias="src",
                address=AddressSpec("mica2", {"interval": str(interval_ms),
                                              "node-id": "1"}),
                query=source_query,
                storage_size=window,
                sampling_rate=sampling,
                disconnect_buffer=disconnect_buffer,
            ),),
            query=stream_query,
            rate=rate,
        ),),
        storage=StorageConfig(permanent=permanent, history_size=history),
        addressing={"type": "temperature", "location": "lab"},
    )


@pytest.fixture
def mote_descriptor_factory():
    return simple_mote_descriptor
