"""Property: a statically-eligible verdict is a no-poison proof.

gsn-plan's contract with the runtime is that ``source_query_verdict``
only answers *eligible* when the incremental accumulator provably cannot
poison itself on any data the wrapper can produce. This test generates
random aggregate queries over a two-column integer wrapper schema plus
random data streams (including NULLs and evictions through a small count
window) and checks that every statically-eligible query

1. attaches (the runtime classifier agrees),
2. never poisons while the window churns, and
3. answers every snapshot exactly like the legacy executor.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.planpass import source_query_verdict
from repro.datatypes import DataType
from repro.sqlengine.executor import Catalog, execute_plan
from repro.sqlengine.incremental import (
    AggregateQuery, IncrementalAggregateState, classify,
)
from repro.sqlengine.parser import parse_select
from repro.sqlengine.planner import plan_select
from repro.sqlengine.relation import Relation
from repro.streams.element import StreamElement
from repro.streams.materialized import WindowRelation
from repro.streams.window import CountWindow

SCHEMA = {"v": DataType.INTEGER, "w": DataType.INTEGER,
          "timed": DataType.INTEGER}

columns = st.sampled_from(["v", "w"])
constants = st.integers(-5, 5)

comparisons = st.builds(
    lambda c, op, k: f"{c} {op} {k}",
    columns, st.sampled_from(["=", "!=", "<", "<=", ">", ">="]), constants,
)
betweens = st.builds(
    lambda c, low, high: f"{c} between {low} and {high}",
    columns, constants, constants,
)
null_tests = st.builds(
    lambda c, neg: f"{c} is {'not ' if neg else ''}null",
    columns, st.booleans(),
)
in_lists = st.builds(
    lambda c, ks: f"{c} in ({', '.join(str(k) for k in ks)})",
    columns, st.lists(constants, min_size=1, max_size=3),
)
atoms = st.one_of(comparisons, betweens, null_tests, in_lists)
predicates = st.one_of(
    atoms,
    st.builds(lambda a, op, b: f"({a}) {op} ({b})",
              atoms, st.sampled_from(["and", "or"]), atoms),
)

aggregate_items = st.lists(
    st.sampled_from(["count(*) as n", "sum(v) as s", "avg(v) as a",
                     "min(v) as mn", "max(w) as mx", "count(w) as c"]),
    min_size=1, max_size=4, unique=True,
)

queries = st.builds(
    lambda items, where: (
        f"select {', '.join(items)} from wrapper"
        + (f" where {where}" if where else "")
    ),
    aggregate_items,
    st.one_of(st.none(), predicates),
)

cells = st.one_of(st.none(), st.integers(-50, 50))
streams = st.lists(st.tuples(cells, cells), min_size=0, max_size=20)


@settings(max_examples=200, deadline=None)
@given(sql=queries, data=streams, window_size=st.integers(1, 5))
def test_eligible_queries_never_poison(sql, data, window_size):
    plan = plan_select(parse_select(sql))
    verdict = source_query_verdict(plan, "count", SCHEMA)
    assert verdict.eligible, (sql, verdict)

    classified = classify(plan)
    assert isinstance(classified, AggregateQuery), sql

    window = CountWindow(window_size)
    mirror = WindowRelation(["v", "w"])
    window.add_observer(mirror)
    poisonings = []
    state = IncrementalAggregateState(classified, mirror, label=sql,
                                      on_poison=poisonings.append)
    mirror.add_listener(state)

    for position, (v, w) in enumerate(data):
        window.append(StreamElement({"v": v, "w": w}, timed=1000 + position))
        assert state.healthy, (sql, data[:position + 1], state.poison_cause)

        incremental = state.snapshot()
        legacy = execute_plan(plan, Catalog({
            "wrapper": Relation(("v", "w", "timed"), list(mirror.rows)),
        }))
        assert incremental.columns == legacy.columns, sql
        assert list(incremental.rows) == list(legacy.rows), \
            (sql, data[:position + 1])
    assert not poisonings
