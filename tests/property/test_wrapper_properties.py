"""Property tests on the simulated device wrappers."""

from hypothesis import given, settings, strategies as st

from repro.gsntime.clock import VirtualClock
from repro.wrappers.camera import CameraWrapper
from repro.wrappers.generator import GeneratorWrapper
from repro.wrappers.motes import MoteWrapper


def wired(wrapper, predicates):
    wrapper.attach(VirtualClock(0))
    wrapper.configure({k: str(v) for k, v in predicates.items()})
    wrapper.start()
    return wrapper


class TestMoteProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10**6),
           light_base=st.floats(10, 10_000),
           temp_base=st.floats(-20, 45),
           now=st.integers(0, 10**10))
    def test_readings_in_physical_range(self, seed, light_base, temp_base,
                                        now):
        mote = wired(MoteWrapper(), {
            "seed": seed, "light-base": light_base,
            "temperature-base": temp_base,
        })
        reading = mote.produce(now)
        assert reading["light"] >= 0
        assert temp_base - 10 <= reading["temperature"] <= temp_base + 10
        assert abs(reading["accel_x"]) < 1.0
        assert abs(reading["accel_y"]) < 1.0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_same_seed_same_stream(self, seed):
        a = wired(MoteWrapper(), {"seed": seed})
        b = wired(MoteWrapper(), {"seed": seed})
        assert [a.produce(t * 100) for t in range(10)] \
            == [b.produce(t * 100) for t in range(10)]


class TestCameraProperties:
    @settings(max_examples=25, deadline=None)
    @given(size=st.integers(4, 100_000), stamp=st.integers(0, 10**12))
    def test_frame_size_exact_and_jpeg_tagged(self, size, stamp):
        camera = wired(CameraWrapper(), {"image-size": size})
        frame = camera.frame(stamp)
        assert len(frame) == size
        assert frame[:2] == b"\xff\xd8"
        produced = camera.produce(stamp)["image"]
        assert len(produced) == size


class TestGeneratorProperties:
    @settings(max_examples=30, deadline=None)
    @given(signal=st.sampled_from(["sine", "square", "ramp", "constant",
                                   "noise"]),
           amplitude=st.floats(0.1, 1_000),
           offset=st.floats(-100, 100),
           period=st.integers(1, 10**7),
           now=st.integers(0, 10**10),
           seed=st.integers(0, 999))
    def test_value_bounded_by_amplitude(self, signal, amplitude, offset,
                                        period, now, seed):
        generator = wired(GeneratorWrapper(), {
            "signal": signal, "amplitude": amplitude,
            "offset": offset, "period": period, "seed": seed,
        })
        reading = generator.produce(now)
        assert abs(reading["value"] - offset) <= amplitude + 1e-9
        assert 0.0 <= reading["phase"] < 1.0

    @settings(max_examples=20, deadline=None)
    @given(period=st.integers(100, 10**6), k=st.integers(0, 50))
    def test_periodicity(self, period, k):
        generator = wired(GeneratorWrapper(), {"signal": "sine",
                                               "period": period})
        t = period // 3
        assert generator.produce(t)["value"] \
            == generator.produce(t + k * period)["value"]
