"""Property: batched ingestion ≡ per-tuple ingestion.

The async gateway amortizes one window-update + query evaluation over a
whole batch (:meth:`InputStreamManager.ingest_batch`). Hypothesis
generates a random tuple sequence and a random partition of it into
batches, feeds one container the batches and a twin container the same
tuples one at a time, and checks the claim the batching rests on: the
source window holds exactly the same elements afterwards, and the final
evaluated output (the state any later trigger would see) is identical.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import GSNContainer

from ..conftest import simple_mote_descriptor


@st.composite
def tuple_batches(draw):
    """A random tuple sequence with a random batch partition of it."""
    values = draw(st.lists(st.integers(-50, 50), min_size=1, max_size=40))
    batches = []
    index = 0
    while index < len(values):
        size = draw(st.integers(1, 8))
        batches.append(values[index:index + size])
        index += size
    return batches


def fresh_probe(name):
    container = GSNContainer(name)
    container.deploy(simple_mote_descriptor())
    sensor = container.sensor("probe")
    outputs = []
    sensor.add_listener(outputs.append)
    return container, sensor, outputs


def window_values(sensor):
    window = sensor.ism.stream("in").source("src").window
    return [(element.timed, dict(element.values))
            for element in window.contents()]


@settings(max_examples=20, deadline=None)
@given(batches=tuple_batches())
def test_batched_ingest_matches_per_tuple(batches):
    batched_container, batched_sensor, batched_out = fresh_probe("batched")
    tuple_container, tuple_sensor, tuple_out = fresh_probe("pertuple")
    try:
        total = sum(len(batch) for batch in batches)
        admitted_batched = sum(
            batched_sensor.ingest_batch(
                "in", "src", [{"temperature": value} for value in batch])
            for batch in batches)
        admitted_tuples = sum(
            tuple_sensor.ingest_batch(
                "in", "src", [{"temperature": value}])
            for batch in batches for value in batch)

        assert admitted_batched == admitted_tuples == total
        assert window_values(batched_sensor) == window_values(tuple_sensor)

        # Both paths evaluated at least once, and the *final* evaluation
        # saw the same window, so the last outputs must agree.
        assert batched_out and tuple_out
        assert batched_out[-1].values == tuple_out[-1].values
        # Batching amortizes: one evaluation per batch, never more.
        assert len(batched_out) == len(batches)
        assert len(tuple_out) == total
    finally:
        batched_container.shutdown()
        tuple_container.shutdown()
