"""Property: the compiled physical pipeline is the interpreter, faster.

Hypothesis generates random relations (with NULLs) and drives a query
corpus covering every physical operator — scan, filter, projection,
hash join (with residuals), group-by/having, plain aggregates, order
by, limit/offset, distinct — through both engines. The pipeline must
reproduce the interpreter's answer *exactly*: same columns, same rows,
same row order, and the same error class when the query fails at
runtime.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.exceptions import SQLError
from repro.sqlengine.executor import Catalog, execute_plan
from repro.sqlengine.parser import parse_select
from repro.sqlengine.physical import catalog_schemas, try_compile
from repro.sqlengine.planner import plan_select
from repro.sqlengine.relation import Relation

T_COLUMNS = ("a", "b", "s")
U_COLUMNS = ("k", "w")

t_rows = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(-50, 50)),
        st.one_of(st.none(), st.integers(0, 4)),
        st.one_of(st.none(), st.sampled_from(["x", "yy", "Z", ""])),
    ),
    min_size=0, max_size=20,
)
u_rows = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(0, 4)),
        st.one_of(st.none(), st.integers(-10, 10)),
    ),
    min_size=0, max_size=12,
)

# One query per physical operator family, plus compositions.
QUERIES = [
    "select * from t",
    "select a, b from t where a > 0 and s like 'x%'",
    "select a, b from t where a in (1, 2, 3) or b between 1 and 3",
    "select a + b as ab, -a as na, "
    "case when a > 0 then 'p' else 'n' end as sign from t",
    "select distinct b from t",
    "select distinct b, s from t where s is not null",
    "select * from t order by a, b, s limit 5",
    "select a, b from t order by b desc, a asc limit 4 offset 2",
    "select count(*) as n, count(a) as c, sum(a) as total, "
    "avg(a) as mean, min(a) as lo, max(a) as hi from t",
    "select b, count(*) as n, sum(a) as total from t "
    "group by b having count(*) >= 2",
    "select b, min(s) as lo, max(s) as hi from t "
    "where s is not null group by b order by b limit 3",
    "select t.a, t.s, u.w from t join u on t.b = u.k",
    "select t.a, u.w from t join u on t.b = u.k and t.a < u.w",
    "select t.a, u.w from t join u on t.b = u.k "
    "where u.w is not null order by t.a, u.w limit 6",
    "select u.k, count(*) as n, avg(t.a) as mean "
    "from t join u on t.b = u.k group by u.k",
    "select b from t union select k from u",
    "select b from t intersect select k from u order by b",
    "select b from t except select k from u",
    "select d.b, count(*) as n from "
    "(select b from t where a is not null) d group by d.b",
]


def outcome(fn):
    """The result (or error class) of one engine run, comparable."""
    try:
        relation = fn()
    except SQLError as exc:
        return ("error", type(exc).__name__)
    return ("ok", tuple(relation.columns), list(relation.rows))


@settings(max_examples=120, deadline=None)
@given(t=t_rows, u=u_rows, sql=st.sampled_from(QUERIES))
def test_pipeline_matches_interpreter(t, u, sql):
    plan = plan_select(parse_select(sql))
    catalog = Catalog({"t": Relation(T_COLUMNS, t),
                       "u": Relation(U_COLUMNS, u)})
    schemas = catalog_schemas(plan, catalog)
    assert schemas is not None
    pipeline = try_compile(plan, schemas)
    assert pipeline is not None, \
        (sql, getattr(plan, "_phys_reason", None))
    assert outcome(lambda: pipeline.execute(catalog)) \
        == outcome(lambda: execute_plan(plan, catalog)), sql


@settings(max_examples=40, deadline=None)
@given(t=t_rows)
def test_reexecution_is_stable(t):
    # One compile, many executions against changing data — the deployed
    # sensors' usage pattern.
    sql = QUERIES[9]
    plan = plan_select(parse_select(sql))
    catalog = Catalog({"t": Relation(T_COLUMNS, t)})
    pipeline = try_compile(plan, catalog_schemas(plan, catalog))
    assert pipeline is not None
    for rows in (t, list(reversed(t)), t[: len(t) // 2]):
        target = Catalog({"t": Relation(T_COLUMNS, rows)})
        assert outcome(lambda: pipeline.execute(target)) \
            == outcome(lambda: execute_plan(plan, target))


def test_unsupported_shapes_report_a_reason():
    for sql in (
        "select a from t where a in (select k from u)",   # subquery
        "select (select k from u) as k from t",           # scalar subquery
        "select 1 as one",                                # constant source
        "select * from t group by b",                     # star + grouping
    ):
        plan = plan_select(parse_select(sql))
        schemas = {"t": T_COLUMNS, "u": U_COLUMNS}
        assert try_compile(plan, schemas) is None, sql
        assert plan._phys_reason, sql
