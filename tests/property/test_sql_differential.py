"""Differential property tests: the scratch SQL engine vs SQLite.

Hypothesis generates random tables and queries from a dialect subset both
engines agree on (no int/int division, same-typed comparisons); both must
return identical multisets of rows — ordered queries must match exactly.
"""

from __future__ import annotations

import sqlite3
from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.sqlengine.executor import Catalog, execute
from repro.sqlengine.relation import Relation

COLUMNS = ("a", "b", "s")

rows_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(-50, 50)),          # a
        st.one_of(st.none(), st.integers(0, 9)),             # b
        st.one_of(st.none(), st.sampled_from(
            ["x", "y", "zz", "Xy", ""])),                    # s
    ),
    min_size=0, max_size=25,
)

comparison_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])


@st.composite
def predicates(draw):
    choice = draw(st.integers(0, 5))
    if choice == 0:
        op = draw(comparison_ops)
        value = draw(st.integers(-50, 50))
        return f"a {op} {value}"
    if choice == 1:
        op = draw(comparison_ops)
        value = draw(st.integers(0, 9))
        return f"b {op} {value}"
    if choice == 2:
        column = draw(st.sampled_from(["a", "b", "s"]))
        negated = draw(st.booleans())
        return f"{column} is {'not ' if negated else ''}null"
    if choice == 3:
        options = draw(st.lists(st.integers(-5, 5), min_size=1,
                                max_size=4))
        return f"a in ({', '.join(map(str, options))})"
    if choice == 4:
        low = draw(st.integers(-20, 10))
        high = draw(st.integers(-10, 20))
        return f"a between {low} and {high}"
    pattern = draw(st.sampled_from(["x%", "%y", "z_", "%", "x"]))
    return f"s like '{pattern}'"


@st.composite
def where_clauses(draw):
    parts = draw(st.lists(predicates(), min_size=1, max_size=3))
    joiner = draw(st.sampled_from([" and ", " or "]))
    return joiner.join(parts)


def run_sqlite(rows, sql):
    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE t (a INTEGER, b INTEGER, s TEXT)")
    connection.executemany("INSERT INTO t VALUES (?, ?, ?)", rows)
    cursor = connection.execute(sql)
    result = cursor.fetchall()
    connection.close()
    return result


def run_scratch(rows, sql):
    catalog = Catalog({"t": Relation(COLUMNS, rows)})
    return execute(sql, catalog).rows


def normalize(rows):
    return Counter(
        tuple(float(v) if isinstance(v, int) and not isinstance(v, bool)
              else v for v in row)
        for row in rows
    )


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, where=where_clauses())
def test_filter_agreement(rows, where):
    sql = f"select a, b, s from t where {where}"
    assert normalize(run_scratch(rows, sql)) \
        == normalize(run_sqlite(rows, sql))


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy)
def test_aggregate_agreement(rows):
    sql = ("select count(*), count(a), sum(a), min(a), max(a), avg(a) "
           "from t")
    assert normalize(run_scratch(rows, sql)) \
        == normalize(run_sqlite(rows, sql))


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy)
def test_group_by_agreement(rows):
    sql = ("select b, count(*), sum(a) from t group by b "
           "having count(*) >= 1")
    assert normalize(run_scratch(rows, sql)) \
        == normalize(run_sqlite(rows, sql))


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy)
def test_order_by_agreement(rows):
    # NULLS sort first ascending in both engines; add unique tiebreakers
    # to make the full ordering deterministic.
    sql = "select a, b, s from t order by a, b, s"
    assert run_scratch(rows, sql) == run_sqlite(rows, sql)


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, limit=st.integers(0, 30),
       offset=st.integers(0, 10))
def test_limit_offset_agreement(rows, limit, offset):
    sql = (f"select a from t order by a, b, s "
           f"limit {limit} offset {offset}")
    assert run_scratch(rows, sql) == run_sqlite(rows, sql)


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy, other=rows_strategy,
       op=st.sampled_from(["union", "union all", "intersect", "except"]))
def test_set_operation_agreement(rows, other, op):
    catalog = Catalog({"t": Relation(COLUMNS, rows),
                       "u": Relation(COLUMNS, other)})
    sql = f"select a, b from t {op} select a, b from u"

    connection = sqlite3.connect(":memory:")
    for name, data in (("t", rows), ("u", other)):
        connection.execute(
            f"CREATE TABLE {name} (a INTEGER, b INTEGER, s TEXT)")
        connection.executemany(
            f"INSERT INTO {name} VALUES (?, ?, ?)", data)
    expected = connection.execute(sql).fetchall()
    connection.close()

    assert normalize(execute(sql, catalog).rows) == normalize(expected)


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_distinct_agreement(rows):
    sql = "select distinct b from t"
    assert normalize(run_scratch(rows, sql)) \
        == normalize(run_sqlite(rows, sql))


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy, other=rows_strategy)
def test_join_agreement(rows, other):
    catalog = Catalog({"t": Relation(COLUMNS, rows),
                       "u": Relation(COLUMNS, other)})
    sql = ("select t.a, u.b from t join u on t.b = u.b")

    connection = sqlite3.connect(":memory:")
    for name, data in (("t", rows), ("u", other)):
        connection.execute(
            f"CREATE TABLE {name} (a INTEGER, b INTEGER, s TEXT)")
        connection.executemany(
            f"INSERT INTO {name} VALUES (?, ?, ?)", data)
    expected = connection.execute(sql).fetchall()
    connection.close()

    assert normalize(execute(sql, catalog).rows) == normalize(expected)


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_scalar_function_agreement(rows):
    sql = ("select abs(a), upper(s), lower(s), length(s), "
           "coalesce(a, b, 0), nullif(b, 3) from t")
    assert normalize(run_scratch(rows, sql)) \
        == normalize(run_sqlite(rows, sql))


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_cast_agreement(rows):
    # CAST of numerics agrees with SQLite (strings deliberately differ:
    # we raise on non-numeric strings where SQLite silently yields 0).
    sql = ("select cast(a as real), cast(b as integer), "
           "cast(a as text) from t where a is not null and b is not null")
    assert normalize(run_scratch(rows, sql)) \
        == normalize(run_sqlite(rows, sql))


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_case_expression_agreement(rows):
    sql = ("select case when a > 0 then 'pos' when a < 0 then 'neg' "
           "else 'zero-or-null' end from t")
    assert normalize(run_scratch(rows, sql)) \
        == normalize(run_sqlite(rows, sql))


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy, other=rows_strategy)
def test_in_subquery_agreement(rows, other):
    catalog = Catalog({"t": Relation(COLUMNS, rows),
                       "u": Relation(COLUMNS, other)})
    sql = "select a from t where b in (select b from u where b is not null)"

    connection = sqlite3.connect(":memory:")
    for name, data in (("t", rows), ("u", other)):
        connection.execute(
            f"CREATE TABLE {name} (a INTEGER, b INTEGER, s TEXT)")
        connection.executemany(
            f"INSERT INTO {name} VALUES (?, ?, ?)", data)
    expected = connection.execute(sql).fetchall()
    connection.close()

    assert normalize(execute(sql, catalog).rows) == normalize(expected)


# --------------------------------------------------------------------------
# Round trip: expression_to_sql / statement_to_sql re-parse to themselves
# --------------------------------------------------------------------------

@st.composite
def expressions(draw, depth=0):
    """A random SQL expression string covering every expression node."""
    literals = st.sampled_from(
        ["1", "42", "-7", "1.5", "'x'", "'it''s'", "null", "a", "b", "s",
         "t.a", "t.b"])
    if depth >= 2:
        return draw(literals)
    choice = draw(st.integers(0, 9))
    if choice <= 1:
        return draw(literals)
    if choice == 2:
        left = draw(expressions(depth=depth + 1))
        right = draw(expressions(depth=depth + 1))
        op = draw(st.sampled_from(["+", "-", "*", "/", "%", "=", "<>",
                                   "<", "<=", ">", ">=", "and", "or"]))
        return f"({left}) {op} ({right})"
    if choice == 3:
        return f"not ({draw(expressions(depth=depth + 1))})"
    if choice == 4:
        negated = "not " if draw(st.booleans()) else ""
        operand = draw(expressions(depth=depth + 1))
        low = draw(expressions(depth=depth + 1))
        high = draw(expressions(depth=depth + 1))
        return f"({operand}) {negated}between ({low}) and ({high})"
    if choice == 5:
        negated = "not " if draw(st.booleans()) else ""
        pattern = draw(st.sampled_from(["'x%'", "'%y'", "'z_'"]))
        return f"(s) {negated}like {pattern}"
    if choice == 6:
        negated = "not " if draw(st.booleans()) else ""
        options = draw(st.lists(st.integers(-5, 5), min_size=1,
                                max_size=3))
        subquery = draw(st.booleans())
        source = ("select b from u" if subquery
                  else ", ".join(map(str, options)))
        return f"(a) {negated}in ({source})"
    if choice == 7:
        negated = "not " if draw(st.booleans()) else ""
        return f"({draw(expressions(depth=depth + 1))}) is {negated}null"
    if choice == 8:
        name = draw(st.sampled_from(["abs", "coalesce", "upper"]))
        arg = draw(expressions(depth=depth + 1))
        return f"{name}({arg})"
    kind = draw(st.sampled_from(["integer", "real", "text"]))
    if draw(st.booleans()):
        return f"cast(({draw(expressions(depth=depth + 1))}) as {kind})"
    return (f"case when ({draw(expressions(depth=depth + 1))}) "
            f"then ({draw(expressions(depth=depth + 1))}) "
            f"else ({draw(expressions(depth=depth + 1))}) end")


@st.composite
def statements(draw):
    """A random SELECT covering the statement-level rendering."""
    items = draw(st.lists(st.one_of(
        st.just("*"),
        st.just("t.*"),
        st.builds(lambda e: f"({e})", expressions(depth=1)),
        st.builds(lambda e, i: f"({e}) as c{i}",
                  expressions(depth=1), st.integers(0, 9)),
    ), min_size=1, max_size=3))
    distinct = "distinct " if draw(st.booleans()) else ""
    sql = f"select {distinct}{', '.join(items)} from t"
    if draw(st.booleans()):
        kind = draw(st.sampled_from(["join", "left join", "cross join"]))
        sql += f" {kind} u"
        if kind != "cross join":
            sql += " on t.b = u.b"
    if draw(st.booleans()):
        sql += f" where ({draw(expressions(depth=1))})"
    if draw(st.booleans()):
        sql += " group by b"
        if draw(st.booleans()):
            sql += " having count(*) > 1"
    if draw(st.booleans()):
        op = draw(st.sampled_from(["union", "union all", "intersect",
                                   "except"]))
        sql += f" {op} select a from u"
    if draw(st.booleans()):
        direction = draw(st.sampled_from(["", " asc", " desc"]))
        sql += f" order by a{direction}"
    if draw(st.booleans()):
        sql += f" limit {draw(st.integers(0, 9))}"
        if draw(st.booleans()):
            sql += f" offset {draw(st.integers(0, 9))}"
    return sql


def _expression_of(sql):
    from repro.sqlengine.parser import parse_select

    return parse_select(f"select {sql} from t").items[0].expression


@settings(max_examples=150, deadline=None)
@given(sql=expressions())
def test_expression_to_sql_round_trips(sql):
    from repro.sqlengine.explain import expression_to_sql

    rendered = expression_to_sql(_expression_of(sql))
    reparsed = expression_to_sql(_expression_of(rendered))
    assert reparsed == rendered, sql


@settings(max_examples=150, deadline=None)
@given(sql=statements())
def test_statement_to_sql_round_trips(sql):
    from repro.sqlengine.explain import statement_to_sql
    from repro.sqlengine.parser import parse_select

    rendered = statement_to_sql(parse_select(sql))
    reparsed = statement_to_sql(parse_select(rendered))
    assert reparsed == rendered, sql


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, where=where_clauses())
def test_rendered_where_executes_identically(rows, where):
    """Rendering and re-parsing a query must not change its answer."""
    from repro.sqlengine.explain import statement_to_sql
    from repro.sqlengine.parser import parse_select

    sql = f"select a, b, s from t where {where}"
    rendered = statement_to_sql(parse_select(sql))
    assert normalize(run_scratch(rows, rendered)) \
        == normalize(run_scratch(rows, sql))


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy, other=rows_strategy)
def test_left_join_agreement(rows, other):
    catalog = Catalog({"t": Relation(COLUMNS, rows),
                       "u": Relation(COLUMNS, other)})
    sql = "select t.a, u.a from t left join u on t.b = u.b"

    connection = sqlite3.connect(":memory:")
    for name, data in (("t", rows), ("u", other)):
        connection.execute(
            f"CREATE TABLE {name} (a INTEGER, b INTEGER, s TEXT)")
        connection.executemany(
            f"INSERT INTO {name} VALUES (?, ?, ?)", data)
    expected = connection.execute(sql).fetchall()
    connection.close()

    assert normalize(execute(sql, catalog).rows) == normalize(expected)
