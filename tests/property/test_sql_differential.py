"""Differential property tests: the scratch SQL engine vs SQLite.

Hypothesis generates random tables and queries from a dialect subset both
engines agree on (no int/int division, same-typed comparisons); both must
return identical multisets of rows — ordered queries must match exactly.
"""

from __future__ import annotations

import sqlite3
from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.sqlengine.executor import Catalog, execute
from repro.sqlengine.relation import Relation

COLUMNS = ("a", "b", "s")

rows_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(-50, 50)),          # a
        st.one_of(st.none(), st.integers(0, 9)),             # b
        st.one_of(st.none(), st.sampled_from(
            ["x", "y", "zz", "Xy", ""])),                    # s
    ),
    min_size=0, max_size=25,
)

comparison_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])


@st.composite
def predicates(draw):
    choice = draw(st.integers(0, 5))
    if choice == 0:
        op = draw(comparison_ops)
        value = draw(st.integers(-50, 50))
        return f"a {op} {value}"
    if choice == 1:
        op = draw(comparison_ops)
        value = draw(st.integers(0, 9))
        return f"b {op} {value}"
    if choice == 2:
        column = draw(st.sampled_from(["a", "b", "s"]))
        negated = draw(st.booleans())
        return f"{column} is {'not ' if negated else ''}null"
    if choice == 3:
        options = draw(st.lists(st.integers(-5, 5), min_size=1,
                                max_size=4))
        return f"a in ({', '.join(map(str, options))})"
    if choice == 4:
        low = draw(st.integers(-20, 10))
        high = draw(st.integers(-10, 20))
        return f"a between {low} and {high}"
    pattern = draw(st.sampled_from(["x%", "%y", "z_", "%", "x"]))
    return f"s like '{pattern}'"


@st.composite
def where_clauses(draw):
    parts = draw(st.lists(predicates(), min_size=1, max_size=3))
    joiner = draw(st.sampled_from([" and ", " or "]))
    return joiner.join(parts)


def run_sqlite(rows, sql):
    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE t (a INTEGER, b INTEGER, s TEXT)")
    connection.executemany("INSERT INTO t VALUES (?, ?, ?)", rows)
    cursor = connection.execute(sql)
    result = cursor.fetchall()
    connection.close()
    return result


def run_scratch(rows, sql):
    catalog = Catalog({"t": Relation(COLUMNS, rows)})
    return execute(sql, catalog).rows


def normalize(rows):
    return Counter(
        tuple(float(v) if isinstance(v, int) and not isinstance(v, bool)
              else v for v in row)
        for row in rows
    )


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, where=where_clauses())
def test_filter_agreement(rows, where):
    sql = f"select a, b, s from t where {where}"
    assert normalize(run_scratch(rows, sql)) \
        == normalize(run_sqlite(rows, sql))


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy)
def test_aggregate_agreement(rows):
    sql = ("select count(*), count(a), sum(a), min(a), max(a), avg(a) "
           "from t")
    assert normalize(run_scratch(rows, sql)) \
        == normalize(run_sqlite(rows, sql))


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy)
def test_group_by_agreement(rows):
    sql = ("select b, count(*), sum(a) from t group by b "
           "having count(*) >= 1")
    assert normalize(run_scratch(rows, sql)) \
        == normalize(run_sqlite(rows, sql))


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy)
def test_order_by_agreement(rows):
    # NULLS sort first ascending in both engines; add unique tiebreakers
    # to make the full ordering deterministic.
    sql = "select a, b, s from t order by a, b, s"
    assert run_scratch(rows, sql) == run_sqlite(rows, sql)


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, limit=st.integers(0, 30),
       offset=st.integers(0, 10))
def test_limit_offset_agreement(rows, limit, offset):
    sql = (f"select a from t order by a, b, s "
           f"limit {limit} offset {offset}")
    assert run_scratch(rows, sql) == run_sqlite(rows, sql)


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy, other=rows_strategy,
       op=st.sampled_from(["union", "union all", "intersect", "except"]))
def test_set_operation_agreement(rows, other, op):
    catalog = Catalog({"t": Relation(COLUMNS, rows),
                       "u": Relation(COLUMNS, other)})
    sql = f"select a, b from t {op} select a, b from u"

    connection = sqlite3.connect(":memory:")
    for name, data in (("t", rows), ("u", other)):
        connection.execute(
            f"CREATE TABLE {name} (a INTEGER, b INTEGER, s TEXT)")
        connection.executemany(
            f"INSERT INTO {name} VALUES (?, ?, ?)", data)
    expected = connection.execute(sql).fetchall()
    connection.close()

    assert normalize(execute(sql, catalog).rows) == normalize(expected)


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_distinct_agreement(rows):
    sql = "select distinct b from t"
    assert normalize(run_scratch(rows, sql)) \
        == normalize(run_sqlite(rows, sql))


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy, other=rows_strategy)
def test_join_agreement(rows, other):
    catalog = Catalog({"t": Relation(COLUMNS, rows),
                       "u": Relation(COLUMNS, other)})
    sql = ("select t.a, u.b from t join u on t.b = u.b")

    connection = sqlite3.connect(":memory:")
    for name, data in (("t", rows), ("u", other)):
        connection.execute(
            f"CREATE TABLE {name} (a INTEGER, b INTEGER, s TEXT)")
        connection.executemany(
            f"INSERT INTO {name} VALUES (?, ?, ?)", data)
    expected = connection.execute(sql).fetchall()
    connection.close()

    assert normalize(execute(sql, catalog).rows) == normalize(expected)


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_scalar_function_agreement(rows):
    sql = ("select abs(a), upper(s), lower(s), length(s), "
           "coalesce(a, b, 0), nullif(b, 3) from t")
    assert normalize(run_scratch(rows, sql)) \
        == normalize(run_sqlite(rows, sql))


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_cast_agreement(rows):
    # CAST of numerics agrees with SQLite (strings deliberately differ:
    # we raise on non-numeric strings where SQLite silently yields 0).
    sql = ("select cast(a as real), cast(b as integer), "
           "cast(a as text) from t where a is not null and b is not null")
    assert normalize(run_scratch(rows, sql)) \
        == normalize(run_sqlite(rows, sql))


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_case_expression_agreement(rows):
    sql = ("select case when a > 0 then 'pos' when a < 0 then 'neg' "
           "else 'zero-or-null' end from t")
    assert normalize(run_scratch(rows, sql)) \
        == normalize(run_sqlite(rows, sql))


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy, other=rows_strategy)
def test_in_subquery_agreement(rows, other):
    catalog = Catalog({"t": Relation(COLUMNS, rows),
                       "u": Relation(COLUMNS, other)})
    sql = "select a from t where b in (select b from u where b is not null)"

    connection = sqlite3.connect(":memory:")
    for name, data in (("t", rows), ("u", other)):
        connection.execute(
            f"CREATE TABLE {name} (a INTEGER, b INTEGER, s TEXT)")
        connection.executemany(
            f"INSERT INTO {name} VALUES (?, ?, ?)", data)
    expected = connection.execute(sql).fetchall()
    connection.close()

    assert normalize(execute(sql, catalog).rows) == normalize(expected)


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy, other=rows_strategy)
def test_left_join_agreement(rows, other):
    catalog = Catalog({"t": Relation(COLUMNS, rows),
                       "u": Relation(COLUMNS, other)})
    sql = "select t.a, u.a from t left join u on t.b = u.b"

    connection = sqlite3.connect(":memory:")
    for name, data in (("t", rows), ("u", other)):
        connection.execute(
            f"CREATE TABLE {name} (a INTEGER, b INTEGER, s TEXT)")
        connection.executemany(
            f"INSERT INTO {name} VALUES (?, ?, ?)", data)
    expected = connection.execute(sql).fetchall()
    connection.close()

    assert normalize(execute(sql, catalog).rows) == normalize(expected)
