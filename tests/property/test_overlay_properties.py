"""Property tests: the distributed directory is observationally
equivalent to the centralized one, under arbitrary operation sequences."""

from hypothesis import given, settings, strategies as st

from repro.network.directory import PeerDirectory
from repro.network.overlay import ChordRing, DistributedDirectory, ring_hash

containers = st.sampled_from([f"node-{i}" for i in range(6)])
sensors = st.sampled_from([f"s{i}" for i in range(8)])
keys = st.sampled_from(["type", "location", "owner"])
values = st.sampled_from(["a", "b", "c"])
predicate_maps = st.dictionaries(keys, values, max_size=3)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("publish"), containers, sensors, predicate_maps),
        st.tuples(st.just("unpublish"), containers, sensors),
        st.tuples(st.just("unpublish_container"), containers),
    ),
    min_size=0, max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(ops=operations, query=predicate_maps)
def test_distributed_equals_centralized(ops, query):
    distributed = DistributedDirectory()
    central = PeerDirectory()
    for i in range(6):
        distributed.add_peer(f"node-{i}")

    for op in ops:
        if op[0] == "publish":
            __, container, sensor, predicates = op
            distributed.publish(container, sensor, predicates)
            central.publish(container, sensor, predicates)
        elif op[0] == "unpublish":
            __, container, sensor = op
            distributed.unpublish(container, sensor)
            central.unpublish(container, sensor)
        else:
            __, container = op
            distributed.unpublish_container(container)
            central.unpublish_container(container)

    def view(directory, q):
        return sorted((e.container, e.sensor, e.predicates)
                      for e in directory.lookup(q))

    assert view(distributed, query) == view(central, query)
    assert view(distributed, {}) == view(central, {})
    assert len(distributed) == len(central)


@settings(max_examples=40, deadline=None)
@given(
    peer_count=st.integers(1, 24),
    churn=st.lists(st.integers(0, 23), max_size=8),
    probes=st.lists(st.text(alphabet="abcxyz", min_size=1, max_size=6),
                    min_size=1, max_size=10),
)
def test_ring_ownership_unique_under_churn(peer_count, churn, probes):
    """At every moment, each key has exactly one owner, and routing from
    any node reaches it."""
    ring = ChordRing()
    for i in range(peer_count):
        ring.join(f"p{i}")
    for victim in churn:
        ring.leave(f"p{victim}")  # no-op if already gone
    if not len(ring):
        return
    nodes = [ring._nodes[name] for name in ring.node_names()]
    for probe in probes:
        key = ring_hash(probe)
        owner = ring.owner_of(key)
        owners = [n for n in nodes
                  if ring._successor_id(key) == n.node_id]
        assert owners == [owner]
        for start in nodes[:4]:
            routed, __ = ring.route(start, key)
            assert routed is owner
