"""Property tests on descriptors, storage, directory, and integrity."""

from hypothesis import given, settings, strategies as st

from repro.access.integrity import IntegrityService
from repro.datatypes import DataType
from repro.descriptors.model import (
    AddressSpec, InputStreamSpec, LifeCycleConfig, StorageConfig,
    StreamSourceSpec, VirtualSensorDescriptor,
)
from repro.descriptors.xml_io import descriptor_from_xml, descriptor_to_xml
from repro.network.directory import PeerDirectory
from repro.storage.base import RetentionPolicy
from repro.storage.memory import MemoryStorage
from repro.storage.sqlite import SQLiteStorage
from repro.streams.element import StreamElement
from repro.streams.schema import Field, StreamSchema

names = st.text(alphabet="abcdefghij", min_size=1, max_size=8)
identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,7}", fullmatch=True)
predicate_values = st.text(
    alphabet="abcdefghij0123456789-_. ", min_size=1, max_size=12
).filter(lambda s: s.strip())


@st.composite
def descriptors(draw):
    field_names = draw(st.lists(identifiers, min_size=1, max_size=4,
                                unique=True))
    schema = StreamSchema([
        Field(name, draw(st.sampled_from(list(DataType))))
        for name in field_names
    ])
    alias = draw(identifiers)
    source = StreamSourceSpec(
        alias=alias,
        address=AddressSpec(
            draw(st.sampled_from(["mote", "camera", "rfid", "scripted"])),
            draw(st.dictionaries(identifiers, predicate_values,
                                 max_size=3)),
        ),
        query="select * from wrapper",
        sampling_rate=draw(st.floats(0.01, 1.0)),
        storage_size=draw(st.one_of(
            st.none(),
            st.integers(1, 100).map(str),
            st.integers(1, 100).map(lambda n: f"{n}s"),
        )),
        disconnect_buffer=draw(st.integers(0, 20)),
        slide=draw(st.one_of(
            st.none(),
            st.integers(1, 20).map(str),
            st.integers(1, 20).map(lambda n: f"{n}s"),
        )),
    )
    stream = InputStreamSpec(
        name=draw(identifiers),
        sources=(source,),
        query=f"select * from {alias}",
        rate=draw(st.floats(0, 100)),
        lifetime=draw(st.one_of(
            st.none(), st.integers(1, 100).map(lambda n: f"{n}m"))),
    )
    return VirtualSensorDescriptor(
        name=draw(st.from_regex(r"[a-z][a-z0-9_.-]{0,10}", fullmatch=True)),
        output_structure=schema,
        input_streams=(stream,),
        lifecycle=LifeCycleConfig(draw(st.integers(1, 32))),
        storage=StorageConfig(
            permanent=draw(st.booleans()),
            history_size=draw(st.one_of(
                st.none(), st.integers(1, 50).map(str))),
        ),
        addressing=draw(st.dictionaries(identifiers, predicate_values,
                                        max_size=3)),
        # XML 1.0 cannot carry control characters; descriptors are
        # hand-written config files, so printable text is the domain.
        description=draw(st.text(
            alphabet=st.characters(min_codepoint=0x20,
                                   max_codepoint=0x7E),
            max_size=20,
        )),
        priority=draw(st.integers(0, 20)),
    )


class TestDescriptorRoundtrip:
    @settings(max_examples=60, deadline=None)
    @given(descriptor=descriptors())
    def test_xml_roundtrip_is_identity(self, descriptor):
        assert descriptor_from_xml(descriptor_to_xml(descriptor)) \
            == descriptor


class TestStorageProperties:
    elements = st.lists(
        st.tuples(st.integers(0, 10_000), st.integers(-100, 100)),
        min_size=0, max_size=40,
    )

    @settings(max_examples=30, deadline=None)
    @given(data=elements, keep=st.integers(1, 10))
    def test_count_retention_keeps_newest(self, data, keep):
        schema = StreamSchema.build(v=DataType.INTEGER)
        for backend in (MemoryStorage(), SQLiteStorage(":memory:")):
            table = backend.create("s", schema,
                                   RetentionPolicy("count", keep))
            ordered = sorted(data)
            for stamp, value in ordered:
                table.append(StreamElement({"v": value}, timed=stamp))
            rows = table.relation().rows
            assert rows == [
                (value, stamp) for stamp, value in ordered[-keep:]
            ]
            backend.close()

    @settings(max_examples=30, deadline=None)
    @given(data=elements, span=st.integers(1, 2_000))
    def test_time_retention_equivalent_across_backends(self, data, span):
        schema = StreamSchema.build(v=DataType.INTEGER)
        results = []
        ordered = sorted(data)
        for backend in (MemoryStorage(), SQLiteStorage(":memory:")):
            table = backend.create("s", schema,
                                   RetentionPolicy("time", span))
            for stamp, value in ordered:
                table.append(StreamElement({"v": value}, timed=stamp))
            results.append(sorted(table.relation().rows))
            backend.close()
        assert results[0] == results[1]
        if ordered:
            newest = ordered[-1][0]
            assert all(stamp > newest - span for __, stamp in results[0])


class TestDirectoryProperties:
    entries = st.lists(
        st.tuples(names, names,
                  st.dictionaries(identifiers, predicate_values,
                                  max_size=3)),
        min_size=0, max_size=15,
    )

    @settings(max_examples=50, deadline=None)
    @given(entries=entries,
           query=st.dictionaries(identifiers, predicate_values, max_size=2))
    def test_lookup_matches_naive_filter(self, entries, query):
        directory = PeerDirectory()
        seen = {}
        for container, sensor, predicates in entries:
            directory.publish(container, sensor, predicates)
            seen[(container.lower(), sensor.lower())] = {
                k.lower(): v.lower() for k, v in predicates.items()
            }
        expected = {
            key for key, predicates in seen.items()
            if all(predicates.get(k.lower()) == v.lower()
                   for k, v in query.items())
        }
        found = {(e.container, e.sensor) for e in directory.lookup(query)}
        assert found == expected

    @settings(max_examples=30, deadline=None)
    @given(entries=entries)
    def test_unpublish_container_removes_exactly_its_entries(self, entries):
        directory = PeerDirectory()
        for container, sensor, predicates in entries:
            directory.publish(container, sensor, predicates)
        if not entries:
            return
        victim = entries[0][0].lower()
        directory.unpublish_container(victim)
        assert all(e.container != victim for e in directory.entries())


json_values = st.recursive(
    st.one_of(st.none(), st.booleans(), st.integers(-10**9, 10**9),
              st.floats(allow_nan=False, allow_infinity=False),
              st.text(max_size=15), st.binary(max_size=15)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


class TestIntegrityProperties:
    @settings(max_examples=50, deadline=None)
    @given(payload=st.dictionaries(st.text(min_size=1, max_size=8),
                                   json_values, max_size=5),
           encrypt=st.booleans())
    def test_seal_open_roundtrip(self, payload, encrypt):
        service = IntegrityService("node", b"k")

        def delistify(value):
            # JSON turns tuples into lists; normalize for comparison.
            if isinstance(value, tuple):
                return [delistify(v) for v in value]
            if isinstance(value, list):
                return [delistify(v) for v in value]
            if isinstance(value, dict):
                return {k: delistify(v) for k, v in value.items()}
            return value

        opened = service.open(service.seal(payload, encrypt=encrypt))
        assert opened == delistify(payload)

    @settings(max_examples=30, deadline=None)
    @given(payload=st.dictionaries(st.text(min_size=1, max_size=5),
                                   st.integers(), min_size=1, max_size=3),
           flip=st.integers(0, 10_000))
    def test_any_body_tamper_detected(self, payload, flip):
        import pytest
        from repro.access.integrity import SealedEnvelope
        from repro.exceptions import IntegrityError

        service = IntegrityService("node", b"k")
        envelope = service.seal(payload)
        index = flip % len(envelope.body)
        mutated = bytearray(envelope.body)
        mutated[index] ^= 0xFF
        tampered = SealedEnvelope(bytes(mutated), envelope.signature,
                                  envelope.nonce, envelope.encrypted,
                                  envelope.sender)
        with pytest.raises(IntegrityError):
            service.open(tampered)
