"""Compiled expressions must agree exactly with the interpreter.

Hypothesis generates predicate/expression trees (as SQL text, parsed to
AST); for every generated row, ``compile_expression(node)(ex, env)``
must produce the same value — including ``None``/three-valued results
and raised error types — as ``ex.eval(node, env)``.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.exceptions import SQLError
from repro.sqlengine.compiler import compile_expression
from repro.sqlengine.executor import Catalog, Env, LazyRow, _Executor
from repro.sqlengine.parser import parse_select
from repro.sqlengine.relation import Relation

COLUMNS = ("a", "b", "s")
INDEX = {name: i for i, name in enumerate(COLUMNS)}

rows_strategy = st.tuples(
    st.one_of(st.none(), st.integers(-50, 50)),
    st.one_of(st.none(), st.integers(0, 9)),
    st.one_of(st.none(), st.sampled_from(["x", "yy", "Z", ""])),
)

expression_texts = st.sampled_from([
    "a + b * 2",
    "a - b",
    "-a",
    "+a",
    "not (a > b)",
    "a > 0 and b < 5",
    "a > 0 or s = 'x'",
    "a = b or a <> b",
    "a is null",
    "s is not null",
    "a in (1, 2, 3)",
    "a not in (1, null)",
    "a between -10 and 10",
    "a not between b and 50",
    "s like 'x%'",
    "s not like '_'",
    "a || s",
    "abs(a)",
    "coalesce(a, b, 0)",
    "nullif(b, 3)",
    "length(s)",
    "upper(s) || lower(s)",
    "case when a > 0 then 'pos' when a < 0 then 'neg' else 'z' end",
    "case b when 1 then 'one' when 2 then 'two' end",
    "cast(a as double)",
    "cast(b as varchar)",
    "a / b",
    "a % b",
    "a / 0",
    "sqrt(a)",          # raises for negative a in both paths
    "'lit' = s",
])


def parse_expression(text):
    return parse_select(f"select {text} from t").items[0].expression


def outcomes(fn):
    try:
        return ("value", fn())
    except SQLError as exc:
        return ("error", type(exc).__name__)


@settings(max_examples=300, deadline=None)
@given(text=expression_texts, row=rows_strategy)
def test_compiled_matches_interpreted(text, row):
    node = parse_expression(text)
    executor = _Executor(Catalog({"t": Relation(COLUMNS, [row])}))
    env = Env.root({"t": LazyRow(INDEX, row)})

    interpreted = outcomes(lambda: executor.eval(node, env))
    compiled_fn = compile_expression(node)
    compiled = outcomes(lambda: compiled_fn(executor, env))

    assert compiled == interpreted


@settings(max_examples=50, deadline=None)
@given(row=rows_strategy)
def test_subquery_fallback_matches(row):
    node = parse_expression(
        "a in (select b from t) and exists (select 1 from t where b = 1)"
    )
    executor = _Executor(Catalog({"t": Relation(COLUMNS, [row])}))
    env = Env.root({"t": LazyRow(INDEX, row)})
    assert outcomes(lambda: compile_expression(node)(executor, env)) \
        == outcomes(lambda: executor.eval(node, env))


def test_compiled_closure_is_reusable_across_executors():
    node = parse_expression("a + 1")
    fn = compile_expression(node)
    for value in (1, 2, 30):
        executor = _Executor(Catalog())
        env = Env.root({"t": LazyRow(INDEX, (value, None, None))})
        assert fn(executor, env) == value + 1


def test_plan_level_caching_attaches_closures():
    from repro.sqlengine.planner import plan_select
    from repro.sqlengine.executor import execute_plan

    catalog = Catalog({"t": Relation(COLUMNS, [(1, 2, "x")])})
    plan = plan_select(parse_select("select a from t where a > 0"))
    assert not hasattr(plan, "_c_where")
    execute_plan(plan, catalog)
    first = plan._c_where
    execute_plan(plan, catalog)
    assert plan._c_where is first  # compiled once, reused
