"""Property: the incremental pipeline is row-for-row equivalent to the
legacy rebuild pipeline.

Two sensors are built from descriptors that differ only in
``StorageConfig.incremental`` and driven through the same random
operation sequence — emissions with jittered (out-of-order and future)
timestamps, clock advances, disconnect/reconnect cycles — and every
output element (values and timestamp) must match exactly.

Values are integers so sums/averages are bit-exact on both paths.
"""

from hypothesis import given, settings, strategies as st

from repro.datatypes import DataType
from repro.descriptors.model import (
    AddressSpec, InputStreamSpec, StorageConfig, StreamSourceSpec,
    VirtualSensorDescriptor,
)
from repro.gsntime.clock import VirtualClock
from repro.storage.base import RetentionPolicy
from repro.storage.memory import MemoryStorage
from repro.streams.schema import StreamSchema
from repro.vsensor.virtual_sensor import VirtualSensor
from repro.wrappers.scripted import ScriptedWrapper

SCHEMA = StreamSchema.build(temperature=DataType.INTEGER)

START = 10_000

values = st.one_of(st.none(), st.integers(-50, 50))
jitters = st.integers(-2_500, 2_500)
selectors = st.integers(0, 1)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("emit"), selectors, values, jitters),
        st.tuples(st.just("advance"), st.integers(1, 3_000)),
        st.tuples(st.just("disconnect"), selectors),
        st.tuples(st.just("reconnect"), selectors),
    ),
    min_size=1, max_size=25,
)


def make_descriptor(source_specs, stream_query, output_fields,
                    incremental):
    return VirtualSensorDescriptor(
        name="equiv",
        output_structure=StreamSchema.build(**output_fields),
        input_streams=(InputStreamSpec(
            name="in",
            sources=tuple(
                StreamSourceSpec(
                    alias=alias, address=AddressSpec("scripted"),
                    query=query, storage_size=window,
                    disconnect_buffer=4,
                )
                for alias, window, query in source_specs
            ),
            query=stream_query,
        ),),
        storage=StorageConfig(incremental=incremental),
    )


def run_ops(descriptor, aliases, ops):
    """Drive one sensor through the op sequence; return its outputs."""
    clock = VirtualClock(START)
    wrappers = {}
    for alias in aliases:
        wrapper = ScriptedWrapper()
        wrapper.script(lambda now: None, SCHEMA)
        wrapper.attach(clock)
        wrapper.configure({})
        wrappers[alias] = wrapper
    table = MemoryStorage().create("out", descriptor.output_structure,
                                   RetentionPolicy("all"))
    sensor = VirtualSensor(descriptor, clock, wrappers,
                           output_table=table)
    outputs = []
    sensor.add_listener(
        lambda el, sink=outputs: sink.append((el.timed, dict(el.values)))
    )
    sensor.start()
    for op in ops:
        kind = op[0]
        if kind == "emit":
            alias = aliases[op[1] % len(aliases)]
            wrappers[alias].emit({"temperature": op[2]},
                                 timed=clock.now() + op[3])
        elif kind == "advance":
            clock.advance(op[1])
        elif kind == "disconnect":
            alias = aliases[op[1] % len(aliases)]
            sensor.ism.stream("in").source(alias).disconnect()
        elif kind == "reconnect":
            alias = aliases[op[1] % len(aliases)]
            sensor.ism.stream("in").source(alias).reconnect()
    return outputs, sensor


def assert_equivalent(source_specs, stream_query, output_fields, ops,
                      aliases=("src",)):
    inc = make_descriptor(source_specs, stream_query, output_fields,
                          incremental=True)
    leg = make_descriptor(source_specs, stream_query, output_fields,
                          incremental=False)
    inc_out, inc_sensor = run_ops(inc, aliases, ops)
    leg_out, leg_sensor = run_ops(leg, aliases, ops)
    assert inc_out == leg_out
    assert inc_sensor.elements_produced == leg_sensor.elements_produced
    leg_counters = leg_sensor.fast_paths.snapshot()
    assert leg_counters["identity_hits"] == 0
    assert leg_counters["aggregate_hits"] == 0
    assert leg_counters["cache_hits"] == 0
    return inc_sensor.fast_paths.snapshot()


AGG_FIELDS = {
    "n": DataType.INTEGER, "c": DataType.INTEGER, "s": DataType.INTEGER,
    "a": DataType.DOUBLE, "lo": DataType.INTEGER, "hi": DataType.INTEGER,
}
AGG_QUERY = (
    "select count(*) as n, count(temperature) as c, "
    "sum(temperature) as s, avg(temperature) as a, "
    "min(temperature) as lo, max(temperature) as hi from wrapper"
)

GROUP_FIELDS = {
    "temperature": DataType.INTEGER, "n": DataType.INTEGER,
    "s": DataType.INTEGER, "lo": DataType.INTEGER,
}
GROUP_QUERY = (
    "select temperature, count(*) as n, sum(temperature) as s, "
    "min(temperature) as lo from wrapper group by temperature"
)


class TestIncrementalEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(ops=operations)
    def test_count_window_aggregates(self, ops):
        assert_equivalent(
            [("src", "4", AGG_QUERY)], "select * from src", AGG_FIELDS,
            ops,
        )

    @settings(max_examples=60, deadline=None)
    @given(ops=operations)
    def test_count_window_aggregates_with_where(self, ops):
        assert_equivalent(
            [("src", "5",
              AGG_QUERY + " where temperature >= 5")],
            "select * from src", AGG_FIELDS, ops,
        )

    @settings(max_examples=60, deadline=None)
    @given(ops=operations)
    def test_identity_over_count_window(self, ops):
        assert_equivalent(
            [("src", "6", "select * from wrapper")],
            "select temperature, timed from src",
            {"temperature": DataType.INTEGER},
            ops,
        )

    @settings(max_examples=60, deadline=None)
    @given(ops=operations)
    def test_time_window_with_out_of_order_arrivals(self, ops):
        # Time-window aggregates ride the accumulators too (eviction
        # arrives through the same observer protocol); out-of-order and
        # future-stamped elements exercise the faithfulness checks.
        assert_equivalent(
            [("src", "2s", AGG_QUERY)], "select * from src", AGG_FIELDS,
            ops,
        )

    @settings(max_examples=60, deadline=None)
    @given(ops=operations)
    def test_grouped_aggregates_over_count_window(self, ops):
        assert_equivalent(
            [("src", "4", GROUP_QUERY)], "select * from src",
            GROUP_FIELDS, ops,
        )

    @settings(max_examples=60, deadline=None)
    @given(ops=operations)
    def test_grouped_aggregates_over_time_window(self, ops):
        assert_equivalent(
            [("src", "3s", GROUP_QUERY)], "select * from src",
            GROUP_FIELDS, ops,
        )

    @settings(max_examples=60, deadline=None)
    @given(ops=operations)
    def test_equi_join_over_mixed_windows(self, ops):
        # Identity sources + a two-source equi-join stream query: the
        # delta-maintained join (when it can serve the trigger) and the
        # compiled/legacy re-execution must agree element for element.
        assert_equivalent(
            [("a", "3", "select * from wrapper"),
             ("b", "2s", "select * from wrapper")],
            "select a.temperature as ta, b.temperature as tb "
            "from a join b on a.temperature = b.temperature "
            "where a.temperature > -25",
            {"ta": DataType.INTEGER, "tb": DataType.INTEGER},
            ops,
            aliases=("a", "b"),
        )

    @settings(max_examples=60, deadline=None)
    @given(ops=operations)
    def test_multi_source_single_firing(self, ops):
        # Only one source fires per emission: the idle source's
        # temporary must be served from the cache on the incremental
        # path and still join identically.
        assert_equivalent(
            [("a", "3", "select min(temperature) as lo from wrapper"),
             ("b", "5", "select max(temperature) as hi from wrapper")],
            "select a.lo as lo, b.hi as hi from a, b",
            {"lo": DataType.INTEGER, "hi": DataType.INTEGER},
            ops,
            aliases=("a", "b"),
        )
