"""Property-based tests on core data structures and invariants."""

from hypothesis import given, strategies as st

from repro.gsntime.duration import format_duration, parse_duration
from repro.streams.element import StreamElement
from repro.streams.window import CountWindow, TimeWindow

timestamps = st.integers(0, 10**12)


class TestDurationProperties:
    @given(millis=st.integers(0, 10**10))
    def test_format_parse_roundtrip(self, millis):
        assert parse_duration(format_duration(millis)).millis == millis

    @given(a=st.integers(0, 10**6), b=st.integers(0, 10**6))
    def test_addition_consistent(self, a, b):
        from repro.gsntime.duration import Duration
        assert (Duration(a) + Duration(b)).millis == a + b


class TestCountWindowProperties:
    @given(size=st.integers(1, 20),
           stamps=st.lists(timestamps, min_size=0, max_size=60))
    def test_never_exceeds_capacity_and_keeps_suffix(self, size, stamps):
        window = CountWindow(size)
        for stamp in stamps:
            window.append(StreamElement({"v": 1}, timed=stamp))
        held = [e.timed for e in window.contents()]
        assert len(held) <= size
        assert held == stamps[-size:] if stamps else held == []


class TestTimeWindowProperties:
    @given(span=st.integers(1, 1_000),
           stamps=st.lists(st.integers(0, 5_000), min_size=0, max_size=60))
    def test_contents_match_naive_model(self, span, stamps):
        """The optimized window equals the obvious definition:
        {t : now - span < t <= now} with now = max(seen)."""
        window = TimeWindow(span)
        for stamp in stamps:
            window.append(StreamElement({"v": 1}, timed=stamp))
        if not stamps:
            assert window.contents() == []
            return
        now = max(stamps)
        expected = sorted(t for t in stamps if now - span < t <= now)
        held = sorted(e.timed for e in window.contents())
        assert held == expected

    @given(span=st.integers(1, 1_000),
           stamps=st.lists(st.integers(0, 5_000), min_size=1, max_size=60),
           probe=st.integers(0, 6_000))
    def test_reference_time_bounds_contents(self, span, stamps, probe):
        window = TimeWindow(span)
        for stamp in stamps:
            window.append(StreamElement({"v": 1}, timed=stamp))
        held = [e.timed for e in window.contents(now=probe)]
        assert all(probe - span < t <= probe for t in held)


class TestElementProperties:
    payloads = st.dictionaries(
        st.text(alphabet="abcdefgh", min_size=1, max_size=6),
        st.one_of(st.none(), st.integers(-10**6, 10**6),
                  st.floats(allow_nan=False, allow_infinity=False),
                  st.text(max_size=10), st.binary(max_size=10)),
        min_size=1, max_size=5,
    )

    @given(values=payloads, timed=timestamps)
    def test_immutability_of_derivation(self, values, timed):
        original = StreamElement(values)
        stamped = original.with_timestamp(timed)
        assert original.timed is None
        assert stamped.timed == timed
        assert stamped.values == original.values

    @given(values=payloads, timed=timestamps)
    def test_as_row_contains_every_field_plus_timed(self, values, timed):
        element = StreamElement(values, timed=timed)
        row = element.as_row()
        assert row["timed"] == timed
        for key in values:
            assert key.lower() in row

    @given(values=payloads)
    def test_payload_size_nonnegative_and_additive(self, values):
        element = StreamElement(values)
        assert element.payload_size() >= 0
        total = sum(
            StreamElement({k: v}).payload_size()
            for k, v in values.items()
        )
        assert element.payload_size() == total
