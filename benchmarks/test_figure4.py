"""Benchmark regenerating Figure 4: query processing latency vs clients.

Registers N random standing queries (N swept 0..500 as in the paper,
SES = 32 KB) and measures the total time to evaluate the whole client set
on one data arrival. Asserts the paper's qualitative shape: total time
grows roughly linearly while the per-client cost stays bounded.
"""

from __future__ import annotations

from benchmarks.conftest import register_report
from repro.experiments.figure4 import run_figure4

BENCH_CLIENT_COUNTS = (0, 50, 100, 200, 300, 400, 500)


def test_figure4_sweep(benchmark) -> None:
    result = benchmark.pedantic(
        run_figure4,
        kwargs={"client_counts": BENCH_CLIENT_COUNTS, "seed": 7},
        rounds=1, iterations=1,
    )
    register_report(
        "Figure 4 — query processing latency in a GSN node (SES=32KB)",
        result.table() + "\n\n" + result.plot(),
    )
    assert result.shape_holds(), result.table()

    points = dict(result.series.points)

    # An arrival with no registered clients must cost ~nothing.
    assert points[0] < 5.0, "zero-client round should be near-free"

    # Paper: "the processing time per client while handling 500 clients is
    # less than 1 millisecond" — ours must stay in the same regime.
    assert points[500] / 500 < 5.0, (
        f"per-client cost blew up: {points[500] / 500:.3f} ms"
    )

    # Overall upward trend in the steady (non-burst) rounds.
    steady = [(c, t) for c, t in result.series.points
              if c not in result.burst_rounds]
    totals = [t for __, t in steady]
    counts = [c for c, __ in steady]
    assert totals[-1] > totals[0]
    assert totals[counts.index(max(counts))] >= 0.5 * max(totals)
