"""The paper's wrapper-effort claim, measured.

Section 5: "The effort to implement wrappers is quite low, i.e., typically
around 100-200 lines of Java code. For example, the TinyOS wrapper
required 150 lines of code." This benchmark counts the non-blank,
non-comment lines of every bundled wrapper and checks they stay in that
small-integration regime.
"""

from __future__ import annotations

import inspect
from typing import Dict

from benchmarks.conftest import register_report
from repro.metrics.report import format_table
from repro.wrappers import (
    camera, generator, motes, remote, replay, rfid, scripted,
)

WRAPPER_MODULES = {
    "mote (TinyOS family)": motes,
    "rfid": rfid,
    "camera": camera,
    "remote": remote,
    "replay": replay,
    "scripted + system-clock": scripted,
    "generator": generator,
}


def _loc(module) -> int:
    """Non-blank, non-comment, non-docstring lines of code."""
    source = inspect.getsource(module)
    count = 0
    in_doc = False
    for raw in source.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if in_doc:
            if line.endswith('"""') or line.endswith("'''"):
                in_doc = False
            continue
        if line.startswith(('"""', "'''")):
            quote = line[:3]
            body = line[3:]
            if not (body.endswith(quote) and len(body) >= 3) \
                    and not line == quote * 2:
                if not body.endswith(quote):
                    in_doc = True
            continue
        count += 1
    return count


def count_all() -> Dict[str, int]:
    return {name: _loc(module) for name, module in WRAPPER_MODULES.items()}


def test_wrapper_loc(benchmark) -> None:
    counts = benchmark.pedantic(count_all, rounds=1, iterations=1)
    register_report(
        "Wrapper size claim (paper: 100-200 LoC per wrapper, TinyOS: 150)",
        format_table(("wrapper", "lines_of_code"),
                     sorted(counts.items())),
    )
    for name, loc in counts.items():
        assert 10 <= loc <= 220, (
            f"wrapper {name!r} is {loc} LoC; the small-wrapper claim "
            f"(~100-200 LoC) must hold for the Python port too"
        )
