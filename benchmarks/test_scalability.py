"""Scalability benchmarks (the paper's design-goal claims).

- sensors per node: per-element pipeline cost must stay ~flat as one
  container hosts more virtual sensors;
- peer-network chains: delivery must stay lossless as streams hop
  across more nodes.
"""

from __future__ import annotations

from benchmarks.conftest import register_report
from repro.experiments.scalability import (
    sweep_network_size, sweep_sensors_per_node,
)


def test_sensors_per_node_flat(benchmark) -> None:
    result = benchmark.pedantic(
        sweep_sensors_per_node,
        kwargs={"sensor_counts": (1, 4, 16, 64)},
        rounds=1, iterations=1,
    )
    register_report("Scalability — sensors per node (mean ms/element)",
                    result.table())
    ys = result.series.ys()
    assert all(y > 0 for y in ys)
    # Flat within a small factor: hosting 64 sensors must not make each
    # element more than ~4x as expensive as hosting one.
    assert max(ys) <= 4.0 * min(ys), f"per-element cost not flat: {ys}"


def test_overlay_hops_logarithmic(benchmark) -> None:
    """Distributed-directory routing must scale O(log n) in peers."""
    import math

    from repro.network.overlay import ChordRing, ring_hash

    def sweep():
        means = {}
        for peers in (8, 32, 128, 512):
            ring = ChordRing()
            nodes = [ring.join(f"peer-{i}") for i in range(peers)]
            ring.total_hops = 0
            ring.lookups_routed = 0
            for start in nodes[:32]:
                for probe in range(16):
                    ring.route(start, ring_hash(f"probe-{probe}"))
            means[peers] = ring.total_hops / ring.lookups_routed
        return means

    means = benchmark.pedantic(sweep, rounds=1, iterations=1)
    register_report(
        "Scalability — overlay routing (mean hops per lookup)",
        "\n".join(f"  {peers:>4} peers: {hops:.2f} hops"
                  for peers, hops in means.items()),
    )
    for peers, hops in means.items():
        assert hops <= 1.5 * math.log2(peers), (
            f"{peers} peers: {hops:.2f} hops exceeds O(log n)"
        )
    # Growing the ring 64x must grow hops by far less than 64x.
    assert means[512] <= 4 * means[8]


def test_network_chain_lossless(benchmark) -> None:
    result, deliveries = benchmark.pedantic(
        sweep_network_size,
        kwargs={"node_counts": (2, 4, 8)},
        rounds=1, iterations=1,
    )
    register_report(
        "Scalability — peer chains (elements reaching the chain tail)",
        result.table() + f"\nbus deliveries: {deliveries}",
    )
    tails = result.series.ys()
    # Same element count must reach the tail regardless of chain length.
    assert len(set(tails)) == 1, f"chain length changed delivery: {tails}"
    assert tails[0] > 0
    # Traffic grows with chain length (each hop forwards).
    assert deliveries == sorted(deliveries)
