"""Shared benchmark plumbing.

Figure benchmarks register their regenerated tables here; a terminal
summary hook prints them after the pytest-benchmark timing tables, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures
both the timings and the figure data the paper plots.

Micro-benchmarks additionally register machine-readable metrics with
:func:`register_metric`; a session-finish hook persists them to
``BENCH_micro.json`` at the repo root so CI can archive the numbers and
the incremental-vs-legacy speedup is tracked across revisions.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Tuple

_REPORTS: List[Tuple[str, str]] = []
_METRICS: Dict[str, Any] = {}


def register_report(title: str, body: str) -> None:
    """Queue a rendered figure/table for the end-of-run summary."""
    _REPORTS.append((title, body))


def register_metric(name: str, payload: Any) -> None:
    """Record one machine-readable measurement for BENCH_micro.json."""
    _METRICS[name] = payload


def pytest_sessionfinish(session, exitstatus) -> None:
    if not _METRICS:
        return
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(root, "BENCH_micro.json")
    with open(path, "w") as handle:
        json.dump(_METRICS, handle, indent=2, sort_keys=True)
        handle.write("\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config) -> None:
    if not _REPORTS:
        return
    terminalreporter.section("reproduced paper figures")
    for title, body in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(title)
        terminalreporter.write_line("-" * len(title))
        for line in body.splitlines():
            terminalreporter.write_line(line)
