"""Shared benchmark plumbing.

Figure benchmarks register their regenerated tables here; a terminal
summary hook prints them after the pytest-benchmark timing tables, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures
both the timings and the figure data the paper plots.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

_REPORTS: List[Tuple[str, str]] = []


def register_report(title: str, body: str) -> None:
    """Queue a rendered figure/table for the end-of-run summary."""
    _REPORTS.append((title, body))


def pytest_terminal_summary(terminalreporter, exitstatus, config) -> None:
    if not _REPORTS:
        return
    terminalreporter.section("reproduced paper figures")
    for title, body in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(title)
        terminalreporter.write_line("-" * len(title))
        for line in body.splitlines():
            terminalreporter.write_line(line)
