#!/usr/bin/env python3
"""Gate BENCH_micro.json against the budgets and the recorded baseline.

Run after ``pytest benchmarks/test_micro.py`` has written
``BENCH_micro.json`` at the repo root. Fails (exit 1) when:

- a delta-maintained workload's speedup falls under its floor (every
  doc carrying a ``speedup`` key is gated; the default floor is 5x,
  group-by and time-window workloads claim 10x),
- a workload regresses more than 20% against the speedup recorded in
  ``benchmarks/baseline.json`` (ratios, so the check is
  machine-independent),
- the incremental fast path covers fewer workloads than the baseline
  records, or gsn-plan's static coverage over the shipped examples
  fleet drops below the recorded percentage,
- the traced span protocol exceeds its 10%-of-a-trigger budget (the
  end-to-end sampled-vs-unsampled difference also has a loose 25%
  noise bound), or static verdicts start costing the hot path more
  than 2000 ns per trigger,
- continuous profiling at the default rate costs more than its 2%
  share of profiled wall time (measured or projected),
- the race witness's per-trigger path (guard checks plus tracked lock
  cycles, measured in isolation) exceeds 2% of the reference pipeline
  trigger, or its end-to-end armed-vs-bare difference leaves the 10%
  noise bound,
- batched ingestion (``BENCH_ingest.json``, merged when present) loses
  its 5x throughput floor over per-tuple delivery, or the event-loop
  lag witness costs more than 2% of loop wall time.
"""

from __future__ import annotations

import json
import os
import sys
from typing import List

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REGRESSION_FACTOR = 0.8  # >20% slowdown vs the recorded baseline fails


def check(metrics: dict, baseline: dict) -> List[str]:
    failures: List[str] = []

    for name, doc in sorted(metrics.items()):
        if not isinstance(doc, dict):
            continue
        if "speedup" in doc:
            floor = doc.get("floor", 5)
            print(f"{name}: {doc['speedup']:.1f}x "
                  f"({doc['legacy_ms']:.3f} ms -> "
                  f"{doc['incremental_ms']:.3f} ms, floor {floor}x)")
            if doc["speedup"] < floor:
                failures.append(f"{name} below its {floor}x floor "
                                f"({doc['speedup']:.1f}x)")
        if "compiled_speedup" in doc:
            print(f"{name}: compiled {doc['compiled_speedup']:.1f}x "
                  f"({doc['interpreted_ms']:.3f} ms -> "
                  f"{doc['compiled_ms']:.3f} ms)")
        if "overhead_pct" in doc:
            print(f"{name}: traced path "
                  f"{doc['traced_pct_of_trigger']:.1f}% of a trigger, "
                  f"+{doc['overhead_pct']:.1f}% end to end, "
                  f"{doc['untraced_path_ns']:.0f} ns when off")
            if doc["traced_pct_of_trigger"] > 10:
                failures.append(f"{name} above the 10% tracing budget")
            if doc["overhead_pct"] > 25:
                failures.append(
                    f"{name}: end-to-end tracing overhead is beyond "
                    "measurement noise")
        if "profiler_overhead_pct" in doc:
            budget = doc.get("budget_pct", 2.0)
            print(f"{name}: {doc['profiler_overhead_pct']:.2f}% of wall "
                  f"at {doc['hz']:.0f} Hz "
                  f"(projected {doc['projected_pct']:.2f}%, "
                  f"budget {budget}%)")
            if doc["profiler_overhead_pct"] > budget:
                failures.append(
                    f"{name}: continuous profiling costs "
                    f"{doc['profiler_overhead_pct']:.2f}% of wall time "
                    f"(budget {budget}%)")
            if doc["projected_pct"] > budget:
                failures.append(
                    f"{name}: projected sweep cost "
                    f"{doc['projected_pct']:.2f}% is over the "
                    f"{budget}% budget")
        if "witness_pct_of_trigger" in doc:
            budget = doc.get("budget_pct", 2.0)
            print(f"{name}: witness path "
                  f"{doc['witness_pct_of_trigger']:.2f}% of a trigger "
                  f"({doc['witness_path_ns']:.0f} ns, "
                  f"{doc['checks_per_trigger']:.0f} checks + "
                  f"{doc['lock_cycles_per_trigger']:.0f} tracked cycles), "
                  f"+{doc['witness_overhead_pct']:.1f}% end to end, "
                  f"budget {budget}%")
            if doc["witness_pct_of_trigger"] > budget:
                failures.append(
                    f"{name}: race witness path costs "
                    f"{doc['witness_pct_of_trigger']:.2f}% of a trigger "
                    f"(budget {budget}%)")
            if doc["witness_overhead_pct"] > 10:
                failures.append(
                    f"{name}: end-to-end race-witness overhead is "
                    "beyond measurement noise")
        if "ingest_speedup" in doc:
            floor = doc.get("floor", 5)
            print(f"{name}: batched ingest {doc['ingest_speedup']:.1f}x "
                  f"({doc['per_tuple_tuples_per_s']:.0f} -> "
                  f"{doc['batched_tuples_per_s']:.0f} tuples/s, "
                  f"floor {floor}x)")
            if doc["ingest_speedup"] < floor:
                failures.append(
                    f"{name} below its {floor}x batching floor "
                    f"({doc['ingest_speedup']:.1f}x)")
        if "loop_witness_overhead_pct" in doc:
            budget = doc.get("budget_pct", 2.0)
            print(f"{name}: loop-lag witness "
                  f"{doc['loop_witness_overhead_pct']:.2f}% of loop wall "
                  f"(budget {budget}%)")
            if doc["loop_witness_overhead_pct"] > budget:
                failures.append(
                    f"{name}: loop-lag witness costs "
                    f"{doc['loop_witness_overhead_pct']:.2f}% of loop "
                    f"wall time (budget {budget}%)")
        if "per_trigger_overhead_ns" in doc:
            print(f"{name}: {doc['deploy_verdict_us']:.0f} us per deploy, "
                  f"{doc['per_trigger_overhead_ns']:.0f} ns per trigger")
            if doc["per_trigger_overhead_ns"] > 2000:
                failures.append(
                    f"{name}: static verdicts must not cost the hot path")

    for name, recorded in sorted(baseline.get("speedups", {}).items()):
        doc = metrics.get(name)
        if doc is None or "speedup" not in doc:
            failures.append(f"{name}: baseline workload missing from "
                            "BENCH_micro.json")
            continue
        required = recorded * REGRESSION_FACTOR
        if doc["speedup"] < required:
            failures.append(
                f"{name} regressed: {doc['speedup']:.1f}x < "
                f"{required:.1f}x (80% of the recorded {recorded}x)")

    recorded_pct = baseline["fast_path_static_coverage"]["examples_percent"]
    coverage = metrics.get("fast_path_static_coverage", {})
    current_pct = coverage.get("examples_percent", 0.0)
    print(f"examples static coverage: {current_pct}% "
          f"(baseline {recorded_pct}%)")
    if current_pct < recorded_pct:
        failures.append(
            f"static fast-path coverage regressed: {current_pct}% < "
            f"recorded {recorded_pct}%")

    recorded_workloads = set(baseline.get("fast_path_workloads", ()))
    current_workloads = set(
        metrics.get("matrix_fast_path_workloads", {}).get("workloads", ()))
    missing = sorted(recorded_workloads - current_workloads)
    if missing:
        failures.append(
            "fast-path coverage regressed; workloads no longer "
            f"delta-maintained: {', '.join(missing)}")

    return failures


def main() -> int:
    with open(os.path.join(ROOT, "BENCH_micro.json")) as handle:
        metrics = json.load(handle)
    ingest_path = os.path.join(ROOT, "BENCH_ingest.json")
    if os.path.exists(ingest_path):
        with open(ingest_path) as handle:
            metrics.update(json.load(handle))
    with open(os.path.join(ROOT, "benchmarks", "baseline.json")) as handle:
        baseline = json.load(handle)
    failures = check(metrics, baseline)
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nall benchmark gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
