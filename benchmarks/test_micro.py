"""Micro-benchmarks of the hot paths the experiments stress.

These timings give the per-operation baselines behind the figure-level
results: SQL execution (scan/filter/aggregate/join), the full virtual-
sensor pipeline per element, and the end-to-end throughput claim ("GSN
can tolerate high rates").
"""

from __future__ import annotations

import dataclasses
from time import perf_counter

import pytest

from repro.container import GSNContainer
from repro.datatypes import DataType
from repro.descriptors.model import (
    AddressSpec, InputStreamSpec, StreamSourceSpec,
    VirtualSensorDescriptor,
)
from repro.gsntime.clock import VirtualClock
from repro.metrics.tracing import PipelineTracer, TraceBuffer
from repro.simulation.workload import payload_descriptor
from repro.sqlengine.executor import Catalog, execute, execute_plan
from repro.sqlengine.parser import parse_select
from repro.sqlengine.planner import plan_select
from repro.sqlengine.relation import Relation
from repro.storage.base import RetentionPolicy
from repro.storage.memory import MemoryStorage
from repro.streams.schema import StreamSchema
from repro.vsensor.virtual_sensor import VirtualSensor
from repro.wrappers.scripted import ScriptedWrapper

from benchmarks.conftest import register_metric


@pytest.fixture(scope="module")
def catalog() -> Catalog:
    rows = [
        {"id": i, "grp": i % 10, "value": (i * 37) % 1000,
         "timed": 1_000_000 + i}
        for i in range(5_000)
    ]
    left = Relation.from_dicts(("id", "grp", "value", "timed"), rows)
    right = Relation.from_dicts(
        ("grp", "label"),
        [{"grp": g, "label": f"group-{g}"} for g in range(10)],
    )
    return Catalog({"t": left, "g": right})


def test_sql_filter_scan(benchmark, catalog) -> None:
    result = benchmark(
        execute, "select id, value from t where value > 500", catalog
    )
    assert len(result) > 0


def test_sql_aggregate(benchmark, catalog) -> None:
    result = benchmark(
        execute,
        "select grp, count(*) as n, avg(value) as m from t group by grp",
        catalog,
    )
    assert len(result) == 10


def test_sql_hash_join(benchmark, catalog) -> None:
    plan = plan_select(parse_select(
        "select t.id, g.label from t join g on t.grp = g.grp "
        "where t.value < 100"
    ))
    result = benchmark(execute_plan, plan, catalog)
    assert len(result) > 0


def test_sql_order_limit(benchmark, catalog) -> None:
    result = benchmark(
        execute, "select * from t order by value desc limit 50", catalog
    )
    assert len(result) == 50


def test_plan_compile(benchmark) -> None:
    sql = ("select grp, count(*) as n from t "
           "where value between 10 and 900 and grp in (1, 2, 3) "
           "group by grp having count(*) > 5 order by n desc")
    plan = benchmark(lambda: plan_select(parse_select(sql)))
    assert plan is not None


def test_pipeline_element_cost(benchmark) -> None:
    """Cost of one full pipeline pass (steps 1-5) on a running sensor."""
    with GSNContainer("micro") as node:
        node.deploy(payload_descriptor("s", 1, 100, 1_024, window="2s"))
        node.run_for(2_000)  # warm the window
        sensor = node.sensor("s")
        wrapper = sensor.wrappers["src"]

        def one_element():
            wrapper.tick()

        benchmark(one_element)
        assert sensor.elements_produced > 0


# -- incremental hot path ----------------------------------------------------

_AGG_QUERY = ("select count(*) as n, sum(v) as s, avg(v) as a, "
              "min(v) as lo, max(v) as hi from wrapper")
_AGG_FIELDS = dict(n=DataType.INTEGER, s=DataType.INTEGER,
                   a=DataType.DOUBLE, lo=DataType.INTEGER,
                   hi=DataType.INTEGER)


def _sensor_descriptor(source_specs, stream_query, output_fields=None):
    return VirtualSensorDescriptor(
        name="bench",
        output_structure=StreamSchema.build(**(output_fields
                                               or _AGG_FIELDS)),
        input_streams=(InputStreamSpec(
            name="in",
            sources=tuple(
                StreamSourceSpec(alias=alias,
                                 address=AddressSpec("scripted"),
                                 query=query, storage_size=window)
                for alias, window, query in source_specs
            ),
            query=stream_query,
        ),),
    )


def _build_sensor(descriptor, aliases, incremental,
                  producer=None, schema=None):
    clock = VirtualClock(1_000_000)
    wrappers = {}
    for alias in aliases:
        wrapper = ScriptedWrapper()
        wrapper.script(producer or (lambda now: {"v": (now * 37) % 1_000}),
                       schema or StreamSchema.build(v=DataType.INTEGER))
        wrapper.attach(clock)
        wrapper.configure({})
        wrappers[alias] = wrapper
    table = MemoryStorage().create("out", descriptor.output_structure,
                                   RetentionPolicy("count", 1_000))
    sensor = VirtualSensor(descriptor, clock, wrappers,
                           output_table=table, incremental=incremental)
    sensor.start()
    return sensor, wrappers, clock


def _per_trigger_seconds(descriptor, aliases, incremental,
                         fire, warmup=1_000, ticks=200,
                         producer=None, schema=None):
    """Mean wall-clock seconds of one trigger after the window is full."""
    sensor, wrappers, clock = _build_sensor(descriptor, aliases,
                                            incremental,
                                            producer=producer,
                                            schema=schema)
    firing = [wrappers[alias] for alias in fire]
    for _ in range(warmup):
        clock.advance(1)
        for wrapper in wrappers.values():
            wrapper.tick()
    produced = sensor.elements_produced
    start = perf_counter()
    for _ in range(ticks):
        clock.advance(1)
        for wrapper in firing:
            wrapper.tick()
    elapsed = perf_counter() - start
    assert sensor.elements_produced > produced
    return elapsed / ticks, sensor


def test_incremental_aggregate_window_speedup() -> None:
    """Per-trigger cost of a 1000-element count-window aggregate query,
    incremental accumulators vs. the legacy rebuild-and-execute path.
    Both numbers land in BENCH_micro.json; the speedup is the tentpole
    claim of the incremental pipeline."""
    descriptor = _sensor_descriptor([("src", "1000", _AGG_QUERY)],
                                    "select * from src")
    incremental, __ = _per_trigger_seconds(descriptor, ("src",), True,
                                           fire=("src",))
    legacy, __ = _per_trigger_seconds(descriptor, ("src",), False,
                                      fire=("src",))
    register_metric("per_trigger_aggregate_window1000", {
        "window": 1000,
        "incremental_ms": incremental * 1_000,
        "legacy_ms": legacy * 1_000,
        "speedup": legacy / incremental,
        "floor": 10,
    })


def test_incremental_multi_source_cache_speedup() -> None:
    """Two 1000-element sources where only one fires per trigger: the
    idle source's temporary is served from the version-keyed cache on
    the incremental path instead of being re-executed."""
    descriptor = _sensor_descriptor(
        [("a", "1000", _AGG_QUERY), ("b", "1000", _AGG_QUERY)],
        "select a.n as n, a.s + b.s as s, a.a as a, "
        "b.lo as lo, b.hi as hi from a, b",
    )
    incremental, __ = _per_trigger_seconds(descriptor, ("a", "b"), True,
                                           fire=("a",))
    legacy, __ = _per_trigger_seconds(descriptor, ("a", "b"), False,
                                      fire=("a",))
    register_metric("per_trigger_multi_source_one_firing", {
        "window": 1000,
        "sources": 2,
        "incremental_ms": incremental * 1_000,
        "legacy_ms": legacy * 1_000,
        "speedup": legacy / incremental,
    })


# -- compiled/legacy/incremental operator matrix -----------------------------

_MATRIX_SCHEMA = StreamSchema.build(g=DataType.INTEGER,
                                    v=DataType.INTEGER)


def _matrix_producer(now):
    return {"g": now % 10, "v": (now * 37) % 1_000}


def _join_producer(now):
    return {"g": now % 1_200, "v": now % 1_000}


#: operator -> (per-source SQL, output fields, incremental-eligible,
#: speedup floor). Ineligible shapes still run through the compiled
#: pipeline in incremental mode, so their column reads
#: compiled-vs-interpreted, not delta-vs-rebuild.
_MATRIX_OPERATORS = {
    "filter": ("select g, v from wrapper where v < 50",
               dict(g=DataType.INTEGER, v=DataType.INTEGER), False, None),
    "project": ("select g, v + v as w from wrapper where v < 50",
                dict(g=DataType.INTEGER, w=DataType.INTEGER), False, None),
    "order-by": ("select g, v from wrapper order by v desc limit 20",
                 dict(g=DataType.INTEGER, v=DataType.INTEGER), False, None),
    "group-by": ("select g, count(*) as n, sum(v) as s, avg(v) as a "
                 "from wrapper group by g",
                 dict(g=DataType.INTEGER, n=DataType.INTEGER,
                      s=DataType.INTEGER, a=DataType.DOUBLE), True, 10),
    "aggregate": (_AGG_QUERY, _AGG_FIELDS, True, 10),
}

_MATRIX_WINDOWS = (("count-1000", "1000"), ("time-1s", "1s"))


def test_incremental_operator_matrix() -> None:
    """Per-trigger cost of every physical operator over both window
    kinds, in each execution mode the engine has for the shape.

    Delta-maintained shapes (group-by, plain aggregates) record
    ``speedup`` (incremental vs legacy) with the 10x floor the fast
    path claims; shapes without delta maintenance record
    ``compiled_speedup`` (compiled pipeline vs tree-walking
    interpreter), which carries no floor — it is tracked, not gated.
    """
    fast_path_workloads = []
    for window_label, window in _MATRIX_WINDOWS:
        for operator, spec in _MATRIX_OPERATORS.items():
            sql, fields, eligible, floor = spec
            descriptor = _sensor_descriptor([("src", window, sql)],
                                            "select * from src", fields)
            fast, sensor = _per_trigger_seconds(
                descriptor, ("src",), True, fire=("src",),
                producer=_matrix_producer, schema=_MATRIX_SCHEMA)
            slow, __ = _per_trigger_seconds(
                descriptor, ("src",), False, fire=("src",),
                producer=_matrix_producer, schema=_MATRIX_SCHEMA)
            name = f"matrix_{operator}_{window_label}"
            doc = {"operator": operator, "window": window_label}
            if eligible:
                counters = sensor.fast_paths.snapshot()
                assert counters["aggregate_hits"] > 0, (name, counters)
                fast_path_workloads.append(name)
                doc.update(incremental_ms=fast * 1_000,
                           legacy_ms=slow * 1_000,
                           speedup=slow / fast, floor=floor)
            else:
                doc.update(compiled_ms=fast * 1_000,
                           interpreted_ms=slow * 1_000,
                           compiled_speedup=slow / fast)
            register_metric(name, doc)
    register_metric("matrix_fast_path_workloads",
                    {"workloads": sorted(fast_path_workloads)})


def test_incremental_join_delta_speedup() -> None:
    """A delta-maintained two-source equi-join (count window joined
    against a time window) vs re-joining both windows every trigger."""
    fields = dict(g=DataType.INTEGER, av=DataType.INTEGER,
                  bv=DataType.INTEGER)
    descriptor = _sensor_descriptor(
        [("a", "1000", "select * from wrapper"),
         ("b", "1s", "select * from wrapper")],
        "select a.g as g, a.v as av, b.v as bv "
        "from a join b on a.g = b.g where a.v < 50",
        fields,
    )
    fast, sensor = _per_trigger_seconds(
        descriptor, ("a", "b"), True, fire=("a", "b"),
        producer=_join_producer, schema=_MATRIX_SCHEMA)
    counters = sensor.fast_paths.snapshot()
    assert counters["join_hits"] > 0, counters
    slow, __ = _per_trigger_seconds(
        descriptor, ("a", "b"), False, fire=("a", "b"),
        producer=_join_producer, schema=_MATRIX_SCHEMA)
    register_metric("matrix_join_count1000_x_time1s", {
        "operator": "join", "window": "count-1000 x time-1s",
        "incremental_ms": fast * 1_000,
        "legacy_ms": slow * 1_000,
        "speedup": slow / fast,
        "floor": 5,
    })


def test_incremental_static_coverage() -> None:
    """gsn-plan's static fast-path coverage over the shipped examples
    fleet — the deploy-time breadth claim behind the matrix. Recorded
    so check_micro.py can fail on coverage regressions."""
    import glob
    import os

    from repro.analysis.planpass import descriptor_verdicts
    from repro.descriptors.xml_io import descriptor_from_xml
    from repro.wrappers.registry import default_registry

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    pattern = os.path.join(root, "examples", "descriptors", "*.xml")
    registry = default_registry()
    eligible = total = 0
    for path in sorted(glob.glob(pattern)):
        with open(path) as handle:
            descriptor = descriptor_from_xml(handle.read())
        for verdict in descriptor_verdicts(descriptor,
                                           registry=registry).values():
            total += 1
            eligible += bool(verdict.eligible)
    assert total > 0
    register_metric("fast_path_static_coverage", {
        "examples_eligible": eligible,
        "examples_total": total,
        "examples_percent": round(100.0 * eligible / total, 1),
    })


def test_static_verdict_overhead() -> None:
    """gsn-plan's cost is paid once per deploy, not per trigger.

    Records the one-off classification time (``deploy_verdict_us``) and
    the per-trigger difference between a sensor carrying static verdicts
    and one without (``per_trigger_overhead_ns``) — the hot path only
    ever reads the already-chosen route, so the difference is noise
    around zero. CI asserts it stays under 2000 ns.
    """
    from repro.analysis.planpass import descriptor_verdicts
    from repro.wrappers.registry import default_registry

    descriptor = _sensor_descriptor([("src", "1000", _AGG_QUERY)],
                                    "select * from src")
    registry = default_registry()
    repeats = 50
    start = perf_counter()
    for _ in range(repeats):
        verdicts = descriptor_verdicts(descriptor, registry=registry)
    deploy_us = (perf_counter() - start) / repeats * 1_000_000

    def per_trigger(static_verdicts):
        clock = VirtualClock(1_000_000)
        wrapper = ScriptedWrapper()
        wrapper.script(lambda now: {"v": (now * 37) % 1_000},
                       StreamSchema.build(v=DataType.INTEGER))
        wrapper.attach(clock)
        wrapper.configure({})
        table = MemoryStorage().create(
            "out", descriptor.output_structure,
            RetentionPolicy("count", 1_000))
        sensor = VirtualSensor(descriptor, clock, {"src": wrapper},
                               output_table=table,
                               static_verdicts=static_verdicts)
        sensor.start()
        for _ in range(1_100):
            clock.advance(1)
            wrapper.tick()
        start = perf_counter()
        for _ in range(500):
            clock.advance(1)
            wrapper.tick()
        return (perf_counter() - start) / 500

    # Interleave the two variants and keep the fastest of each so a
    # drifting machine cannot masquerade as a per-trigger overhead.
    with_samples, without_samples = [], []
    for _ in range(3):
        with_samples.append(per_trigger(verdicts))
        without_samples.append(per_trigger(None))
    with_verdicts = min(with_samples)
    without = min(without_samples)
    register_metric("static_verdict_overhead", {
        "deploy_verdict_us": deploy_us,
        "per_trigger_overhead_ns": (with_verdicts - without) * 1e9,
        "per_trigger_with_verdicts_ms": with_verdicts * 1_000,
        "per_trigger_without_ms": without * 1_000,
    })


# -- tracing overhead --------------------------------------------------------


def _traced_node(sampling: float, warmup: int = 200):
    """A warmed container-deployed sensor at one trace-sampling rate;
    returns (container, tick) where ``tick`` advances the clock one
    wrapper interval and produces one element — the window stays at its
    steady-state size instead of growing across measurement rounds."""
    descriptor = dataclasses.replace(
        payload_descriptor("s", 1, 100, 1_024),  # default 10s window
        trace_sampling=sampling,
    )
    node = GSNContainer(f"trace-bench-{sampling}")
    node.deploy(descriptor)
    node.run_for(10_000)  # warm the window
    wrapper = node.sensor("s").wrappers["src"]
    clock = node.clock

    def tick() -> None:
        clock.advance(100)
        wrapper.tick()

    for _ in range(warmup):
        tick()
    return node, tick


def test_tracing_overhead() -> None:
    """Per-trigger cost of full pipeline tracing.

    The compiled pipeline made an unsampled trigger cheap enough
    (~0.2 ms on the reference workload) that differencing two
    end-to-end timings no longer resolves the tracer's ~15 us: machine
    jitter on each measurement is the same order as the quantity. So
    the 10% budget is asserted on the traced span protocol measured in
    isolation — begin, the four step children, finish with the
    histogram feeds and the ring-buffer push, exactly what sampling
    adds to a trigger — relative to the measured unsampled trigger.
    The end-to-end difference is still recorded and held under a loose
    noise bound so a genuine regression (say, a blocking sink) cannot
    hide behind the jitter argument."""
    sampled_node, sampled_tick = _traced_node(1.0)
    unsampled_node, unsampled_tick = _traced_node(0.0)
    ticks = 500
    sampled = unsampled = float("inf")
    try:
        for _ in range(7):
            start = perf_counter()
            for _ in range(ticks):
                sampled_tick()
            sampled = min(sampled, (perf_counter() - start) / ticks)
            start = perf_counter()
            for _ in range(ticks):
                unsampled_tick()
            unsampled = min(unsampled, (perf_counter() - start) / ticks)
    finally:
        sampled_node.shutdown()
        unsampled_node.shutdown()
    overhead_pct = (sampled - unsampled) / unsampled * 100.0

    # The traced path in isolation: everything sampling adds to one
    # trigger, without the end-to-end jitter.
    from repro.metrics.registry import MetricsRegistry
    from repro.metrics.tracing import new_trace_id

    tracer = PipelineTracer("s", sampling=1.0, sink=TraceBuffer(),
                            registry=MetricsRegistry())
    rounds = 20_000
    start = perf_counter()
    for _ in range(rounds):
        root = tracer.begin(new_trace_id(), 0, stream="input")
        for step in ("window_select", "source_query",
                     "output_query", "persist_notify"):
            root.child(step, source="src").finish()
        tracer.finish(root)
    traced_path = (perf_counter() - start) / rounds
    traced_pct = traced_path / unsampled * 100.0

    # The sampling-off path in isolation: sample() declines, begin()
    # returns None, finish(None) returns — the whole per-trigger cost
    # of a deployed-but-unsampled tracer.
    tracer = PipelineTracer("s", sampling=0.0, sink=TraceBuffer())
    rounds = 100_000
    start = perf_counter()
    for _ in range(rounds):
        tracer.sample()
        tracer.finish(tracer.begin(None, 0))
    untraced_path = (perf_counter() - start) / rounds
    untraced_pct = untraced_path / unsampled * 100.0

    register_metric("tracing_overhead_per_trigger", {
        "sampled_ms": sampled * 1_000,
        "unsampled_ms": unsampled * 1_000,
        "overhead_pct": overhead_pct,
        "traced_path_ns": traced_path * 1e9,
        "traced_pct_of_trigger": traced_pct,
        "untraced_path_ns": untraced_path * 1e9,
        "untraced_pct_of_trigger": untraced_pct,
    })
    assert traced_pct <= 10.0, \
        f"traced span protocol costs {traced_pct:.1f}% of a trigger"
    assert overhead_pct <= 25.0, \
        f"end-to-end tracing overhead {overhead_pct:.1f}% is beyond noise"
    assert untraced_pct < 1.0, \
        f"sampling-off path costs {untraced_pct:.2f}% of a trigger"


def test_profiler_overhead() -> None:
    """Continuous profiling must cost at most 2% of profiled wall time.

    The profiler keeps its own books — cumulative sweep seconds over
    the wall seconds of the background segment — so the benchmark runs
    it at the default rate against a threaded container with live
    worker threads and gates on that measured share. A directly-timed
    sweep loop also records the projected cost (mean sweep x rate),
    which stays meaningful on machines where a short wall segment is
    noisy."""
    from time import sleep

    from repro.metrics.profile import (
        DEFAULT_PROFILE_HZ, OVERHEAD_BUDGET_PERCENT, SamplingProfiler,
    )

    node = GSNContainer("profiled", synchronous=False)
    try:
        node.deploy(payload_descriptor("s", 1, 100, 1_024))
        node.run_for(2_000)  # warm: worker threads up and parked/busy

        # Mean sweep cost over the live container's thread population.
        sweeper = SamplingProfiler(hz=DEFAULT_PROFILE_HZ)
        rounds = 200
        start = perf_counter()
        for _ in range(rounds):
            sweeper.sample_once()
        mean_sweep_s = (perf_counter() - start) / rounds
        projected_pct = 100.0 * mean_sweep_s * DEFAULT_PROFILE_HZ

        # The real background segment the container would run with.
        profiler = SamplingProfiler(hz=DEFAULT_PROFILE_HZ)
        profiler.start()
        deadline = perf_counter() + 1.2
        while perf_counter() < deadline:
            node.run_for(100)  # keep the workers ticking while sampled
            sleep(0.005)
        profiler.stop()
    finally:
        node.shutdown()

    status = profiler.status()
    assert status["sweeps"] >= 10, "background segment took no sweeps"
    register_metric("profiler_overhead", {
        "profiler_overhead_pct": status["overhead_percent"],
        "budget_pct": OVERHEAD_BUDGET_PERCENT,
        "hz": DEFAULT_PROFILE_HZ,
        "sweeps": status["sweeps"],
        "samples": status["samples"],
        "mean_sweep_us": mean_sweep_s * 1e6,
        "projected_pct": round(projected_pct, 3),
    })
    assert status["overhead_percent"] <= OVERHEAD_BUDGET_PERCENT, \
        f"profiler cost {status['overhead_percent']:.2f}% of wall time"
    assert projected_pct <= OVERHEAD_BUDGET_PERCENT, \
        f"projected sweep cost {projected_pct:.2f}% at default rate"


def test_race_witness_overhead() -> None:
    """The race witness must stay within 2% of per-trigger ingest cost.

    The suite runs entirely under the witness, so its cost is paid on
    every pipeline trigger of every test: guarded-attribute rebinds on
    the instrumented classes go through a checked ``__setattr__``,
    guarded collections mutate through checking proxies, and the
    declared-guard locks update the hold tracker on every cycle. Like
    the tracing budget, the 2% gate is asserted on the witness path
    measured in isolation: the per-trigger mix of guard checks and
    tracked lock cycles is counted live on a container-deployed
    sensor's pipeline trigger (the reference ingest denominator), then
    replayed on a probe class armed and bare — differencing two
    end-to-end ~0.2 ms timings cannot resolve the witness's ~2 us, so
    the end-to-end difference is only held under a loose noise bound
    where a genuine regression (say, a blocking check) would still
    surface."""
    import math

    from repro.analysis import racewitness
    from repro.analysis.racewitness import TrackingLock
    from repro.concurrency import new_lock

    assert racewitness.active() is None, \
        "benchmarks must start with the race witness disarmed"
    counted = {"cycles": 0, "counting": False}

    def per_trigger(armed: bool, count_ops: bool = False):
        if armed:
            racewitness.enable(strict=True)
        node = GSNContainer(f"race-witness-bench-{armed}")
        try:
            node.deploy(payload_descriptor("s", 1, 100, 1_024))
            node.run_for(10_000)  # warm the window
            wrapper = node.sensor("s").wrappers["src"]
            clock = node.clock
            for _ in range(300):
                clock.advance(100)
                wrapper.tick()
            ticks = 1_000
            checks_before = racewitness.active().checks if armed else 0
            counted["counting"] = count_ops
            start = perf_counter()
            for _ in range(ticks):
                clock.advance(100)
                wrapper.tick()
            elapsed = (perf_counter() - start) / ticks
            counted["counting"] = False
            checks = ((racewitness.active().checks - checks_before) / ticks
                      if armed else 0.0)
            return elapsed, checks
        finally:
            node.shutdown()
            if armed:
                witness = racewitness.active()
                racewitness.disable()
                assert witness.checks > 0, \
                    "witness armed but never consulted: measuring nothing"
                assert not witness.unexpected(), \
                    [str(v) for v in witness.unexpected()]

    # Live per-trigger op counts: guard checks from the witness's own
    # counter, tracked-lock cycles from a temporarily counting __enter__.
    original_enter = TrackingLock.__enter__

    def counting_enter(self):
        if counted["counting"]:
            counted["cycles"] += 1
        return original_enter(self)

    TrackingLock.__enter__ = counting_enter  # type: ignore[method-assign]
    try:
        __, checks_per_trigger = per_trigger(True, count_ops=True)
    finally:
        TrackingLock.__enter__ = original_enter  # type: ignore
    cycles_per_trigger = counted["cycles"] / 1_000
    assert checks_per_trigger > 0, "no guard checks on the ingest path"

    # End-to-end, interleaved minima: drift cannot masquerade as
    # overhead, but the difference is noise-bounded, not 2%-gated.
    armed = bare = float("inf")
    for _ in range(3):
        cost, __ = per_trigger(True)
        armed = min(armed, cost)
        cost, __ = per_trigger(False)
        bare = min(bare, cost)
    overhead_pct = (armed - bare) / bare * 100.0

    # The witness path in isolation: one trigger's worth of checks and
    # tracked cycles replayed on a probe, armed minus bare.
    class _Probe:
        def __init__(self) -> None:
            self._lock = new_lock("_Probe._lock")
            self.count = 0  # guarded-by: _Probe._lock

    n_checks = max(1, math.ceil(checks_per_trigger))
    n_cycles = max(1, math.ceil(cycles_per_trigger))

    def mix_cost(probe) -> float:
        rounds = 20_000
        start = perf_counter()
        for i in range(rounds):
            for __ in range(n_cycles - 1):
                with probe._lock:
                    pass
            with probe._lock:
                for __ in range(n_checks):
                    probe.count = i
        return (perf_counter() - start) / rounds

    plain = _Probe()  # built disarmed: plain lock, plain setattr
    witness = racewitness.enable(strict=True)
    try:
        witness.instrument(_Probe)
        tracked = _Probe()
        assert isinstance(tracked._lock, TrackingLock)
        witnessed_mix = min(mix_cost(tracked) for __ in range(3))
        assert not witness.unexpected()
    finally:
        racewitness.disable()
    plain_mix = min(mix_cost(plain) for __ in range(3))
    witness_path = witnessed_mix - plain_mix
    witness_pct = witness_path / bare * 100.0

    register_metric("race_witness_overhead", {
        "witnessed_ms": armed * 1_000,
        "bare_ms": bare * 1_000,
        "witness_overhead_pct": overhead_pct,
        "witness_path_ns": witness_path * 1e9,
        "witness_pct_of_trigger": witness_pct,
        "checks_per_trigger": checks_per_trigger,
        "lock_cycles_per_trigger": cycles_per_trigger,
        "budget_pct": 2.0,
    })
    assert witness_pct <= 2.0, \
        f"race witness path costs {witness_pct:.2f}% of a trigger (budget 2%)"
    assert overhead_pct <= 10.0, \
        f"end-to-end witness overhead {overhead_pct:.1f}% is beyond noise"


def test_node_throughput(benchmark) -> None:
    """Elements/second one node sustains end to end — the "GSN can
    tolerate high rates" claim in measurable form."""
    def run() -> float:
        with GSNContainer("throughput") as node:
            node.deploy(payload_descriptor("s", 1, 10, 100, window="1s"))
            node.run_for(5_000)
            return node.sensor("s").elements_produced / 5.0

    per_second = benchmark.pedantic(run, rounds=1, iterations=1)
    assert per_second >= 90, f"sustained only {per_second} elements/s"
