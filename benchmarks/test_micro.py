"""Micro-benchmarks of the hot paths the experiments stress.

These timings give the per-operation baselines behind the figure-level
results: SQL execution (scan/filter/aggregate/join), the full virtual-
sensor pipeline per element, and the end-to-end throughput claim ("GSN
can tolerate high rates").
"""

from __future__ import annotations

import pytest

from repro.container import GSNContainer
from repro.simulation.workload import payload_descriptor
from repro.sqlengine.executor import Catalog, execute, execute_plan
from repro.sqlengine.parser import parse_select
from repro.sqlengine.planner import plan_select
from repro.sqlengine.relation import Relation


@pytest.fixture(scope="module")
def catalog() -> Catalog:
    rows = [
        {"id": i, "grp": i % 10, "value": (i * 37) % 1000,
         "timed": 1_000_000 + i}
        for i in range(5_000)
    ]
    left = Relation.from_dicts(("id", "grp", "value", "timed"), rows)
    right = Relation.from_dicts(
        ("grp", "label"),
        [{"grp": g, "label": f"group-{g}"} for g in range(10)],
    )
    return Catalog({"t": left, "g": right})


def test_sql_filter_scan(benchmark, catalog) -> None:
    result = benchmark(
        execute, "select id, value from t where value > 500", catalog
    )
    assert len(result) > 0


def test_sql_aggregate(benchmark, catalog) -> None:
    result = benchmark(
        execute,
        "select grp, count(*) as n, avg(value) as m from t group by grp",
        catalog,
    )
    assert len(result) == 10


def test_sql_hash_join(benchmark, catalog) -> None:
    plan = plan_select(parse_select(
        "select t.id, g.label from t join g on t.grp = g.grp "
        "where t.value < 100"
    ))
    result = benchmark(execute_plan, plan, catalog)
    assert len(result) > 0


def test_sql_order_limit(benchmark, catalog) -> None:
    result = benchmark(
        execute, "select * from t order by value desc limit 50", catalog
    )
    assert len(result) == 50


def test_plan_compile(benchmark) -> None:
    sql = ("select grp, count(*) as n from t "
           "where value between 10 and 900 and grp in (1, 2, 3) "
           "group by grp having count(*) > 5 order by n desc")
    plan = benchmark(lambda: plan_select(parse_select(sql)))
    assert plan is not None


def test_pipeline_element_cost(benchmark) -> None:
    """Cost of one full pipeline pass (steps 1-5) on a running sensor."""
    with GSNContainer("micro") as node:
        node.deploy(payload_descriptor("s", 1, 100, 1_024, window="2s"))
        node.run_for(2_000)  # warm the window
        sensor = node.sensor("s")
        wrapper = sensor.wrappers["src"]

        def one_element():
            wrapper.tick()

        benchmark(one_element)
        assert sensor.elements_produced > 0


def test_node_throughput(benchmark) -> None:
    """Elements/second one node sustains end to end — the "GSN can
    tolerate high rates" claim in measurable form."""
    def run() -> float:
        with GSNContainer("throughput") as node:
            node.deploy(payload_descriptor("s", 1, 10, 100, window="1s"))
            node.run_for(5_000)
            return node.sensor("s").elements_produced / 5.0

    per_second = benchmark.pedantic(run, rounds=1, iterations=1)
    assert per_second >= 90, f"sustained only {per_second} elements/s"
