"""Benchmark regenerating Figure 3: GSN node under time-triggered load.

One benchmark per stream-element size from the paper (15 B, 50 B, 100 B,
16 KB, 32 KB, 75 KB). Each runs the full interval sweep
(10..1000 ms) on a scaled-down device fleet and asserts the paper's
qualitative shape: processing time per element falls as the output
interval grows and converges at low rates.

The full-scale testbed (37 devices) is available via
``python -m repro.experiments figure3``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import register_report
from repro.experiments.figure3 import PAPER_INTERVALS, run_figure3

#: Scaled-down fleet so the whole suite stays in CI budgets; the interval
#: sweep and element sizes are the paper's.
BENCH_DEVICES = 8
BENCH_DURATION_MS = 2_000

SIZES = (15, 50, 100, 16_384, 32_768, 76_800)

_series_accumulator = {}


def _label(size: int) -> str:
    return f"{size // 1024}KB" if size >= 1024 else f"{size}B"


@pytest.mark.parametrize("size", SIZES, ids=_label)
def test_figure3_series(benchmark, size: int) -> None:
    result = benchmark.pedantic(
        run_figure3,
        kwargs={
            "intervals": PAPER_INTERVALS,
            "sizes": (size,),
            "device_count": BENCH_DEVICES,
            "duration_ms": BENCH_DURATION_MS,
        },
        rounds=1, iterations=1,
    )
    series = result.series[size]
    _series_accumulator[size] = series

    ys = series.ys()
    assert len(ys) == len(PAPER_INTERVALS)
    assert all(y > 0 for y in ys), "every cell processed elements"
    # Paper shape: the 10 ms point is the most expensive; the tail is flat.
    assert ys[0] == max(ys), (
        f"processing cost must peak at the smallest interval, got {ys}"
    )
    tail = ys[-3:]
    assert ys[0] > 2.0 * max(tail), (
        f"cost must drop sharply as the interval grows, got {ys}"
    )
    # Convergence, robust to single wall-clock noise spikes: the tail's
    # median stays within a small factor of its minimum.
    median = sorted(tail)[len(tail) // 2]
    assert median <= 5 * min(tail) or median < 1.0, (
        f"tail must be near-constant (converged), got {tail}"
    )

    if len(_series_accumulator) == len(SIZES):
        from repro.metrics.ascii_plot import plot_series
        from repro.metrics.report import format_series_table
        ordered = [_series_accumulator[s] for s in SIZES]
        register_report(
            "Figure 3 — GSN node under time-triggered load "
            "(mean ms per data item)",
            format_series_table("interval_ms", ordered)
            + "\n\n"
            + plot_series(ordered, x_label="output interval (ms)",
                          y_label="ms/item", log_y=True),
        )


def test_figure3_size_ordering(benchmark) -> None:
    """At relaxed rates, larger stream elements must cost more — the
    vertical ordering of the paper's series."""
    def run():
        return run_figure3(intervals=(500, 1000), sizes=(100, 76_800),
                           device_count=BENCH_DEVICES,
                           duration_ms=BENCH_DURATION_MS)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    small = result.series[100].ys()
    large = result.series[76_800].ys()
    assert sum(large) > sum(small), (
        f"75KB elements must cost more than 100B elements: "
        f"{large} vs {small}"
    )
