"""Ablation benchmarks for the design choices listed in DESIGN.md.

Each test measures one mechanism with pytest-benchmark *and* checks the
directional claim that motivated the design choice.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import register_report
from repro.experiments.ablations import (
    ablate_plan_cache,
    ablate_pool_size,
    ablate_sql_backend,
    ablate_storage_backend,
    ablate_transport_latency,
    ablate_window_type,
)
from repro.metrics.report import format_table

_collected = []
_EXPECTED = 6


def _record(result) -> None:
    _collected.append(result)
    if len(_collected) == _EXPECTED:
        rows = [row for r in _collected for row in r.table_rows()]
        register_report(
            "Ablations (per-operation cost in ms, lower is better)",
            format_table(("ablation", "variant", "ms"), rows),
        )


def test_storage_backends(benchmark) -> None:
    result = benchmark.pedantic(ablate_storage_backend,
                                rounds=1, iterations=1)
    _record(result)
    # Persistence must cost more than memory — that is why GSN makes it
    # opt-in per sensor — but not catastrophically more.
    assert result.variants["sqlite"] > result.variants["memory"]
    assert result.variants["sqlite"] < 1_000 * result.variants["memory"]


def test_window_types(benchmark) -> None:
    result = benchmark.pedantic(ablate_window_type, rounds=1, iterations=1)
    _record(result)
    for variant, cost in result.variants.items():
        assert cost < 1.0, f"{variant} window costs {cost} ms/element"


def test_plan_cache(benchmark) -> None:
    result = benchmark.pedantic(ablate_plan_cache, rounds=1, iterations=1)
    _record(result)
    assert result.variants["cache_on"] < result.variants["cache_off"], (
        "cached compilation must beat recompiling every query"
    )


def test_pool_size(benchmark) -> None:
    result = benchmark.pedantic(ablate_pool_size, rounds=1, iterations=1)
    _record(result)
    # Sanity only: all pool modes complete and stay in the same regime
    # (the GIL makes threads a wash for CPU-bound pipelines).
    values = list(result.variants.values())
    assert all(v > 0 for v in values)
    assert max(values) < 50 * min(values)


def test_sql_backends(benchmark) -> None:
    result = benchmark.pedantic(ablate_sql_backend, rounds=1, iterations=1)
    _record(result)
    # The scratch engine trades speed for self-containment; it must stay
    # within a sane factor of SQLite on window-sized queries.
    assert result.variants["scratch_engine"] < 500 * result.variants["sqlite"]


def test_transport_latency(benchmark) -> None:
    result = benchmark.pedantic(ablate_transport_latency,
                                rounds=1, iterations=1)
    _record(result)
    # Delays must be *observable*, tracking the injected link latency.
    assert result.variants["latency_0ms"] == 0.0
    assert result.variants["latency_50ms"] == 50.0
    assert result.variants["latency_200ms"] == 200.0
