"""Ingestion benchmarks: batched vs per-tuple delivery, witness cost.

Two machine-readable documents land in ``BENCH_ingest.json`` at the
repo root (written directly — the ``BENCH_micro.json`` session hook
owns that file):

- ``ingest_batched_vs_per_tuple``: tuples/second and per-call p99 of
  :meth:`VirtualSensor.ingest_batch` delivering the same tuple stream
  in gateway-sized batches vs one tuple at a time. The batched path
  amortizes one window-update + query evaluation over the whole batch;
  ``ingest_speedup`` carries the 5x floor gated by ``check_micro.py``.
- ``loop_witness_overhead``: wall-clock cost of arming the event-loop
  lag witness heartbeat next to a busy loop, against its 2% budget.
"""

from __future__ import annotations

import asyncio
import json
import os
from time import perf_counter
from typing import List

from repro.datatypes import DataType
from repro.descriptors.model import (
    AddressSpec, InputStreamSpec, StreamSourceSpec,
    VirtualSensorDescriptor,
)
from repro.gsntime.clock import VirtualClock
from repro.analysis.loopwitness import LoopWitness
from repro.storage.base import RetentionPolicy
from repro.storage.memory import MemoryStorage
from repro.streams.schema import StreamSchema
from repro.vsensor.virtual_sensor import VirtualSensor
from repro.wrappers.scripted import ScriptedWrapper

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(ROOT, "BENCH_ingest.json")

# An order-by/limit shape: not delta-maintainable, so every trigger
# re-evaluates over the window — the cost batching amortizes.
_QUERY = "select v, count(*) as n from wrapper group by v order by n desc limit 20"
_FIELDS = dict(v=DataType.INTEGER, n=DataType.INTEGER)

WARMUP_TUPLES = 200
BENCH_TUPLES = 1_500
BATCH_SIZE = 128


def _write_doc(name: str, payload: dict) -> None:
    merged = {}
    if os.path.exists(BENCH_PATH):
        with open(BENCH_PATH) as handle:
            merged = json.load(handle)
    merged[name] = payload
    with open(BENCH_PATH, "w") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _build_sensor() -> VirtualSensor:
    descriptor = VirtualSensorDescriptor(
        name="bench",
        output_structure=StreamSchema.build(**_FIELDS),
        input_streams=(InputStreamSpec(
            name="in",
            sources=(StreamSourceSpec(alias="src",
                                      address=AddressSpec("scripted"),
                                      query=_QUERY,
                                      storage_size="1000"),),
            query="select * from src",
        ),),
    )
    clock = VirtualClock(1_000_000)
    wrapper = ScriptedWrapper()
    wrapper.script(lambda now: {"v": (now * 37) % 1_000},
                   StreamSchema.build(v=DataType.INTEGER))
    wrapper.attach(clock)
    wrapper.configure({})
    table = MemoryStorage().create("out", descriptor.output_structure,
                                   RetentionPolicy("count", 1_000))
    sensor = VirtualSensor(descriptor, clock, {"src": wrapper},
                           output_table=table)
    sensor.start()
    return sensor


def _drive(chunk_size: int) -> dict:
    """Deliver the benchmark stream in ``chunk_size``-tuple calls."""
    sensor = _build_sensor()
    tuples = [{"v": (i * 37) % 1_000} for i in range(BENCH_TUPLES)]
    warmup = [{"v": i % 1_000} for i in range(WARMUP_TUPLES)]
    for start in range(0, len(warmup), chunk_size):
        sensor.ingest_batch("in", "src", warmup[start:start + chunk_size])
    latencies: List[float] = []
    begin = perf_counter()
    for start in range(0, len(tuples), chunk_size):
        chunk = tuples[start:start + chunk_size]
        before = perf_counter()
        admitted = sensor.ingest_batch("in", "src", chunk)
        latencies.append(perf_counter() - before)
        assert admitted == len(chunk)
    elapsed = perf_counter() - begin
    sensor.stop()
    latencies.sort()
    p99 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
    return {
        "tuples_per_s": BENCH_TUPLES / elapsed,
        "p99_call_ms": p99 * 1_000,
        "elapsed_ms": elapsed * 1_000,
    }


def test_batched_ingest_speedup() -> None:
    batched = _drive(BATCH_SIZE)
    per_tuple = _drive(1)
    speedup = batched["tuples_per_s"] / per_tuple["tuples_per_s"]
    _write_doc("ingest_batched_vs_per_tuple", {
        "tuples": BENCH_TUPLES,
        "batch_size": BATCH_SIZE,
        "batched_tuples_per_s": batched["tuples_per_s"],
        "per_tuple_tuples_per_s": per_tuple["tuples_per_s"],
        "batched_p99_ms": batched["p99_call_ms"],
        "per_tuple_p99_ms": per_tuple["p99_call_ms"],
        "ingest_speedup": speedup,
        "floor": 5,
    })
    assert speedup >= 5, (batched, per_tuple)


def _churn_seconds(witness: LoopWitness | None, awaits: int) -> float:
    """Best-of-3 wall seconds of a loop doing ``awaits`` bare yields."""

    async def main() -> float:
        heartbeat = None
        if witness is not None:
            heartbeat = asyncio.ensure_future(witness.heartbeat("bench"))
            await asyncio.sleep(0)
        begin = perf_counter()
        for _ in range(awaits):
            await asyncio.sleep(0)
        elapsed = perf_counter() - begin
        if heartbeat is not None:
            heartbeat.cancel()
        return elapsed

    best = None
    for _ in range(3):
        loop = asyncio.new_event_loop()
        try:
            elapsed = loop.run_until_complete(main())
        finally:
            loop.close()
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_loop_witness_overhead() -> None:
    awaits = 200_000
    bare = _churn_seconds(None, awaits)
    witness = LoopWitness(max_stall_ms=250.0, interval_ms=20.0)
    witnessed = _churn_seconds(witness, awaits)
    overhead_pct = max(0.0, (witnessed - bare) / bare * 100.0)
    _write_doc("loop_witness_overhead", {
        "awaits": awaits,
        "bare_ms": bare * 1_000,
        "witnessed_ms": witnessed * 1_000,
        "loop_witness_overhead_pct": overhead_pct,
        "budget_pct": 2.0,
    })
    assert overhead_pct <= 2.0, (bare, witnessed)
