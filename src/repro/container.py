"""The GSN container.

"GSN follows a container-based architecture and each container can host
and manage one or more virtual sensors concurrently. The container manages
every aspect of the virtual sensors at runtime including remote access,
interaction with the sensor network, security, persistence, data
filtering, concurrency, and access to and pooling of resources."
(paper, Section 4)

:class:`GSNContainer` wires together the subsystems of Figure 2: the
virtual sensor manager (with its life-cycle and input-stream managers),
the storage layer, the query manager (processor + repository +
notification manager), the access-control and integrity layers, and —
when the container joins a :class:`~repro.network.peer.PeerNetwork` — the
peer node used for discovery and GSN-to-GSN streaming.
"""

from __future__ import annotations

import logging
from typing import List, Optional, Union

from repro.access.control import AccessController, Permission
from repro.access.integrity import IntegrityService
from repro.descriptors.model import VirtualSensorDescriptor
from repro.descriptors.xml_io import descriptor_from_file, descriptor_from_xml
from repro.exceptions import ConfigurationError
from repro.gsntime.clock import Clock, SystemClock, VirtualClock
from repro.gsntime.scheduler import EventScheduler
from repro.logging_setup import configure_logging
from repro.metrics.flight import FlightRecorder, thread_stacks
from repro.metrics.health import (
    HealthModel, LatencySLO, SLOTracker, ThroughputSLO,
)
from repro.metrics.profile import DEFAULT_PROFILE_HZ, SamplingProfiler
from repro.metrics.registry import (
    DEFAULT_LATENCY_BUCKETS_MS, FamilySnapshot, HistogramSnapshot,
    MetricsRegistry, counter_family, gauge_family,
)
from repro.metrics.tracing import TraceBuffer
from repro.network.peer import PeerNetwork, PeerNode
from repro.notifications.manager import NotificationManager
from repro.query.processor import QueryProcessor
from repro.query.repository import QueryRepository
from repro.query.subscription import Subscription
from repro.sqlengine.relation import Relation
from repro.status import UptimeTracker
from repro.storage.manager import StorageManager, safe_table_name
from repro.streams.element import StreamElement
from repro.vsensor.manager import OUTPUT_TABLE_PREFIX, VirtualSensorManager
from repro.vsensor.virtual_sensor import VirtualSensor
from repro.wrappers.registry import WrapperRegistry, default_registry

DescriptorLike = Union[VirtualSensorDescriptor, str]

logger = logging.getLogger("repro.container")


class GSNContainer:
    """One GSN node.

    Parameters
    ----------
    name:
        The container's identity on the peer network.
    simulated:
        ``True`` (default) runs on a :class:`VirtualClock` driven by an
        :class:`EventScheduler` — deterministic and fast, the mode used
        by tests and benchmarks. ``False`` uses the wall clock, in which
        case periodic wrappers must be driven manually or by threads.
    storage_path:
        SQLite database location for ``permanent-storage`` sensors.
    network:
        An optional :class:`PeerNetwork` to join (shared directory + bus).
    access_enabled:
        Turns the access-control layer on (off matches the open demo).
    synchronous:
        Run pipelines inline (deterministic) instead of on pool threads.
    incremental:
        Container-wide escape hatch for the incremental pipeline
        (delta-maintained window relations, temporary caching and
        incremental aggregates). ``False`` forces the legacy per-trigger
        rebuild for every sensor; individual descriptors can also opt
        out via ``<storage incremental="false">``.
    trace_capacity:
        Size of the ring buffer of recent pipeline span trees served at
        ``/trace`` (per-sensor sampling comes from the descriptor's
        ``trace-sampling`` attribute).
    flight_capacity:
        Size of the flight recorder's event ring (the journal snapshot
        embedded in every black-box dump; see ``GET /dump``).
    profile_hz:
        Sampling rate of the continuous profiler. ``0`` (the default)
        leaves the background sampler off — ``/profile?seconds=...``
        still works through on-demand bursts.
    slo_trigger_p99_ms:
        Declared p99 objective for end-to-end trigger latency; feeds the
        ``gsn_slo_*`` burn-rate gauges and the healthz body.
    slo_ingest_per_sec:
        Declared elements-per-second throughput objective; ``0`` skips
        the throughput SLO entirely.
    log_level:
        When given (e.g. ``"INFO"`` or ``logging.DEBUG``), sets the
        level of the ``repro`` logger hierarchy and attaches a stderr
        handler if none is configured — the quick-start logging knob.
    """

    def __init__(self, name: str = "gsn", simulated: bool = True,
                 storage_path: str = ":memory:",
                 registry: Optional[WrapperRegistry] = None,
                 network: Optional[PeerNetwork] = None,
                 access_enabled: bool = False,
                 synchronous: bool = True,
                 seal: str = "none",
                 seed: Optional[int] = 0,
                 clock: Optional[Clock] = None,
                 scheduler: Optional[EventScheduler] = None,
                 incremental: bool = True,
                 trace_capacity: int = 256,
                 flight_capacity: int = 512,
                 profile_hz: float = 0.0,
                 slo_trigger_p99_ms: float = 250.0,
                 slo_ingest_per_sec: float = 0.0,
                 log_level: Union[int, str, None] = None) -> None:
        if not name.strip():
            raise ConfigurationError("container needs a name")
        if log_level is not None:
            configure_logging(log_level)
        self.name = name.strip().lower()
        self.simulated = simulated
        self.metrics = MetricsRegistry()
        self.traces = TraceBuffer(trace_capacity)
        self._uptime = UptimeTracker()

        if clock is not None:
            # Externally supplied time source: multi-container simulations
            # share one VirtualClock + EventScheduler across nodes.
            self.clock = clock
            self.scheduler = scheduler
        elif simulated:
            self.clock = VirtualClock()
            self.scheduler = EventScheduler(self.clock)  # type: ignore[arg-type]
        else:
            self.clock = SystemClock()
            self.scheduler = None

        # The flight recorder exists before every other subsystem so each
        # of them can journal into it; its dump builder is installed last,
        # once the components a dump describes are wired up.
        self.flight = FlightRecorder(flight_capacity, clock=self.clock.now)

        self.storage = StorageManager(storage_path)
        self.registry = registry if registry is not None else default_registry()
        self.notifications = NotificationManager()
        self.processor = QueryProcessor(self.storage.catalog)
        self.repository = QueryRepository(self.processor, self.notifications,
                                          self.clock)
        self.access = AccessController(access_enabled)
        self.integrity = IntegrityService(self.name)

        self.peer: Optional[PeerNode] = None
        if network is not None:
            self.peer = PeerNode(network, self.name,
                                 sensor_getter=self._sensor_for_peer,
                                 integrity=self.integrity, seal=seal,
                                 clock=self.clock,
                                 trace_sink=self.traces,
                                 metrics=self.metrics,
                                 events=self.flight)

        self.vsm = VirtualSensorManager(
            self.clock, self.storage, self.registry,
            scheduler=self.scheduler,
            remote_subscribe=self.peer.subscribe if self.peer else None,
            synchronous=synchronous,
            seed=seed,
            incremental=incremental,
            node=self.name,
            metrics=self.metrics,
            trace_sink=self.traces,
            events=self.flight,
        )
        self.vsm.on_deploy(self._after_deploy)
        self.vsm.on_undeploy(self._after_undeploy)
        self.metrics.register_collector(self._collect_metrics)

        # Plan-cache evictions are a capacity signal worth journaling.
        self.processor.plan_cache.on_evict = self._plan_evicted

        # Health model + SLOs. The latency SLO reads the same trigger
        # histogram family the tracer feeds (get-or-create matches on
        # kind+labelnames, so both resolve to one family object).
        self.health = HealthModel()
        self.health.register("worker-pools", self._check_worker_pools)
        self.health.register("sensors", self._check_sensors)
        self.health.register("storage", self._check_storage)
        self.health.register("fast-path", self._check_fast_paths)
        self.health.register("notifications", self._check_notifications)
        if self.peer is not None:
            self.health.register("peer-link", self._check_peer_link)
        trigger_family = self.metrics.histogram(
            "gsn_pipeline_trigger_latency_ms",
            "End-to-end latency of one trigger (steps 2-5).",
            labelnames=("sensor",),
            buckets=DEFAULT_LATENCY_BUCKETS_MS,
        )
        slos: List[object] = [
            LatencySLO("trigger-latency-p99", trigger_family,
                       objective_ms=slo_trigger_p99_ms),
        ]
        if slo_ingest_per_sec > 0:
            slos.append(ThroughputSLO(
                "ingest-throughput",
                counter=lambda: sum(s.elements_produced
                                    for s in self.vsm.sensors()),
                clock=self.clock.now,
                objective_per_s=slo_ingest_per_sec,
            ))
        self.slos = SLOTracker(self.metrics, slos)

        # Continuous profiler: off unless asked for; bursts still work.
        self.profiler = SamplingProfiler(hz=profile_hz or DEFAULT_PROFILE_HZ)
        if profile_hz > 0:
            self.profiler.start()

        self.flight.dumper = self._dump_sections
        self._crash_observer = self._on_witnessed_crash
        witness = self._witness()
        if witness is not None:
            witness.add_observer(self._crash_observer)
        self._closed = False
        logger.info("container %s up (simulated=%s)", self.name, simulated)

    # -- deployment hooks ------------------------------------------------------

    def _sensor_for_peer(self, sensor_name: str) -> VirtualSensor:
        return self.vsm.get(sensor_name)

    def _after_deploy(self, sensor: VirtualSensor) -> None:
        table = safe_table_name(OUTPUT_TABLE_PREFIX + sensor.name)
        sensor.add_listener(lambda element: self._on_output(table, element))
        if self.peer is not None:
            self.peer.publish(sensor.name,
                              sensor.descriptor.discovery_predicates,
                              sensor.output_schema)
        self.flight.record("deploy", sensor.name,
                           pool_size=sensor.descriptor.lifecycle.pool_size)

    def _after_undeploy(self, sensor_name: str) -> None:
        if self.peer is not None:
            self.peer.unpublish(sensor_name)
        self.flight.record("undeploy", sensor_name)

    def _on_output(self, table: str, element: StreamElement) -> None:
        self.repository.data_arrived(table)

    def _plan_evicted(self, sql: str) -> None:
        self.flight.record("plan_evicted", "plan-cache",
                           sql=sql[:120],
                           evictions=self.processor.plan_cache.evictions)

    @staticmethod
    def _witness():
        from repro.analysis import crashwitness
        return crashwitness.active()

    def _on_witnessed_crash(self, crash) -> None:
        """Crash-witness observer: journal *escaped* crashes.

        Supervised crashes are journaled by their supervisors (the pool
        records ``worker_crash``, the HTTP server ``server_crash``), so
        only the hook path — a thread nobody supervises — lands here.
        """
        if crash.supervised:
            return
        self.flight.record("thread_crash", crash.owner,
                           thread=crash.thread_name,
                           error=f"{crash.exc_type}: {crash.message}")

    # -- deployment API ----------------------------------------------------------

    def deploy(self, descriptor: DescriptorLike, start: bool = True,
               client: str = "", api_key: str = "",
               strict: bool = False) -> VirtualSensor:
        """Deploy a virtual sensor from a descriptor object, an XML string,
        or a path to an XML file — "without any programming effort just by
        providing a simple XML configuration file".

        ``strict=True`` runs the gsn-lint static analysis (schema, graph,
        resource passes) as a pre-deploy gate and rejects descriptors
        with error findings the basic validator would let through."""
        parsed = self._coerce_descriptor(descriptor)
        self.access.check(Permission.DEPLOY, parsed.name, client, api_key)
        return self.vsm.deploy(parsed, start=start, strict=strict)

    def undeploy(self, name: str, client: str = "", api_key: str = "") -> None:
        self.access.check(Permission.DEPLOY, name, client, api_key)
        self.vsm.undeploy(name)

    def reconfigure(self, descriptor: DescriptorLike,
                    client: str = "", api_key: str = "",
                    strict: bool = False) -> VirtualSensor:
        """Replace a deployed sensor on the fly (the demo's headline act)."""
        parsed = self._coerce_descriptor(descriptor)
        self.access.check(Permission.DEPLOY, parsed.name, client, api_key)
        return self.vsm.reconfigure(parsed, strict=strict)

    @staticmethod
    def _coerce_descriptor(descriptor: DescriptorLike) -> VirtualSensorDescriptor:
        if isinstance(descriptor, VirtualSensorDescriptor):
            return descriptor
        text = descriptor.strip()
        if text.startswith("<"):
            return descriptor_from_xml(text)
        return descriptor_from_file(descriptor)

    def sensor(self, name: str) -> VirtualSensor:
        return self.vsm.get(name)

    def sensor_names(self) -> List[str]:
        return self.vsm.sensor_names()

    # -- querying ----------------------------------------------------------------

    def query(self, sql: str, client: str = "", api_key: str = "") -> Relation:
        """Run an ad-hoc SQL query over the container's streams. Output
        streams are visible as tables named ``vs_<sensor-name>``."""
        self.access.check(Permission.READ, "*", client, api_key)
        return self.processor.execute(sql)

    def register_query(self, sql: str, channel: str = "queue",
                       client: str = "anonymous", name: str = "",
                       history: Optional[str] = None,
                       api_key: str = "") -> Subscription:
        """Register a standing query re-evaluated on new data.

        ``history`` optionally restricts the query to a trailing time
        window of the streams it reads (e.g. ``"10m"``).
        """
        self.access.check(Permission.READ, "*", client, api_key)
        return self.repository.register(sql, channel, client, name,
                                        history=history)

    def unregister_query(self, subscription_id: int) -> None:
        self.repository.unregister(subscription_id)

    def output_table(self, sensor_name: str) -> str:
        """The SQL table name of a sensor's output stream."""
        return safe_table_name(OUTPUT_TABLE_PREFIX + sensor_name.strip().lower())

    # -- simulation control ---------------------------------------------------------

    def run_for(self, duration_ms: int) -> int:
        """Advance the simulation by ``duration_ms``; returns events fired."""
        if self.scheduler is None:
            raise ConfigurationError(
                "run_for() needs a simulated container"
            )
        return self.scheduler.run_for(duration_ms)

    def now(self) -> int:
        return self.clock.now()

    # -- lifecycle ---------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop all sensors, leave the network, release storage."""
        if self._closed:
            return
        self._closed = True
        self.profiler.stop()
        witness = self._witness()
        if witness is not None:
            witness.remove_observer(self._crash_observer)
        # Shutdown keeps permanent streams on disk (that is the promise
        # of permanent-storage); explicit undeploy() still drops them.
        self.vsm.stop_all(keep_storage=True)
        if self.peer is not None:
            self.peer.leave()
        self.storage.close()
        logger.info("container %s shut down", self.name)

    def __enter__(self) -> "GSNContainer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- health checks -----------------------------------------------------------

    def _check_worker_pools(self) -> dict:
        """Degraded when any pool exhausted its restart budget, shed
        load, or is running at >=90% queue occupancy."""
        pools = {}
        worst = "ok"
        for sensor in self.vsm.sensors():
            doc = sensor.lifecycle.pool.status()
            occupancy = (doc["queue_depth"] / doc["queue_capacity"]
                         if doc["queue_capacity"] else 0.0)
            verdict = "ok"
            if doc["degraded"]:
                verdict = "degraded"
            elif doc["tasks_shed"] > 0 or occupancy >= 0.9:
                verdict = "degraded"
            if verdict != "ok":
                worst = "degraded"
            pools[sensor.name] = {"status": verdict,
                                  "queue_depth": doc["queue_depth"],
                                  "queue_capacity": doc["queue_capacity"],
                                  "tasks_shed": doc["tasks_shed"],
                                  "restarts": doc["restarts"],
                                  "degraded": doc["degraded"]}
        return {"status": worst, "pools": pools}

    def _check_sensors(self) -> dict:
        """Worst life-cycle state across the deployed set."""
        states = {}
        worst = "ok"
        for sensor in self.vsm.sensors():
            state = sensor.lifecycle.state.value
            states[sensor.name] = state
            if state == "failed":
                worst = "failed"
            elif state == "degraded" and worst == "ok":
                worst = "degraded"
        return {"status": worst, "states": states}

    def _check_storage(self) -> dict:
        if self._closed:
            return {"status": "failed", "error": "storage closed"}
        return {"status": "ok",
                "streams": len(self.storage.stream_names())}

    def _check_fast_paths(self) -> dict:
        """A poisoned incremental accumulator means a sensor silently
        fell back to the slow path — degraded, not failed."""
        poisoned = {}
        for sensor in self.vsm.sensors():
            count = sensor.fast_paths.snapshot()["poisoned"]
            if count:
                poisoned[sensor.name] = count
        return {"status": "degraded" if poisoned else "ok",
                "poisoned": poisoned}

    def _check_notifications(self) -> dict:
        """Degraded when a bounded channel queue sits at >=90% full
        (polling client has stopped draining)."""
        full = {}
        for channel, (pending, capacity) in sorted(
                self.notifications.queue_depths().items()):
            if capacity != float("inf") and pending >= 0.9 * capacity:
                full[channel] = {"pending": pending, "capacity": capacity}
        return {"status": "degraded" if full else "ok",
                "saturated_channels": full}

    def _check_peer_link(self) -> dict:
        assert self.peer is not None
        bus = self.peer.network.bus
        ratio = bus.dropped / bus.sent if bus.sent else 0.0
        status = "degraded" if ratio > 0.25 else "ok"
        return {"status": status,
                "sent": bus.sent, "dropped": bus.dropped,
                "drop_ratio": round(ratio, 4)}

    def health_report(self) -> dict:
        """The ``GET /healthz`` body: per-component checks, the worst-of
        container verdict, and the (informational) SLO measurements."""
        report = self.health.report()
        report["slos"] = self.slos.report()
        return report

    # -- black-box dumps ---------------------------------------------------------

    def _dump_sections(self) -> dict:
        """Container state sections of a black-box dump. Called by the
        flight recorder with no locks held."""
        metrics = {}
        for family in self.metrics.collect():
            samples = []
            for labels, value in family.samples:
                if isinstance(value, HistogramSnapshot):
                    rendered: object = {"count": value.count,
                                        "sum": round(value.sum, 3),
                                        "mean": round(value.mean, 3)}
                else:
                    rendered = value
                samples.append({"labels": labels, "value": rendered})
            metrics[family.name] = samples
        return {
            "container": {"name": self.name, "state": (
                "stopped" if self._closed else "running")},
            "health": self.health.report(),
            "slos": self.slos.report(),
            "metrics": metrics,
            "traces": self.trace_documents(limit=16),
            "threads": thread_stacks(),
            "profile": self.profiler.hot_stacks(10),
        }

    def blackbox_dump(self, reason: str = "operator-request") -> dict:
        """Force a black-box dump (the ``GET /dump`` path)."""
        return self.flight.dump(reason)

    # -- monitoring ----------------------------------------------------------------

    def _collect_metrics(self) -> List[FamilySnapshot]:
        """Pull-at-scrape-time metrics over the live component counters.

        Registered as a registry collector so the hot paths keep their
        existing cheap counters; the Prometheus families materialize
        only when ``/metrics`` is scraped. Iterates the deployed set at
        call time, so deploy/undeploy need no (un)registration.
        """
        from repro.analysis import crashwitness

        produced = []
        fast_paths = []
        poisoned = []
        static_verdicts = []
        for sensor in self.vsm.sensors():
            produced.append(({"sensor": sensor.name},
                             sensor.elements_produced))
            snapshot = sensor.fast_paths.snapshot()
            poisoned.append(({"sensor": sensor.name}, snapshot["poisoned"]))
            for counter, value in snapshot.items():
                fast_paths.append(
                    ({"sensor": sensor.name, "counter": counter}, value)
                )
            static = sensor.incremental_status()["static"]
            for source, verdict in static["verdicts"].items():
                static_verdicts.append((
                    {"sensor": sensor.name, "source": source,
                     "verdict": ("eligible" if verdict["eligible"]
                                 else "ineligible"),
                     "reason": verdict["reason"] or ""},
                    1,
                ))
        eligible, total = self.vsm.static_coverage()
        crashes = []
        witness = crashwitness.active()
        if witness is not None:
            crashes = [({"owner": owner}, count)
                       for owner, count
                       in sorted(witness.counts_by_owner().items())]
        families = [
            counter_family("gsn_sensor_elements_produced_total",
                           "Output elements emitted per virtual sensor.",
                           produced),
            counter_family("gsn_fast_path_events_total",
                           "Incremental-pipeline fast-path counters.",
                           fast_paths),
            counter_family("gsn_fastpath_poisoned_total",
                           "Incremental accumulators pinned to the legacy "
                           "path after a delta error.",
                           poisoned),
            gauge_family("gsn_fastpath_static",
                         "Deploy-time gsn-plan fast-path verdict per "
                         "per-source query (value is always 1; the "
                         "verdict/reason labels carry the result).",
                         static_verdicts),
            gauge_family("gsn_fastpath_static_coverage_percent",
                         "Share of per-source queries gsn-plan proved "
                         "fast-path eligible across deployed sensors.",
                         [({}, round(100.0 * eligible / total, 1)
                           if total else 0.0)]),
            counter_family("gsn_thread_crashes_total",
                           "Unexpected thread crashes seen by the runtime "
                           "crash witness, by owning component.",
                           crashes),
            counter_family("gsn_queries_executed_total",
                           "Ad-hoc and standing queries executed.",
                           [({}, self.processor.queries_executed)]),
            counter_family("gsn_query_executions_total",
                           "Ad-hoc query executions by engine mode "
                           "(compiled physical pipeline vs tree-walking "
                           "interpreter).",
                           [({"mode": "compiled"},
                             self.processor.compiled_executions),
                            ({"mode": "interpreted"},
                             self.processor.interpreted_executions)]),
            counter_family("gsn_plan_cache_events_total",
                           "Plan-cache lookups and LRU evictions.",
                           [({"event": "hit"}, self.processor.plan_cache.hits),
                            ({"event": "miss"},
                             self.processor.plan_cache.misses),
                            ({"event": "eviction"},
                             self.processor.plan_cache.evictions)]),
            gauge_family("gsn_plan_cache_entries",
                         "Compiled (statement, plan) pairs currently "
                         "cached.",
                         [({}, float(len(self.processor.plan_cache)))]),
            gauge_family("gsn_storage_streams",
                         "Stream tables currently held by the container.",
                         [({}, len(self.storage.stream_names()))]),
            gauge_family("gsn_container_time_ms",
                         "The container's (possibly virtual) clock.",
                         [({}, self.clock.now())]),
        ]
        pool_depths = []
        pool_capacities = []
        pool_shed = []
        for sensor in self.vsm.sensors():
            pool = sensor.lifecycle.pool
            labels = {"pool": sensor.name}
            pool_depths.append((labels, float(pool.queue_depth())))
            pool_capacities.append((labels, float(pool.queue_capacity)))
            pool_shed.append((labels, pool.tasks_shed))
        notif_depths = []
        notif_capacities = []
        for channel, (pending, capacity) in sorted(
                self.notifications.queue_depths().items()):
            labels = {"channel": channel}
            notif_depths.append((labels, float(pending)))
            notif_capacities.append((labels, capacity))
        flight = self.flight.status()
        profiler = self.profiler.status()
        families.extend([
            gauge_family("gsn_worker_queue_depth",
                         "Tasks waiting in each sensor pool's bounded "
                         "queue.",
                         pool_depths),
            gauge_family("gsn_worker_queue_capacity",
                         "Bound of each sensor pool's task queue.",
                         pool_capacities),
            counter_family("gsn_worker_tasks_shed_total",
                           "Tasks dropped because the pool queue was "
                           "full (explicit load shedding).",
                           pool_shed),
            gauge_family("gsn_notification_queue_depth",
                         "Pending notifications per queue channel.",
                         notif_depths),
            gauge_family("gsn_notification_queue_capacity",
                         "Bound of each queue channel (+Inf when "
                         "unbounded).",
                         notif_capacities),
            counter_family("gsn_flight_events_recorded_total",
                           "Events journaled by the flight recorder.",
                           [({}, flight["recorded"])]),
            counter_family("gsn_flight_dumps_total",
                           "Black-box dumps taken.",
                           [({}, flight["dumps_taken"])]),
            gauge_family("gsn_profiler_overhead_percent",
                         "Measured sampling-profiler cost as a share of "
                         "profiled wall time.",
                         [({}, profiler["overhead_percent"])]),
            counter_family("gsn_profiler_samples_total",
                           "Thread-stack samples taken by the profiler.",
                           [({}, profiler["samples"])]),
        ])
        if self.peer is not None:
            bus = self.peer.network.bus
            families.append(counter_family(
                "gsn_bus_messages_total",
                "Messages sent/delivered/dropped on the peer bus.",
                [({"event": "sent"}, bus.sent),
                 ({"event": "delivered"}, bus.delivered),
                 ({"event": "dropped"}, bus.dropped)],
            ))
            families.append(counter_family(
                "gsn_peer_elements_total",
                "Stream elements crossing this node's peer link.",
                [({"direction": "forwarded"}, self.peer.elements_forwarded),
                 ({"direction": "received"}, self.peer.elements_received)],
            ))
        return families

    def _static_coverage(self) -> float:
        eligible, total = self.vsm.static_coverage()
        return round(100.0 * eligible / total, 1) if total else 0.0

    def metrics_text(self) -> str:
        """The Prometheus text exposition served at ``/metrics``."""
        return self.metrics.expose_text()

    def trace_documents(self, trace_id: Optional[str] = None,
                        limit: Optional[int] = None) -> List[dict]:
        """Recent span trees as JSON-ready dicts (the ``/trace`` feed)."""
        if trace_id is not None:
            spans = self.traces.find(trace_id)
        else:
            spans = self.traces.recent(limit)
        return [span.to_dict() for span in spans]

    def status(self) -> dict:
        """The container-wide status document the web interface serves."""
        from repro.analysis import crashwitness

        witness = crashwitness.active()
        return {
            "name": self.name,
            "state": "stopped" if self._closed else "running",
            "counters": {
                "sensors_deployed": len(self.vsm.sensor_names()),
                "deploy_count": self.vsm.deploy_count,
                "queries_executed": self.processor.queries_executed,
                "traces_buffered": len(self.traces),
            },
            "uptime_ms": self._uptime.uptime_ms(),
            "time": self.clock.now(),
            "simulated": self.simulated,
            "fastpath_static_coverage_percent": self._static_coverage(),
            "virtual_sensors": self.vsm.status(),
            "queries": self.processor.status(),
            "subscriptions": self.repository.status(),
            "notifications": self.notifications.status(),
            "access": self.access.status(),
            "integrity": self.integrity.status(),
            "storage": {"streams": self.storage.stream_names()},
            "peer": self.peer.status() if self.peer else None,
            "metrics": self.metrics.status(),
            "traces": self.traces.status(),
            "crash_witness": witness.status() if witness else None,
            "health": self.health_report(),
            "flight": self.flight.status(),
            "profiler": self.profiler.status(),
        }

    def __repr__(self) -> str:
        return (f"<GSNContainer {self.name!r} "
                f"sensors={self.vsm.sensor_names()}>")
