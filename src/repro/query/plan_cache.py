"""Plan cache.

Parsing and planning dominate the cost of small stream queries (the paper
notes "the cost of query compiling increases" with many clients). The
cache keys on the SQL text and keeps the most recently used plans, giving
repeated subscriptions amortized O(1) compilation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional, Tuple

from repro.sqlengine.ast_nodes import SelectStatement
from repro.sqlengine.parser import parse_select
from repro.sqlengine.planner import SelectPlan, plan_select


class PlanCache:
    """An LRU cache of compiled (statement, plan) pairs."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 0:
            raise ValueError("capacity cannot be negative")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Called with the evicted SQL key on each LRU eviction; the
        #: container points this at the flight recorder.
        self.on_evict: Optional[Callable[[str], None]] = None
        self._entries: "OrderedDict[str, Tuple[SelectStatement, SelectPlan]]" = (
            OrderedDict()
        )

    def compile(self, sql: str) -> Tuple[SelectStatement, SelectPlan]:
        """Parse+plan ``sql``, consulting the cache first."""
        key = sql.strip()
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        statement = parse_select(sql)
        plan = plan_select(statement)
        if self.capacity > 0:
            self._entries[key] = (statement, plan)
            if len(self._entries) > self.capacity:
                evicted, __ = self._entries.popitem(last=False)
                self.evictions += 1
                if self.on_evict is not None:
                    self.on_evict(evicted)
        return statement, plan

    def invalidate(self, sql: Optional[str] = None) -> None:
        """Drop one entry, or everything when ``sql`` is ``None``."""
        if sql is None:
            self._entries.clear()
        else:
            self._entries.pop(sql.strip(), None)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
