"""The query processor.

Executes ad-hoc and registered SQL over the container's streams. The
catalog is supplied by a provider callable (normally
``StorageManager.catalog``) so every query sees a consistent snapshot of
the retained stream data at execution time.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.metrics.collectors import LatencyRecorder
from repro.query.plan_cache import PlanCache
from repro.status import UptimeTracker, status_doc
from repro.sqlengine.executor import Catalog, execute_plan
from repro.sqlengine.relation import Relation

CatalogProvider = Callable[[], Catalog]


class QueryProcessor:
    """SQL parsing, planning (cached), and execution for one container."""

    def __init__(self, catalog_provider: CatalogProvider,
                 plan_cache: Optional[PlanCache] = None) -> None:
        self._catalog_provider = catalog_provider
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.latency = LatencyRecorder(keep_samples=True)
        self.queries_executed = 0
        self._uptime = UptimeTracker()

    def execute(self, sql: str, catalog: Optional[Catalog] = None) -> Relation:
        """Run ``sql`` and return its result relation.

        ``catalog`` overrides the provider (used when many registered
        queries run against one snapshot, as in the Figure 4 experiment).
        """
        self.latency.start()
        try:
            __, plan = self.plan_cache.compile(sql)
            target = catalog if catalog is not None else self._catalog_provider()
            result = execute_plan(plan, target)
            self.queries_executed += 1
            return result
        finally:
            self.latency.stop()

    def explain(self, sql: str, analyze: bool = False) -> str:
        """The logical plan of ``sql`` as an indented tree (compiled
        through the same cache queries execute from).

        With ``analyze=True`` every node also carries the gsn-plan
        cardinality/cost estimate, seeded with the *current* retained
        row counts of the catalog's stream tables.
        """
        from repro.sqlengine.explain import explain_plan

        __, plan = self.plan_cache.compile(sql)
        if not analyze:
            return explain_plan(plan)
        from repro.analysis.planpass import annotate_plan

        catalog = self._catalog_provider()
        table_rows = {name: float(len(catalog.get(name)))
                      for name in catalog.table_names()}
        return annotate_plan(plan, table_rows=table_rows).render()

    def snapshot_catalog(self) -> Catalog:
        """The current catalog snapshot (one materialization, many queries)."""
        return self._catalog_provider()

    def status(self) -> dict:
        return status_doc(
            "query-processor", "running",
            counters={
                "queries_executed": self.queries_executed,
                "plan_cache_hits": self.plan_cache.hits,
                "plan_cache_misses": self.plan_cache.misses,
            },
            uptime_ms=self._uptime.uptime_ms(),
            queries_executed=self.queries_executed,
            plan_cache={
                "entries": len(self.plan_cache),
                "hits": self.plan_cache.hits,
                "misses": self.plan_cache.misses,
                "hit_ratio": round(self.plan_cache.hit_ratio, 4),
            },
            latency=self.latency.summary(),
        )
