"""The query processor.

Executes ad-hoc and registered SQL over the container's streams. The
catalog is supplied by a provider callable (normally
``StorageManager.catalog``) so every query sees a consistent snapshot of
the retained stream data at execution time.
"""

from __future__ import annotations

import logging
from typing import Callable, Optional

from repro.metrics.collectors import LatencyRecorder
from repro.query.plan_cache import PlanCache
from repro.status import UptimeTracker, status_doc
from repro.sqlengine.executor import Catalog
from repro.sqlengine.physical import compile_for_catalog, run_plan
from repro.sqlengine.relation import Relation

CatalogProvider = Callable[[], Catalog]

logger = logging.getLogger(__name__)


class QueryProcessor:
    """SQL parsing, planning (cached), and execution for one container."""

    def __init__(self, catalog_provider: CatalogProvider,
                 plan_cache: Optional[PlanCache] = None) -> None:
        self._catalog_provider = catalog_provider
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.latency = LatencyRecorder(keep_samples=True)
        self.queries_executed = 0
        self.compiled_executions = 0
        self.interpreted_executions = 0
        self._uptime = UptimeTracker()

    def execute(self, sql: str, catalog: Optional[Catalog] = None) -> Relation:
        """Run ``sql`` and return its result relation.

        ``catalog`` overrides the provider (used when many registered
        queries run against one snapshot, as in the Figure 4 experiment).
        Supported shapes run through the compiled physical pipeline
        cached on the plan-cache entry; the rest fall back to the
        tree-walking interpreter.
        """
        self.latency.start()
        try:
            __, plan = self.plan_cache.compile(sql)
            target = catalog if catalog is not None else self._catalog_provider()
            result, compiled = run_plan(plan, target)
            self.queries_executed += 1
            if compiled:
                self.compiled_executions += 1
            else:
                self.interpreted_executions += 1
            return result
        finally:
            self.latency.stop()

    def explain(self, sql: str, analyze: bool = False) -> str:
        """The logical plan of ``sql`` as an indented tree (compiled
        through the same cache queries execute from), followed by the
        compiled physical-operator pipeline the engine would run — or
        the reason it falls back to the tree-walking interpreter.

        With ``analyze=True`` every logical node also carries the
        gsn-plan cardinality/cost estimate seeded with the *current*
        retained row counts, and the pipeline is actually executed so
        each physical operator reports the rows it produced.
        """
        from repro.sqlengine.explain import explain_plan

        __, plan = self.plan_cache.compile(sql)
        catalog = self._catalog_provider()
        if analyze:
            from repro.analysis.planpass import annotate_plan

            table_rows = {name: float(len(catalog.get(name)))
                          for name in catalog.table_names()}
            lines = [annotate_plan(plan, table_rows=table_rows).render()]
        else:
            lines = [explain_plan(plan)]
        pipeline = compile_for_catalog(plan, catalog)
        if pipeline is None:
            reason = getattr(plan, "_phys_failed", None) or "unsupported"
            lines.append(f"execution: interpreted ({reason})")
        else:
            if analyze:
                try:
                    pipeline.execute(catalog)
                except Exception as exc:
                    # EXPLAIN must render even when the query itself
                    # errors; the failure goes into the output.
                    logger.debug("explain analyze run failed: %s", exc)
                    lines.append("execution: compiled pipeline "
                                 f"(run failed: {exc})")
                else:
                    lines.append("execution: compiled pipeline")
            else:
                lines.append("execution: compiled pipeline")
            lines.append(pipeline.explain())
        return "\n".join(lines)

    def snapshot_catalog(self) -> Catalog:
        """The current catalog snapshot (one materialization, many queries)."""
        return self._catalog_provider()

    def status(self) -> dict:
        return status_doc(
            "query-processor", "running",
            counters={
                "queries_executed": self.queries_executed,
                "compiled_executions": self.compiled_executions,
                "interpreted_executions": self.interpreted_executions,
                "plan_cache_hits": self.plan_cache.hits,
                "plan_cache_misses": self.plan_cache.misses,
                "plan_cache_evictions": self.plan_cache.evictions,
            },
            uptime_ms=self._uptime.uptime_ms(),
            queries_executed=self.queries_executed,
            plan_cache={
                "entries": len(self.plan_cache),
                "hits": self.plan_cache.hits,
                "misses": self.plan_cache.misses,
                "evictions": self.plan_cache.evictions,
                "hit_ratio": round(self.plan_cache.hit_ratio, 4),
            },
            executions={
                "compiled": self.compiled_executions,
                "interpreted": self.interpreted_executions,
            },
            latency=self.latency.summary(),
        )
