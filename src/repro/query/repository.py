"""The query repository.

"The query repository manages all registered queries (subscriptions) and
defines and maintains the set of currently active queries for the query
processor" (paper, Section 4). Subscriptions index by the stream tables
they read; when a virtual sensor emits, only the affected subscriptions
re-evaluate.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from repro.exceptions import ValidationError
from repro.gsntime.clock import Clock
from repro.gsntime.duration import parse_duration
from repro.notifications.manager import NotificationManager
from repro.query.processor import QueryProcessor
from repro.query.subscription import Subscription
from repro.sqlengine.executor import Catalog
from repro.sqlengine.relation import Relation
from repro.sqlengine.rewriter import referenced_tables
from repro.status import UptimeTracker, status_doc


def _windowed_catalog(base: Catalog, tables: FrozenSet[str], now: int,
                      history_ms: int) -> Catalog:
    """A catalog view restricting each stream table the subscription
    reads to elements with ``timed`` in ``(now - history_ms, now]``."""
    cutoff = now - history_ms
    windowed = Catalog()
    for table in tables:
        relation = base.get(table)
        if "timed" not in relation:
            windowed.register(table, relation)
            continue
        position = relation.column_position("timed")
        filtered = Relation(relation.columns, (
            row for row in relation.rows
            if row[position] is not None and cutoff < row[position] <= now
        ))
        windowed.register(table, filtered)
    return windowed


class QueryRepository:
    """Holds subscriptions and drives their re-evaluation."""

    def __init__(self, processor: QueryProcessor,
                 notifications: NotificationManager,
                 clock: Clock) -> None:
        self.processor = processor
        self.notifications = notifications
        self.clock = clock
        self._subscriptions: Dict[int, Subscription] = {}
        self._by_table: Dict[str, List[int]] = {}
        self._uptime = UptimeTracker()
        self.evaluations = 0

    # -- registration --------------------------------------------------------

    def register(self, sql: str, channel: str = "queue",
                 client: str = "anonymous", name: str = "",
                 history: Optional[str] = None) -> Subscription:
        """Register a standing query; validates the SQL eagerly.

        ``history`` optionally bounds how far back the query sees, as a
        duration string (``"10s"``, ``"30m"``): at evaluation time the
        stream tables are restricted to elements from the trailing
        window — the per-client "history size" of the paper's workload.
        """
        try:
            tables = frozenset(referenced_tables(sql))
        except Exception as exc:
            raise ValidationError(f"subscription SQL invalid: {exc}") from exc
        if not self.notifications.has_channel(channel):
            raise ValidationError(f"unknown notification channel {channel!r}")
        history_ms = None
        if history is not None:
            try:
                history_ms = parse_duration(history).millis
            except Exception as exc:
                raise ValidationError(
                    f"bad subscription history {history!r}: {exc}"
                ) from exc
        subscription = Subscription(
            sql=sql, channel=channel, client=client, name=name,
            tables=tables, history_ms=history_ms,
            created_at=self.clock.now(),
        )
        self._subscriptions[subscription.id] = subscription
        for table in tables:
            self._by_table.setdefault(table, []).append(subscription.id)
        return subscription

    def unregister(self, subscription_id: int) -> None:
        subscription = self._subscriptions.pop(subscription_id, None)
        if subscription is None:
            raise ValidationError(f"no subscription #{subscription_id}")
        subscription.deactivate()
        for table in subscription.tables:
            members = self._by_table.get(table, [])
            if subscription_id in members:
                members.remove(subscription_id)
            if not members:
                self._by_table.pop(table, None)

    def get(self, subscription_id: int) -> Subscription:
        try:
            return self._subscriptions[subscription_id]
        except KeyError:
            raise ValidationError(
                f"no subscription #{subscription_id}"
            ) from None

    def subscriptions(self) -> List[Subscription]:
        return [self._subscriptions[key]
                for key in sorted(self._subscriptions)]

    def affected_by(self, table_name: str) -> List[Subscription]:
        return [
            self._subscriptions[sid]
            for sid in self._by_table.get(table_name.lower(), [])
            if self._subscriptions[sid].active
        ]

    # -- evaluation ----------------------------------------------------------

    def data_arrived(self, table_name: str,
                     catalog: Optional[Catalog] = None) -> int:
        """Re-evaluate every subscription reading ``table_name``.

        Returns the number of notifications dispatched. ``catalog``
        optionally pins one snapshot for all affected subscriptions.
        """
        affected = self.affected_by(table_name)
        if not affected:
            return 0
        if catalog is None and len(affected) > 1:
            catalog = self.processor.snapshot_catalog()
        dispatched = 0
        for subscription in affected:
            target = catalog
            if subscription.history_ms is not None:
                base = (catalog if catalog is not None
                        else self.processor.snapshot_catalog())
                target = _windowed_catalog(base, subscription.tables,
                                           self.clock.now(),
                                           subscription.history_ms)
            result = self.processor.execute(subscription.sql, target)
            subscription.last_result = result
            subscription.notifications_sent += 1
            self.notifications.deliver(subscription, result)
            dispatched += 1
        self.evaluations += dispatched
        return dispatched

    def status(self) -> dict:
        return status_doc(
            "query-repository", "running",
            counters={"registered": len(self._subscriptions),
                      "evaluations": self.evaluations},
            uptime_ms=self._uptime.uptime_ms(),
            registered=len(self._subscriptions),
            by_table={table: len(ids)
                      for table, ids in self._by_table.items()},
            subscriptions=[s.summary() for s in self.subscriptions()],
        )
