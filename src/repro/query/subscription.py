"""Registered queries (subscriptions).

A subscription is a standing SQL query plus a notification target. The
repository re-evaluates it whenever one of the streams it reads produces a
new element, and pushes the result through the notification manager.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.exceptions import ValidationError
from repro.sqlengine.relation import Relation

_ids = itertools.count(1)


@dataclass
class Subscription:
    """One registered query.

    ``channel`` names the notification channel to deliver through;
    ``client`` identifies the subscriber (for access control and the web
    interface). ``tables`` is derived from the SQL at registration.
    """

    sql: str
    channel: str
    client: str = "anonymous"
    name: str = ""
    tables: FrozenSet[str] = frozenset()
    active: bool = True
    #: Client-side history window in milliseconds: when set, the query
    #: only sees stream elements from the trailing window (the "history
    #: size" clients specify in the paper's Figure 4 workload).
    history_ms: Optional[int] = None
    id: int = field(default_factory=lambda: next(_ids))
    notifications_sent: int = 0
    last_result: Optional[Relation] = None
    created_at: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.sql.strip():
            raise ValidationError("subscription needs a query")
        if not self.name:
            self.name = f"subscription-{self.id}"

    def deactivate(self) -> None:
        self.active = False

    def summary(self) -> dict:
        return {
            "id": self.id,
            "name": self.name,
            "client": self.client,
            "channel": self.channel,
            "sql": self.sql,
            "tables": sorted(self.tables),
            "history_ms": self.history_ms,
            "active": self.active,
            "notifications_sent": self.notifications_sent,
        }
