"""Query Manager (QM).

"Query processing is done by the query manager which includes the query
processor being in charge of SQL parsing, query planning, and execution of
queries (using an adaptive query execution plan). The query repository
manages all registered queries (subscriptions)..." (paper, Section 4).
"""

from repro.query.plan_cache import PlanCache
from repro.query.processor import QueryProcessor
from repro.query.subscription import Subscription
from repro.query.repository import QueryRepository

__all__ = ["PlanCache", "QueryProcessor", "Subscription", "QueryRepository"]
