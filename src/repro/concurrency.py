"""Lock construction and the container's sanctioned lock order.

Every lock in the threaded runtime is created through :func:`new_lock`
with a stable, class-qualified name (``"WorkerPool._lock"``,
``"TraceBuffer._lock"``). By default this returns a plain
:class:`threading.Lock`/:class:`threading.RLock` — zero overhead, no
wrapper object — so production containers pay nothing for the naming.

When the lock-order witness is enabled
(:func:`repro.analysis.lockwitness.enable`, which the test suite does
through a conftest fixture) the factory returns instrumented locks that
record the actual per-thread acquisition order and assert it against
:data:`LOCK_ORDER` and against previously observed edges — the runtime
cross-check of ``gsn-lint --deadlock``'s static acquisition graph.

``LOCK_ORDER`` is the sanctioned set of "outer before inner" pairs.  It
must stay acyclic, and it must agree with the ``# lock-order:``
declarations the static pass reads from the sources (the witness and the
analyzer share the class-qualified naming scheme, so the same pair can
be written down once per world: here for the runtime, in a trailing
comment for the analyzer).
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Tuple

#: Sanctioned acquisition order, outermost lock first.  A thread holding
#: the right-hand lock of a pair must never try to acquire the left-hand
#: one.  Keep this list in sync with docs/concurrency.md and with the
#: ``# lock-order:`` source annotations.
LOCK_ORDER: Tuple[Tuple[str, str], ...] = (
    # Step 5 of the pipeline: the emit lock serializes persistence and
    # counter updates; appending to a permanent SQLite table then takes
    # the storage backend's connection lock.
    ("VirtualSensor._emit_lock", "SQLiteStorage._lock"),
    ("VirtualSensor._emit_lock", "SQLiteStreamTable._lock"),
    # The peer node registers/unregisters its subscription maps under its
    # own lock before touching the (unlocked, scheduler-driven) bus, and
    # remote element delivery lands in the sensor's emit path.
    ("PeerNode._lock", "VirtualSensor._emit_lock"),
)

#: Installed by :func:`repro.analysis.lockwitness.enable`; ``None`` means
#: "plain stdlib locks" (the production default).
_witness_factory: Optional[Callable[[str, bool], object]] = None


def new_lock(name: str, reentrant: bool = False):
    """Create the lock named ``name``.

    Returns a plain :class:`threading.Lock` (or ``RLock`` when
    ``reentrant``) unless the lock-order witness is installed, in which
    case an instrumented lock with identical semantics is returned.
    """
    factory = _witness_factory
    if factory is not None:
        return factory(name, reentrant)
    return threading.RLock() if reentrant else threading.Lock()


def install_witness(factory: Optional[Callable[[str, bool], object]]) -> None:
    """Install (or, with ``None``, remove) the witness lock factory."""
    global _witness_factory
    _witness_factory = factory


def current_factory() -> Optional[Callable[[str, bool], object]]:
    """The installed witness factory, if any.

    Witnesses compose by wrapping: the race witness captures whatever
    factory is installed (the lock-order witness's, usually), installs
    its own tracking factory around it, and restores the captured one on
    disable.
    """
    return _witness_factory
