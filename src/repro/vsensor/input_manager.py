"""Input Stream Manager (ISM).

"The input stream manager ... manages the input streams and ensures
stream quality (disconnections, unexpected delays, missing values, etc.)"
(paper, Section 4). For every declared stream source the ISM owns the
wrapper instance, the sampler, the disconnect buffer, the quality monitor,
and the window; per input stream it owns the rate bounder. Whenever an
element clears those stages, the ISM triggers the virtual sensor's
processing pipeline.
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.concurrency import new_lock
from repro.descriptors.model import InputStreamSpec, StreamSourceSpec
from repro.exceptions import StreamError
from repro.gsntime.clock import Clock
from repro.gsntime.duration import parse_duration, parse_window_spec
from repro.metrics.tracing import PipelineTracer, Span, new_trace_id
from repro.sqlengine.relation import Relation
from repro.streams.buffer import DisconnectBuffer
from repro.streams.element import StreamElement
from repro.streams.materialized import WindowRelation
from repro.streams.quality import StreamQualityMonitor
from repro.streams.sampling import ProbabilisticSampler, RateBounder
from repro.streams.window import SlidingWindow, make_window
from repro.wrappers.base import Wrapper

#: Called by the ISM when an input stream fires: (stream_name, element).
TriggerCallback = Callable[[str, StreamElement], None]

logger = logging.getLogger("repro.vsensor")

#: Default window when a source declares no storage-size: latest element.
_DEFAULT_WINDOW_SPEC = "1"


class SourceRuntime:
    """Everything the ISM keeps per ``<stream-source>``."""

    def __init__(self, spec: StreamSourceSpec, wrapper: Wrapper,
                 clock: Clock, sampler_seed: Optional[int] = None,
                 incremental: bool = True,
                 tracer: Optional[PipelineTracer] = None) -> None:
        self.spec = spec
        self.wrapper = wrapper
        self.clock = clock
        self.tracer = tracer
        # Most recent finished ingest (step-1) span, adopted by the
        # pipeline's trigger span when the trace ids match.
        self.last_ingest_span: Optional[Span] = None
        # The lock serializes window mutation (wrapper threads) against
        # window reads (pipeline threads); in synchronous containers it
        # is uncontended and nearly free.
        self._lock = new_lock("SourceRuntime._lock")
        self.window: SlidingWindow = make_window(  # guarded-by: SourceRuntime._lock
            spec.storage_size or _DEFAULT_WINDOW_SPEC
        )
        self.incremental = incremental
        self.materializer: Optional[WindowRelation] = None  # guarded-by: SourceRuntime._lock
        if incremental:
            try:
                schema = wrapper.output_schema()
            except Exception as exc:
                schema = None  # wrapper can't tell yet: stay on legacy
                logger.info(
                    "%s: wrapper %s has no schema before start (%s); "
                    "window stays on the legacy path",
                    spec.alias, spec.address.wrapper, exc,
                )
            if schema is not None:
                self.materializer = WindowRelation(schema.field_names)
                self.window.add_observer(self.materializer)
        self.sampler = ProbabilisticSampler(spec.sampling_rate,
                                            seed=sampler_seed)
        self.buffer = DisconnectBuffer(spec.disconnect_buffer)
        self.quality = StreamQualityMonitor()
        self.elements_admitted = 0
        # Slide: decouple window updates from pipeline triggering.
        self._slide_kind: Optional[str] = None
        self._slide_amount = 0
        if spec.slide is not None:
            self._slide_kind, self._slide_amount = parse_window_spec(
                spec.slide)
        self._slide_count = 0
        self._last_slide_fire: Optional[int] = None

    def receive(self, element: StreamElement) -> Optional[StreamElement]:
        """Run one raw element through the admission stages.

        Returns the admitted (stamped) element, or ``None`` if the element
        was buffered, sampled out, or dropped.
        """
        now = self.clock.now()
        tracer = self.tracer
        span: Optional[Span] = None
        if tracer is not None and tracer.enabled:
            # Sampling decision: an inbound trace id (remote hop) is
            # always honored; fresh elements draw against the rate.
            trace_id = element.trace_id
            if trace_id is None and tracer.sample():
                trace_id = new_trace_id()
                element = element.with_trace(trace_id)
            if trace_id is not None:
                span = tracer.ingest_span(
                    trace_id, now, source=self.spec.alias,
                    wrapper=self.spec.address.wrapper)
        element = element.with_arrival(now)
        if element.timed is None:
            # Pipeline step 1: stamp with the container's local clock.
            element = element.with_timestamp(now)
        self.quality.observe(element)
        if not self.buffer.offer(element):
            admitted: Optional[StreamElement] = None
        else:
            admitted = self._admit(element)
        if span is not None:
            span.attributes["admitted"] = admitted is not None
            tracer.record_ingest(span)  # type: ignore[union-attr]
            self.last_ingest_span = span
        return admitted

    def _admit(self, element: StreamElement) -> Optional[StreamElement]:
        if not self.sampler.admit(element):
            return None
        with self._lock:
            self.window.append(element)
        self.elements_admitted += 1
        return element

    @property
    def version(self) -> int:
        """Monotonically increasing window-content version (dirty flag)."""
        return self.window.version

    def slide_allows(self, element: StreamElement) -> bool:
        """Whether this admission should fire the pipeline.

        Without a ``slide`` spec every admission triggers (GSN's default).
        A count slide of N fires on every Nth admitted element; a time
        slide fires when at least the span elapsed (element timestamps)
        since the last firing. The window updates either way.
        """
        if self._slide_kind is None:
            return True
        if self._slide_kind == "count":
            self._slide_count += 1
            if self._slide_count >= self._slide_amount:
                self._slide_count = 0
                return True
            return False
        timed = element.timed or 0
        if self._last_slide_fire is None \
                or timed - self._last_slide_fire >= self._slide_amount:
            self._last_slide_fire = timed
            return True
        return False

    def disconnect(self) -> None:
        """Simulate or record a source outage."""
        self.buffer.disconnect()
        self.quality.record_disconnect()

    def reconnect(self) -> List[StreamElement]:
        """End the outage; replay buffered elements into the window.

        Returns the elements that were admitted on replay (callers may
        re-trigger processing for them).
        """
        admitted = []
        for element in self.buffer.reconnect():
            result = self._admit(element)
            if result is not None:
                admitted.append(result)
        return admitted

    def window_relation(self, now: Optional[int] = None) -> Relation:
        """Window contents unnested into a flat relation (step 2).

        This is the legacy per-trigger rebuild: O(window) tuples built
        from scratch. The incremental pipeline uses
        :meth:`snapshot_state` instead.
        """
        with self._lock:
            return self._rebuild(now)

    def _rebuild(self, now: Optional[int] = None) -> Relation:  # requires-lock: _lock
        schema = self.wrapper.output_schema()
        columns = tuple(schema.field_names) + ("timed",)
        rows = [
            tuple(element.get(field) for field in schema.field_names)
            + (element.timed,)
            for element in self.window.contents(now)
        ]
        return Relation(columns, rows)

    def snapshot_state(
        self, now: Optional[int] = None, zero_copy: bool = False,
    ) -> Tuple[Relation, int, bool, bool]:
        """The window relation plus the metadata the cache needs.

        Returns ``(relation, version, from_view, cacheable)``:

        * ``relation`` — the step-2 window relation;
        * ``version`` — the window version it corresponds to (sampled
          *after* expiry, so it is a sound cache key);
        * ``from_view`` — True when the relation came from the
          delta-maintained materialization rather than a rebuild;
        * ``cacheable`` — False when the contents depend on ``now``
          beyond what ``version`` captures (a time window holding
          elements stamped ahead of the query time), so derived results
          must not be reused across triggers.

        With ``zero_copy`` the live :class:`WindowRelation` itself is
        returned — only safe when the caller finishes reading it before
        this source admits another element (synchronous containers).
        """
        with self._lock:
            faithful = self.window.synchronize(now)
            mat = self.materializer
            if mat is None or not faithful:
                return (self._rebuild(now), self.window.version,
                        False, faithful)
            relation: Relation = mat if zero_copy else mat.snapshot()
            return relation, self.window.version, True, True

    def status(self) -> dict:
        with self._lock:
            window_spec = self.window.spec()
            window_size = len(self.window)
        return {
            "alias": self.spec.alias,
            "wrapper": self.spec.address.wrapper,
            "window": window_spec,
            "window_size": window_size,
            "admitted": self.elements_admitted,
            "connected": self.buffer.connected,
            "buffered": self.buffer.pending,
            "quality": self.quality.report.as_dict(),
        }


class StreamRuntime:
    """Per-``<input-stream>`` state: sources, rate bounder, lifetime."""

    def __init__(self, spec: InputStreamSpec, sources: List[SourceRuntime],
                 started_at: int) -> None:
        self.spec = spec
        self.sources = sources
        self._by_alias = {source.spec.alias: source for source in sources}
        self.rate_bounder: Optional[RateBounder] = (
            RateBounder(spec.rate) if spec.rate > 0 else None
        )
        self.expires_at: Optional[int] = None
        if spec.lifetime is not None:
            self.expires_at = started_at + parse_duration(spec.lifetime).millis
        self.triggers = 0
        self.triggers_bounded = 0

    def expired(self, now: int) -> bool:
        """Whether the stream's lifetime bound has elapsed — expired
        streams stop triggering so their resources are released."""
        return self.expires_at is not None and now >= self.expires_at

    def source(self, alias: str) -> SourceRuntime:
        try:
            return self._by_alias[alias]
        except KeyError:
            raise StreamError(f"input stream {self.spec.name!r} has no "
                              f"source {alias!r}") from None


class InputStreamManager:
    """Wires wrappers to windows and fires the processing trigger."""

    def __init__(self, clock: Clock, trigger: TriggerCallback,
                 seed: Optional[int] = None,
                 incremental: bool = True,
                 tracer: Optional[PipelineTracer] = None) -> None:
        self.clock = clock
        self._trigger = trigger
        # Registry + trigger bookkeeping shared between the deployment
        # thread, wrapper listener threads, and the async-gateway drain
        # thread. The lock covers only bookkeeping — never held across
        # receive()/_trigger() dispatch.
        self._lock = new_lock("InputStreamManager._lock")
        self._streams: Dict[str, StreamRuntime] = {}  # guarded-by: InputStreamManager._lock
        self._enabled = True
        self._seed = seed
        self._incremental = incremental
        self.tracer = tracer
        # The source whose admission caused the in-flight trigger; lets
        # the pipeline adopt that source's ingest span without widening
        # the TriggerCallback signature.
        self.last_source: Optional[SourceRuntime] = None  # guarded-by: InputStreamManager._lock

    def add_stream(self, spec: InputStreamSpec,
                   wrappers: Dict[str, Wrapper]) -> StreamRuntime:
        """Register an input stream; ``wrappers`` maps source alias to the
        wrapper instance serving it."""
        with self._lock:
            if spec.name in self._streams:
                raise StreamError(
                    f"input stream {spec.name!r} already exists")
        sources = []
        for index, source_spec in enumerate(spec.sources):
            wrapper = wrappers[source_spec.alias]
            seed = None if self._seed is None else self._seed + index
            runtime = SourceRuntime(source_spec, wrapper, self.clock, seed,
                                    incremental=self._incremental,
                                    tracer=self.tracer)
            wrapper.add_listener(
                self._listener(spec.name, runtime)
            )
            sources.append(runtime)
        stream = StreamRuntime(spec, sources, started_at=self.clock.now())
        with self._lock:
            self._streams[spec.name] = stream
        return stream

    def remove_stream(self, name: str) -> None:
        with self._lock:
            stream = self._streams.pop(name, None)
        if stream is None:
            raise StreamError(f"no input stream {name!r}")

    def _listener(self, stream_name: str, runtime: SourceRuntime):
        def on_element(element: StreamElement) -> None:
            if not self._enabled:
                return
            with self._lock:
                stream = self._streams.get(stream_name)
            if stream is None:
                return
            if stream.expired(self.clock.now()):
                return
            admitted = runtime.receive(element)
            if admitted is None:
                return
            if not runtime.slide_allows(admitted):
                return
            if stream.rate_bounder is not None \
                    and not stream.rate_bounder.admit(admitted):
                stream.triggers_bounded += 1
                return
            stream.triggers += 1
            with self._lock:
                self.last_source = runtime
            self._trigger(stream_name, admitted)
        return on_element

    def ingest_batch(self, stream_name: str, alias: str,
                     elements: Sequence[StreamElement]) -> int:
        """Admit a batch of elements for one source, triggering at most
        once.

        The per-element path (:meth:`_listener`) evaluates the query on
        every slide-allowed admission; this path amortizes that cost:
        every element goes through the same quality/buffer/sampling/
        window stages, but the trigger fires once with the *last*
        slide-allowed element — after which the window holds exactly
        what per-tuple delivery would have left, so the final evaluation
        sees identical state.  Returns the number of admitted elements
        (what survived sampling/quality, not what triggered).  This is
        the hand-off target of the async ingestion gateway.
        """
        if not self._enabled:
            return 0
        with self._lock:
            stream = self._streams.get(stream_name)
        if stream is None:
            raise StreamError(f"no input stream {stream_name!r}")
        if stream.expired(self.clock.now()):
            return 0
        runtime = stream.source(alias)
        last: Optional[StreamElement] = None
        admitted = 0
        for element in elements:
            result = runtime.receive(element)
            if result is None:
                continue
            admitted += 1
            if runtime.slide_allows(result):
                last = result
        if last is None:
            return admitted
        if stream.rate_bounder is not None \
                and not stream.rate_bounder.admit(last):
            stream.triggers_bounded += 1
            return admitted
        stream.triggers += 1
        with self._lock:
            self.last_source = runtime
        self._trigger(stream_name, last)
        return admitted

    def pause(self) -> None:
        """Stop triggering (elements are still observed by wrappers but
        discarded) — used while a sensor is paused or being reconfigured."""
        self._enabled = False

    def resume(self) -> None:
        self._enabled = True

    def stream(self, name: str) -> StreamRuntime:
        try:
            with self._lock:
                return self._streams[name]
        except KeyError:
            raise StreamError(f"no input stream {name!r}") from None

    def streams(self) -> List[StreamRuntime]:
        with self._lock:
            return list(self._streams.values())

    def status(self) -> dict:
        now = self.clock.now()
        with self._lock:
            streams = dict(self._streams)
        return {
            name: {
                "rate": stream.spec.rate,
                "triggers": stream.triggers,
                "triggers_bounded": stream.triggers_bounded,
                "expired": stream.expired(now),
                "expires_at": stream.expires_at,
                "sources": [source.status() for source in stream.sources],
            }
            for name, stream in streams.items()
        }
