"""Virtual Sensor Manager (VSM).

"The virtual sensor manager is responsible for providing access to the
virtual sensors, managing the delivery of sensor data, and providing the
necessary administrative infrastructure" (paper, Section 4). The VSM
deploys descriptors (creating wrappers, storage, and the sensor runtime),
undeploys them, and supports on-the-fly reconfiguration — the deployment
story the demo centers on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.concurrency import new_lock
from repro.descriptors.model import VirtualSensorDescriptor
from repro.descriptors.validation import validate_descriptor
from repro.exceptions import DeploymentError
from repro.gsntime.clock import Clock
from repro.gsntime.scheduler import EventScheduler
from repro.metrics.flight import FlightRecorder
from repro.metrics.registry import MetricsRegistry
from repro.metrics.tracing import TraceBuffer
from repro.status import UptimeTracker, status_doc
from repro.storage.manager import StorageManager
from repro.vsensor.virtual_sensor import VirtualSensor
from repro.wrappers.base import Wrapper
from repro.wrappers.registry import WrapperRegistry
from repro.wrappers.remote import RemoteWrapper, SubscribeFunc

#: Prefix of the storage tables holding virtual-sensor output streams.
OUTPUT_TABLE_PREFIX = "vs_"

DeployHook = Callable[[VirtualSensor], None]
UndeployHook = Callable[[str], None]


class VirtualSensorManager:
    """Deploys and manages the pool of virtual sensors of one container."""

    def __init__(self, clock: Clock, storage: StorageManager,
                 registry: WrapperRegistry,
                 scheduler: Optional[EventScheduler] = None,
                 remote_subscribe: Optional[SubscribeFunc] = None,
                 synchronous: bool = True,
                 seed: Optional[int] = None,
                 incremental: bool = True,
                 node: str = "",
                 metrics: Optional[MetricsRegistry] = None,
                 trace_sink: Optional[TraceBuffer] = None,
                 events: Optional[FlightRecorder] = None) -> None:
        self.clock = clock
        self.storage = storage
        self.registry = registry
        self.scheduler = scheduler
        self.remote_subscribe = remote_subscribe
        self.synchronous = synchronous
        self.seed = seed
        self.incremental = incremental
        self.node = node
        self.metrics = metrics
        self.trace_sink = trace_sink
        self.events = events
        # Guards the sensor table: deploys/undeploys arrive from the
        # application thread (or HTTP admin handlers) while the health
        # model and status endpoints walk the table from scheduler
        # callbacks.  Sensor lifecycle calls (start/stop) and hooks run
        # outside the lock — they block and re-enter listener code.
        self._lock = new_lock("VirtualSensorManager._lock")
        self._sensors: Dict[str, VirtualSensor] = {}  # guarded-by: VirtualSensorManager._lock
        self._deploy_hooks: List[DeployHook] = []
        self._undeploy_hooks: List[UndeployHook] = []
        self.deploy_count = 0
        self._uptime = UptimeTracker()

    # -- hooks (the container uses these to publish to the directory) -------

    def on_deploy(self, hook: DeployHook) -> None:
        self._deploy_hooks.append(hook)

    def on_undeploy(self, hook: UndeployHook) -> None:
        self._undeploy_hooks.append(hook)

    # -- deployment ----------------------------------------------------------

    def deploy(self, descriptor: VirtualSensorDescriptor,
               start: bool = True, strict: bool = False) -> VirtualSensor:
        """Deploy a virtual sensor from its descriptor.

        Validates the descriptor, instantiates one wrapper per stream
        source, creates the output stream table, builds the runtime, and
        (by default) starts it. Raises :class:`DeploymentError` on any
        failure, leaving the container state untouched.

        With ``strict=True`` the full gsn-lint analysis (schema, graph,
        and resource passes) runs over the already-deployed set plus the
        candidate first, and any *new* error finding rejects the deploy.
        """
        with self._lock:
            if descriptor.name in self._sensors:
                raise DeploymentError(
                    f"a virtual sensor named {descriptor.name!r} is already "
                    f"deployed; undeploy it first or use reconfigure()"
                )
        validate_descriptor(descriptor, known_wrapper=self._knows_wrapper)
        if strict:
            self._strict_check(descriptor)

        wrappers = self._build_wrappers(descriptor)
        table_name = OUTPUT_TABLE_PREFIX + descriptor.name
        output_table = self.storage.create_stream(
            table_name,
            descriptor.output_structure,
            retention=descriptor.storage.history_size,
            permanent=descriptor.storage.permanent,
        )
        try:
            sensor = VirtualSensor(
                descriptor, self.clock, wrappers,
                output_table=output_table,
                synchronous=self.synchronous,
                seed=self.seed,
                incremental=self.incremental,
                node=self.node,
                registry=self.metrics,
                trace_sink=self.trace_sink,
                static_verdicts=self._static_verdicts(descriptor),
                events=self.events,
            )
        except Exception:
            self.storage.drop_stream(table_name)
            raise
        with self._lock:
            self._sensors[descriptor.name] = sensor
            self.deploy_count += 1
        if start:
            sensor.start()
        for hook in self._deploy_hooks:
            hook(sensor)
        return sensor

    def _knows_wrapper(self, name: str) -> bool:
        return name in self.registry

    def _static_verdicts(self, descriptor: VirtualSensorDescriptor) -> dict:
        """Deploy-time gsn-plan verdicts for one descriptor.

        Advisory: the verdicts pre-route proven-ineligible per-source
        queries to the legacy executor and let the runtime report any
        disagreement with an eligible verdict. Never blocks a deploy —
        any analysis failure yields an empty map (runtime classification
        then decides alone, exactly as before gsn-plan existed).
        """
        # deferred: the analysis layer imports descriptor/sqlengine
        # modules and must stay optional at runtime
        from repro.analysis.planpass import descriptor_verdicts

        return descriptor_verdicts(descriptor, registry=self.registry,
                                   incremental=self.incremental)

    def _strict_check(self, descriptor: VirtualSensorDescriptor) -> None:
        """The ``strict=True`` pre-deploy gate.

        Runs :func:`repro.analysis.analyze` (including the gsn-plan
        query-plan pass, GSN701–GSN705) over the deployed set plus the
        candidate and rejects the candidate on any error finding the
        candidate *introduces* (pre-existing findings in the running set
        never block an unrelated deploy).
        """
        from repro.analysis import analyze  # deferred: avoid import cycle

        with self._lock:
            existing = [s.descriptor for s in self._sensors.values()]
        external = self.remote_subscribe is not None
        baseline = {
            (f.rule_id, f.location, f.message)
            for f in analyze(existing, registry=self.registry,
                             external_producers=external, plan=True)
        }
        report = analyze(existing + [descriptor], registry=self.registry,
                         external_producers=external, plan=True)
        introduced = [
            f for f in report.errors
            if (f.rule_id, f.location, f.message) not in baseline
        ]
        if introduced:
            detail = "; ".join(f.render() for f in introduced)
            raise DeploymentError(
                f"strict deployment rejected {descriptor.name!r}: {detail}"
            )

    def _build_wrappers(self,
                        descriptor: VirtualSensorDescriptor) -> Dict[str, Wrapper]:
        wrappers: Dict[str, Wrapper] = {}
        for stream in descriptor.input_streams:
            for source in stream.sources:
                wrapper = self.registry.create(source.address.wrapper)
                if isinstance(wrapper, RemoteWrapper):
                    if self.remote_subscribe is None:
                        raise DeploymentError(
                            f"{descriptor.name}: source {source.alias!r} "
                            f"uses remote addressing but this VSM has no "
                            f"peer network"
                        )
                    wrapper.bind(self.remote_subscribe)
                wrapper.attach(self.clock, self.scheduler)
                wrapper.configure(source.address.predicates)
                wrappers[source.alias] = wrapper
        return wrappers

    def undeploy(self, name: str, keep_storage: bool = False) -> None:
        """Stop a virtual sensor and remove its resources.

        ``keep_storage`` preserves a permanent output stream on disk
        (the container-shutdown path: ``permanent-storage="true"``
        promises data outlives the process).
        """
        key = name.strip().lower()
        with self._lock:
            sensor = self._sensors.pop(key, None)
        if sensor is None:
            raise DeploymentError(f"no virtual sensor named {name!r}")
        sensor.stop()
        table = OUTPUT_TABLE_PREFIX + key
        if keep_storage:
            self.storage.release_stream(table)
        else:
            self.storage.drop_stream(table)
        for hook in self._undeploy_hooks:
            hook(key)

    def reconfigure(self, descriptor: VirtualSensorDescriptor,
                    strict: bool = False) -> VirtualSensor:
        """Replace a running sensor with a new descriptor atomically-ish:
        the old instance stops only after the new descriptor validates."""
        validate_descriptor(descriptor, known_wrapper=self._knows_wrapper)
        with self._lock:
            deployed = descriptor.name in self._sensors
        if deployed:
            self.undeploy(descriptor.name)
        return self.deploy(descriptor, strict=strict)

    # -- access --------------------------------------------------------------

    def get(self, name: str) -> VirtualSensor:
        with self._lock:
            sensor = self._sensors.get(name.strip().lower())
        if sensor is None:
            raise DeploymentError(f"no virtual sensor named {name!r}")
        return sensor

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        with self._lock:
            return name.strip().lower() in self._sensors

    def sensor_names(self) -> List[str]:
        with self._lock:
            return sorted(self._sensors)

    def sensors(self) -> List[VirtualSensor]:
        with self._lock:
            return [self._sensors[name] for name in sorted(self._sensors)]

    def stop_all(self, keep_storage: bool = False) -> None:
        for name in self.sensor_names():
            self.undeploy(name, keep_storage=keep_storage)

    def static_coverage(self) -> tuple:
        """``(eligible, total)`` gsn-plan verdicts over deployed sensors."""
        eligible = 0
        total = 0
        for sensor in self.sensors():
            block = sensor.incremental_status().get("static", {})
            eligible += int(block.get("eligible", 0))
            total += int(block.get("total", 0))
        return eligible, total

    def status(self) -> dict:
        eligible, total = self.static_coverage()
        with self._lock:
            deployed = sorted(self._sensors)
            snapshot = dict(self._sensors)
            deploy_count = self.deploy_count
        return status_doc(
            self.node or "vsm", "running",
            counters={"deploy_count": deploy_count,
                      "deployed_sensors": len(snapshot),
                      "static_eligible_sources": eligible,
                      "static_analyzed_sources": total},
            uptime_ms=self._uptime.uptime_ms(),
            deployed=deployed,
            deploy_count=deploy_count,
            static_coverage_percent=(round(100.0 * eligible / total, 1)
                                     if total else 0.0),
            sensors={name: sensor.status()
                     for name, sensor in snapshot.items()},
        )
