"""Virtual sensors: GSN's central abstraction.

"A virtual sensor corresponds either to a data stream received directly
from sensors or to a data stream derived from other virtual sensors. A
virtual sensor can have any number of input streams and produces one
output stream." (paper, Section 2)

- :mod:`repro.vsensor.pool` — worker pools backing ``<life-cycle pool-size>``
- :mod:`repro.vsensor.lifecycle` — per-sensor life-cycle state machine (LCM)
- :mod:`repro.vsensor.input_manager` — input stream manager (ISM)
- :mod:`repro.vsensor.virtual_sensor` — the 5-step processing pipeline
- :mod:`repro.vsensor.manager` — the virtual sensor manager (VSM)
"""

from repro.vsensor.lifecycle import LifecycleState, LifeCycleManager
from repro.vsensor.pool import WorkerPool
from repro.vsensor.virtual_sensor import VirtualSensor
from repro.vsensor.manager import VirtualSensorManager

__all__ = [
    "LifecycleState",
    "LifeCycleManager",
    "WorkerPool",
    "VirtualSensor",
    "VirtualSensorManager",
]
