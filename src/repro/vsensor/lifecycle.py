"""Per-sensor life-cycle management (the LCM of the paper's Figure 2).

The life-cycle manager "provides and manages the resources provided to a
virtual sensor and manages the interactions with a virtual sensor". Here
that means: a state machine guarding legal transitions, ownership of the
sensor's worker pool, and bookkeeping counters the web interface exposes.

Besides the paper's states, the runtime adds ``DEGRADED``: the sensor is
still deployed and still processing what it can, but its supervision
machinery (worker pool, crash witness) has reported that it lost
capacity it could not restore — operators see it in ``status()`` and in
the ``gsn_thread_crashes_total`` metric instead of discovering a
deployed-but-dead sensor by its silence. See ``docs/reliability.md``.
"""

from __future__ import annotations

import enum
import logging
from typing import Optional

from repro.descriptors.model import LifeCycleConfig
from repro.exceptions import LifecycleError
from repro.metrics.flight import FlightRecorder
from repro.status import UptimeTracker, status_doc
from repro.vsensor.pool import WorkerPool

logger = logging.getLogger("repro.vsensor.lifecycle")


class LifecycleState(enum.Enum):
    LOADED = "loaded"
    RUNNING = "running"
    DEGRADED = "degraded"
    PAUSED = "paused"
    STOPPED = "stopped"
    FAILED = "failed"


#: Legal state transitions.
_TRANSITIONS = {
    LifecycleState.LOADED: {LifecycleState.RUNNING, LifecycleState.STOPPED},
    LifecycleState.RUNNING: {LifecycleState.PAUSED, LifecycleState.STOPPED,
                             LifecycleState.FAILED,
                             LifecycleState.DEGRADED},
    LifecycleState.DEGRADED: {LifecycleState.RUNNING, LifecycleState.PAUSED,
                              LifecycleState.STOPPED,
                              LifecycleState.FAILED},
    LifecycleState.PAUSED: {LifecycleState.RUNNING, LifecycleState.STOPPED},
    LifecycleState.FAILED: {LifecycleState.STOPPED},
    LifecycleState.STOPPED: set(),
}


class LifeCycleManager:
    """Owns one virtual sensor's state and worker pool."""

    def __init__(self, sensor_name: str, config: LifeCycleConfig,
                 synchronous: bool = True,
                 events: Optional[FlightRecorder] = None) -> None:
        self.sensor_name = sensor_name
        self.config = config
        self.state = LifecycleState.LOADED
        self.failure_reason: Optional[str] = None
        self.degraded_reason: Optional[str] = None
        self.started_at: Optional[int] = None
        self.events = events
        self.pool = WorkerPool(config.pool_size, synchronous=synchronous,
                               name=sensor_name,
                               on_degraded=self._pool_degraded,
                               events=events)
        self._uptime = UptimeTracker()

    def _transition(self, target: LifecycleState) -> None:
        if target not in _TRANSITIONS[self.state]:
            raise LifecycleError(
                f"virtual sensor {self.sensor_name!r}: illegal transition "
                f"{self.state.value} -> {target.value}"
            )
        previous = self.state
        self.state = target
        if self.events is not None:
            self.events.record("transition", self.sensor_name,
                               from_state=previous.value,
                               to_state=target.value)

    def start(self, now: int) -> None:
        self._transition(LifecycleState.RUNNING)
        self.started_at = now

    def pause(self) -> None:
        self._transition(LifecycleState.PAUSED)

    def resume(self) -> None:
        self._transition(LifecycleState.RUNNING)

    def fail(self, reason: str) -> None:
        self.failure_reason = reason
        self._transition(LifecycleState.FAILED)

    def degrade(self, reason: str) -> None:
        """Mark the sensor degraded: deployed, but running at reduced
        capacity its supervision could not restore."""
        self.degraded_reason = reason
        if self.state is LifecycleState.DEGRADED:
            return
        if self.state is LifecycleState.RUNNING:
            self._transition(LifecycleState.DEGRADED)
            logger.warning("virtual sensor %r degraded: %s",
                           self.sensor_name, reason)
            if self.events is not None:
                # The dump-triggering event; recorded after the state
                # flip so the dump sees the DEGRADED transition too.
                self.events.record("degraded", self.sensor_name,
                                   reason=reason)
        else:
            logger.warning("virtual sensor %r reported degradation while "
                           "%s: %s", self.sensor_name, self.state.value,
                           reason)

    def recover(self) -> None:
        """Degraded -> running again (operator or supervisor decision)."""
        self.degraded_reason = None
        self._transition(LifecycleState.RUNNING)

    def _pool_degraded(self, reason: str) -> None:
        # Called from a crashed worker's thread, so it must never
        # raise back into the supervision envelope.
        try:
            self.degrade(reason)
        except LifecycleError:
            logger.warning("virtual sensor %r: late degradation ignored "
                           "(%s)", self.sensor_name, reason)

    def stop(self) -> None:
        self._transition(LifecycleState.STOPPED)
        self.pool.shutdown()

    def uptime_ms(self) -> int:
        return self._uptime.uptime_ms()

    @property
    def is_processing(self) -> bool:
        """Whether arrivals should trigger the pipeline right now.

        A degraded sensor keeps processing with whatever capacity its
        pool has left — degradation is a visibility state, not a stop.
        """
        return self.state in (LifecycleState.RUNNING,
                              LifecycleState.DEGRADED)

    def status(self) -> dict:
        return status_doc(
            self.sensor_name, self.state.value,
            counters={
                "tasks_completed": self.pool.tasks_completed,
                "tasks_failed": self.pool.tasks_failed,
                "workers_crashed": self.pool.workers_crashed,
                "worker_restarts": self.pool.restarts,
            },
            uptime_ms=self._uptime.uptime_ms(),
            pool_size=self.config.pool_size,
            tasks_completed=self.pool.tasks_completed,
            tasks_failed=self.pool.tasks_failed,
            tasks_shed=self.pool.tasks_shed,
            queue_depth=self.pool.queue_depth(),
            queue_capacity=self.pool.queue_capacity,
            started_at=self.started_at,
            failure_reason=self.failure_reason,
            degraded_reason=self.degraded_reason,
        )
