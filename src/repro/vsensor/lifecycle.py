"""Per-sensor life-cycle management (the LCM of the paper's Figure 2).

The life-cycle manager "provides and manages the resources provided to a
virtual sensor and manages the interactions with a virtual sensor". Here
that means: a state machine guarding legal transitions, ownership of the
sensor's worker pool, and bookkeeping counters the web interface exposes.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.descriptors.model import LifeCycleConfig
from repro.exceptions import LifecycleError
from repro.status import UptimeTracker, status_doc
from repro.vsensor.pool import WorkerPool


class LifecycleState(enum.Enum):
    LOADED = "loaded"
    RUNNING = "running"
    PAUSED = "paused"
    STOPPED = "stopped"
    FAILED = "failed"


#: Legal state transitions.
_TRANSITIONS = {
    LifecycleState.LOADED: {LifecycleState.RUNNING, LifecycleState.STOPPED},
    LifecycleState.RUNNING: {LifecycleState.PAUSED, LifecycleState.STOPPED,
                             LifecycleState.FAILED},
    LifecycleState.PAUSED: {LifecycleState.RUNNING, LifecycleState.STOPPED},
    LifecycleState.FAILED: {LifecycleState.STOPPED},
    LifecycleState.STOPPED: set(),
}


class LifeCycleManager:
    """Owns one virtual sensor's state and worker pool."""

    def __init__(self, sensor_name: str, config: LifeCycleConfig,
                 synchronous: bool = True) -> None:
        self.sensor_name = sensor_name
        self.config = config
        self.state = LifecycleState.LOADED
        self.failure_reason: Optional[str] = None
        self.started_at: Optional[int] = None
        self.pool = WorkerPool(config.pool_size, synchronous=synchronous)
        self._uptime = UptimeTracker()

    def _transition(self, target: LifecycleState) -> None:
        if target not in _TRANSITIONS[self.state]:
            raise LifecycleError(
                f"virtual sensor {self.sensor_name!r}: illegal transition "
                f"{self.state.value} -> {target.value}"
            )
        self.state = target

    def start(self, now: int) -> None:
        self._transition(LifecycleState.RUNNING)
        self.started_at = now

    def pause(self) -> None:
        self._transition(LifecycleState.PAUSED)

    def resume(self) -> None:
        self._transition(LifecycleState.RUNNING)

    def fail(self, reason: str) -> None:
        self.failure_reason = reason
        self._transition(LifecycleState.FAILED)

    def stop(self) -> None:
        self._transition(LifecycleState.STOPPED)
        self.pool.shutdown()

    def uptime_ms(self) -> int:
        return self._uptime.uptime_ms()

    @property
    def is_processing(self) -> bool:
        """Whether arrivals should trigger the pipeline right now."""
        return self.state is LifecycleState.RUNNING

    def status(self) -> dict:
        return status_doc(
            self.sensor_name, self.state.value,
            counters={
                "tasks_completed": self.pool.tasks_completed,
                "tasks_failed": self.pool.tasks_failed,
            },
            uptime_ms=self._uptime.uptime_ms(),
            pool_size=self.config.pool_size,
            tasks_completed=self.pool.tasks_completed,
            tasks_failed=self.pool.tasks_failed,
            started_at=self.started_at,
            failure_reason=self.failure_reason,
        )
