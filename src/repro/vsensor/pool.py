"""Worker pools.

``<life-cycle pool-size="10"/>`` controls "the number of threads available
for processing" (paper, Section 2). The pool runs the per-arrival pipeline
tasks. Two modes:

- *synchronous* (default): tasks run inline on the caller's thread — fully
  deterministic, the right choice under a virtual clock;
- *threaded*: ``size`` daemon workers drain a shared queue — used by the
  pool-size ablation benchmark and by wall-clock deployments.

Threaded workers are *supervised*: the loop body never lets a task
exception escape (failures land in ``errors()``), and the envelope
around the loop catches everything else — a crash is reported to the
runtime crash witness (:mod:`repro.analysis.crashwitness`), the worker
is respawned up to :data:`WorkerPool.MAX_RESTARTS` times, and past that
budget the pool declares itself degraded through the ``on_degraded``
callback so the owning life-cycle manager can mark the sensor. A worker
that merely dies must never leave a sensor deployed-but-dead (the
GSN602 failure mode).
"""

from __future__ import annotations

import logging
import queue
import threading
from typing import Callable, List, Optional

from repro.concurrency import new_lock
from repro.exceptions import LifecycleError
from repro.metrics.flight import FlightRecorder

logger = logging.getLogger("repro.vsensor.pool")

Task = Callable[[], None]

_SENTINEL = None

#: How long an idle worker sleeps in ``queue.get`` before re-checking
#: the shutdown flag: bounded waits keep workers interruptible (GSN604).
_IDLE_WAIT_S = 0.2

#: Default bound on the threaded task queue. An unbounded queue turns
#: overload into silent memory growth; a bounded one sheds the newest
#: task and counts it (``tasks_shed``), which the queue-depth gauges
#: and the health model surface as backpressure.
DEFAULT_QUEUE_CAPACITY = 1024


class WorkerPool:
    """Executes submitted tasks on up to ``size`` supervised workers."""

    #: Worker respawns granted per pool before it degrades.
    MAX_RESTARTS = 3

    def __init__(self, size: int = 1, synchronous: bool = True,
                 name: str = "",
                 on_degraded: Optional[Callable[[str], None]] = None,
                 events: Optional[FlightRecorder] = None,
                 queue_capacity: int = DEFAULT_QUEUE_CAPACITY
                 ) -> None:
        if size < 1:
            raise LifecycleError("pool size must be at least 1")
        if queue_capacity < 1:
            raise LifecycleError("queue capacity must be at least 1")
        self.size = size
        self.synchronous = synchronous
        self.name = name or "pool"
        self.queue_capacity = queue_capacity
        self.tasks_completed = 0  # guarded-by: WorkerPool._lock
        self.tasks_failed = 0  # guarded-by: WorkerPool._lock
        self.tasks_shed = 0  # guarded-by: WorkerPool._lock
        self.workers_crashed = 0  # guarded-by: WorkerPool._lock
        self.restarts = 0  # guarded-by: WorkerPool._lock
        self.degraded = False  # guarded-by: WorkerPool._lock
        self._errors: List[BaseException] = []  # guarded-by: WorkerPool._lock
        self._next_worker = 0  # guarded-by: WorkerPool._lock
        self._shed_logged = False  # guarded-by: WorkerPool._lock
        self._on_degraded = on_degraded
        self._events = events
        self._lock = new_lock("WorkerPool._lock")
        self._queue: Optional["queue.Queue[Optional[Task]]"] = None
        self._threads: List[threading.Thread] = []
        self._shutdown = False
        if not synchronous:
            self._queue = queue.Queue(maxsize=queue_capacity)
            for __ in range(size):
                self._spawn()

    def _spawn(self) -> None:
        with self._lock:
            index = self._next_worker
            self._next_worker += 1
        thread = threading.Thread(
            target=self._worker_main,
            name=f"gsn-pool-{self.name}-{index}", daemon=True,
        )
        with self._lock:
            self._threads.append(thread)
        thread.start()

    def submit(self, task: Task) -> None:
        if self._shutdown:
            raise LifecycleError("pool is shut down")
        if self.synchronous:
            self._run(task)
            return
        assert self._queue is not None
        try:
            self._queue.put_nowait(task)
        except queue.Full:
            self._shed()

    def _shed(self) -> None:
        """Drop the task that found the queue full: explicit, counted
        load shedding instead of blocking the submitting (scheduler or
        wrapper) thread behind a saturated pool."""
        with self._lock:
            self.tasks_shed += 1
            shed = self.tasks_shed
            first = not self._shed_logged
            self._shed_logged = True
        if first:
            logger.warning(
                "pool %r: task queue full (capacity %d); shedding load "
                "(further sheds counted, not logged)",
                self.name, self.queue_capacity)
        if self._events is not None:
            self._events.record("queue_shed", self.name,
                                capacity=self.queue_capacity,
                                tasks_shed=shed)

    def queue_depth(self) -> int:
        """Tasks currently waiting (0 for synchronous pools)."""
        return self._queue.qsize() if self._queue is not None else 0

    def _run(self, task: Task) -> None:
        try:
            task()
        except BaseException as exc:  # noqa: BLE001 - errors are surfaced
            with self._lock:
                self.tasks_failed += 1
                self._errors.append(exc)
        else:
            with self._lock:
                self.tasks_completed += 1

    def _worker_main(self) -> None:
        """Supervised envelope: nothing escapes a pool thread."""
        try:
            self._worker()
        except BaseException as exc:  # noqa: BLE001 - supervision boundary
            self._crashed(exc)

    def _worker(self) -> None:
        work = self._queue
        assert work is not None
        while True:
            try:
                task = work.get(timeout=_IDLE_WAIT_S)
            except queue.Empty:
                if self._shutdown:
                    return
                continue
            if task is _SENTINEL:
                work.task_done()
                return
            self._run(task)
            work.task_done()

    def _crashed(self, exc: BaseException) -> None:
        """Witness the crash, then restart the worker or degrade."""
        thread_name = threading.current_thread().name
        logger.error("worker %s of pool %r crashed: %s: %s",
                     thread_name, self.name, type(exc).__name__, exc)
        from repro.analysis import crashwitness
        witness = crashwitness.active()
        if witness is not None:
            witness.report(thread_name, exc, owner=self.name)
        if self._events is not None:
            # Triggers a black-box dump; runs before the bookkeeping so
            # the dump's trailing event is the crash itself.
            self._events.record("worker_crash", self.name,
                                thread=thread_name,
                                error=f"{type(exc).__name__}: {exc}")
        restart = degrade = False
        with self._lock:
            self.workers_crashed += 1
            self._errors.append(exc)
            if not self._shutdown:
                if self.restarts < self.MAX_RESTARTS:
                    self.restarts += 1
                    restart = True
                elif not self.degraded:
                    self.degraded = True
                    degrade = True
        # Respawn / degrade outside the lock: both reach back into
        # listener-shaped code (thread start, the LCM callback).
        if restart:
            logger.warning("pool %r: respawning worker (%d/%d restarts)",
                           self.name, self.restarts, self.MAX_RESTARTS)
            if self._events is not None:
                self._events.record("worker_restart", self.name,
                                    restarts=self.restarts,
                                    budget=self.MAX_RESTARTS)
            self._spawn()
        elif degrade:
            reason = (f"worker crash budget exhausted "
                      f"({self.MAX_RESTARTS} restarts): "
                      f"{type(exc).__name__}: {exc}")
            logger.error("pool %r degraded: %s", self.name, reason)
            if self._on_degraded is not None:
                self._on_degraded(reason)

    def drain(self) -> None:
        """Block until all submitted tasks finished (no-op when sync)."""
        if not self.synchronous and self._queue is not None:
            self._queue.join()

    def errors(self) -> List[BaseException]:
        """Exceptions raised by tasks so far (pipeline failures must not
        pass silently, but must not kill sibling sensors either)."""
        with self._lock:
            return list(self._errors)

    def clear_errors(self) -> None:
        with self._lock:
            self._errors.clear()

    def shutdown(self) -> None:
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            threads = list(self._threads)
        if not self.synchronous and self._queue is not None:
            for __ in threads:
                try:
                    self._queue.put_nowait(_SENTINEL)
                except queue.Full:
                    # Saturated at shutdown: workers still exit via the
                    # _shutdown flag after their bounded idle wait.
                    break
            for thread in threads:
                thread.join(timeout=5.0)

    def status(self) -> dict:
        depth = self.queue_depth()
        with self._lock:
            return {
                "size": self.size,
                "synchronous": self.synchronous,
                "tasks_completed": self.tasks_completed,
                "tasks_failed": self.tasks_failed,
                "tasks_shed": self.tasks_shed,
                "workers_crashed": self.workers_crashed,
                "restarts": self.restarts,
                "degraded": self.degraded,
                "queue_depth": depth,
                "queue_capacity": self.queue_capacity,
            }

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
