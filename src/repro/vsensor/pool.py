"""Worker pools.

``<life-cycle pool-size="10"/>`` controls "the number of threads available
for processing" (paper, Section 2). The pool runs the per-arrival pipeline
tasks. Two modes:

- *synchronous* (default): tasks run inline on the caller's thread — fully
  deterministic, the right choice under a virtual clock;
- *threaded*: ``size`` daemon workers drain a shared queue — used by the
  pool-size ablation benchmark and by wall-clock deployments.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, List, Optional

from repro.concurrency import new_lock
from repro.exceptions import LifecycleError

Task = Callable[[], None]

_SENTINEL = None


class WorkerPool:
    """Executes submitted tasks on up to ``size`` workers."""

    def __init__(self, size: int = 1, synchronous: bool = True) -> None:
        if size < 1:
            raise LifecycleError("pool size must be at least 1")
        self.size = size
        self.synchronous = synchronous
        self.tasks_completed = 0  # guarded-by: _lock
        self.tasks_failed = 0  # guarded-by: _lock
        self._errors: List[BaseException] = []  # guarded-by: _lock
        self._lock = new_lock("WorkerPool._lock")
        self._queue: Optional["queue.Queue[Optional[Task]]"] = None
        self._threads: List[threading.Thread] = []
        self._shutdown = False
        if not synchronous:
            self._queue = queue.Queue()
            for index in range(size):
                thread = threading.Thread(
                    target=self._worker, name=f"gsn-pool-{index}", daemon=True
                )
                thread.start()
                self._threads.append(thread)

    def submit(self, task: Task) -> None:
        if self._shutdown:
            raise LifecycleError("pool is shut down")
        if self.synchronous:
            self._run(task)
        else:
            assert self._queue is not None
            self._queue.put(task)

    def _run(self, task: Task) -> None:
        try:
            task()
        except BaseException as exc:  # noqa: BLE001 - errors are surfaced
            with self._lock:
                self.tasks_failed += 1
                self._errors.append(exc)
        else:
            with self._lock:
                self.tasks_completed += 1

    def _worker(self) -> None:
        assert self._queue is not None
        while True:
            task = self._queue.get()
            if task is _SENTINEL:
                self._queue.task_done()
                return
            self._run(task)
            self._queue.task_done()

    def drain(self) -> None:
        """Block until all submitted tasks finished (no-op when sync)."""
        if not self.synchronous and self._queue is not None:
            self._queue.join()

    def errors(self) -> List[BaseException]:
        """Exceptions raised by tasks so far (pipeline failures must not
        pass silently, but must not kill sibling sensors either)."""
        with self._lock:
            return list(self._errors)

    def clear_errors(self) -> None:
        with self._lock:
            self._errors.clear()

    def shutdown(self) -> None:
        if self._shutdown:
            return
        self._shutdown = True
        if not self.synchronous and self._queue is not None:
            for __ in self._threads:
                self._queue.put(_SENTINEL)
            for thread in self._threads:
                thread.join(timeout=5.0)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
