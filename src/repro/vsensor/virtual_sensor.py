"""The virtual sensor runtime: GSN's 5-step processing pipeline.

Paper, Section 3 — on each input-stream arrival:

1. stamp the element with the local clock if it carries no timestamp
   (done in the ISM's :class:`~repro.vsensor.input_manager.SourceRuntime`);
2. select each source's window contents and unnest them into flat
   relations;
3. evaluate the per-source queries into temporary relations;
4. evaluate the output query over the temporary relations;
5. persist the result if required and notify all consumers.
"""

from __future__ import annotations

import logging
from typing import (
    Any, Callable, Dict, List, Optional, Sequence, Tuple, Union,
)

from repro.concurrency import new_lock
from repro.descriptors.model import VirtualSensorDescriptor
from repro.exceptions import DeploymentError, SchemaError
from repro.gsntime.clock import Clock
from repro.metrics.collectors import FastPathCounters, LatencyRecorder
from repro.metrics.flight import FlightRecorder
from repro.metrics.registry import MetricsRegistry
from repro.metrics.tracing import PipelineTracer, Span, TraceBuffer
from repro.sqlengine.executor import Catalog, execute_plan
from repro.sqlengine.incremental import (
    Classified, GroupedAggregateQuery, GroupedAggregateState, IdentityQuery,
    IncrementalAggregateState, IncrementalJoinState, classify, classify_join,
)
from repro.sqlengine.parser import parse_select
from repro.sqlengine.physical import compile_for_catalog, run_plan
from repro.sqlengine.planner import SelectPlan, plan_select
from repro.sqlengine.relation import Relation
from repro.sqlengine.rewriter import WRAPPER_TABLE
from repro.storage.base import StreamTable
from repro.streams.element import StreamElement
from repro.streams.schema import StreamSchema
from repro.vsensor.input_manager import (
    InputStreamManager, SourceRuntime, StreamRuntime,
)
from repro.vsensor.lifecycle import LifeCycleManager
from repro.wrappers.base import Wrapper

#: Key for everything kept per stream source: aliases are only unique
#: within one input stream, so (stream name, alias) is the real identity.
SourceKey = Tuple[str, str]

OutputListener = Callable[[StreamElement], None]

logger = logging.getLogger("repro.vsensor")


class VirtualSensor:
    """One deployed virtual sensor.

    Built by the :class:`~repro.vsensor.manager.VirtualSensorManager`;
    applications normally interact through the container, but the object
    itself exposes the output stream (:meth:`add_listener`), status, and
    manual source control (disconnect/reconnect) for failure injection.
    """

    def __init__(self, descriptor: VirtualSensorDescriptor, clock: Clock,
                 wrappers: Dict[str, Wrapper],
                 output_table: Optional[StreamTable] = None,
                 synchronous: bool = True,
                 seed: Optional[int] = None,
                 incremental: bool = True,
                 node: str = "",
                 registry: Optional[MetricsRegistry] = None,
                 trace_sink: Optional[TraceBuffer] = None,
                 static_verdicts: Optional[Dict[SourceKey, Any]] = None,
                 events: Optional[FlightRecorder] = None
                 ) -> None:
        self.descriptor = descriptor
        self.name = descriptor.name
        self.clock = clock
        self.wrappers = dict(wrappers)
        self.output_table = output_table
        self.events = events
        # Disabled (a cheap no-op) unless the container hands us a
        # registry or a trace sink — bare sensors built in tests keep
        # the exact pre-observability pipeline.
        self.tracer = PipelineTracer(descriptor.name, node,
                                     sampling=descriptor.trace_sampling,
                                     sink=trace_sink, registry=registry,
                                     seed=seed)
        self.lifecycle = LifeCycleManager(descriptor.name,
                                          descriptor.lifecycle,
                                          synchronous=synchronous,
                                          events=events)
        # Escape hatch: the container option AND the descriptor's
        # <storage incremental="..."> flag must both allow the
        # incremental pipeline; either one forces the legacy rebuild.
        self.incremental = incremental and descriptor.storage.incremental
        # The live window view may only be handed to the executor when
        # nothing can mutate it mid-query: synchronous pipelines.
        self._zero_copy = synchronous and self.incremental
        self.ism = InputStreamManager(clock, self._on_trigger, seed=seed,
                                      incremental=self.incremental,
                                      tracer=self.tracer)
        self.latency = LatencyRecorder(keep_samples=True)
        self.fast_paths = FastPathCounters()
        self.elements_produced = 0  # guarded-by: VirtualSensor._emit_lock
        self._consecutive_errors = 0
        self._listeners: List[OutputListener] = []  # guarded-by: VirtualSensor._emit_lock
        # Serializes step 5 when the pipeline runs on a threaded pool, so
        # persistence order and counters stay consistent. Persisting to a
        # permanent table takes the storage lock inside the emit lock:
        # lock-order: VirtualSensor._emit_lock < SQLiteStreamTable._lock
        self._emit_lock = new_lock("VirtualSensor._emit_lock")
        #: Hooks called after each pipeline run with
        #: ``(trigger_virtual_ms, service_wall_ms)`` — the experiment
        #: harness uses these to feed its node queueing model.
        self.processing_hooks: List[Callable[[int, float], None]] = []

        # Deploy-time fast-path verdicts from gsn-plan
        # (repro.analysis.planpass.PlanVerdict, duck-typed so the runtime
        # never imports the analysis layer). A proven-ineligible verdict
        # routes the source straight to the legacy executor; an eligible
        # verdict that fails to hold at runtime is a reported defect.
        self._static_verdicts: Dict[SourceKey, Any] = dict(
            static_verdicts or {}
        )
        # Plans are prepared once per deployment and reused per trigger —
        # this is the plan cache half of GSN's "adaptive query execution".
        self._source_plans: Dict[SourceKey, SelectPlan] = {}
        self._stream_plans: Dict[str, SelectPlan] = {}
        # Fast-path classification of per-source plans, plus the running
        # aggregate accumulators attached to window materializations.
        self._fast_paths: Dict[SourceKey, Classified] = {}
        self._agg_states: Dict[
            SourceKey,
            Union[IncrementalAggregateState, GroupedAggregateState],
        ] = {}
        # Delta-maintained two-source equi-joins, one per stream whose
        # output query qualifies (synchronous containers only).
        self._join_states: Dict[str, IncrementalJoinState] = {}
        # Step-3 result cache: (window version, temporary relation).
        self._temp_cache: Dict[SourceKey, Tuple[int, Relation]] = {}
        for stream in descriptor.input_streams:
            for source in stream.sources:
                self._source_plans[(stream.name, source.alias)] = plan_select(
                    parse_select(source.query)
                )
            self._stream_plans[stream.name] = plan_select(
                parse_select(stream.query)
            )
            missing = [s.alias for s in stream.sources
                       if s.alias not in self.wrappers]
            if missing:
                raise DeploymentError(
                    f"{descriptor.name}: no wrapper instance for "
                    f"source(s) {missing}"
                )
            runtime = self.ism.add_stream(
                stream,
                {s.alias: self.wrappers[s.alias] for s in stream.sources},
            )
            if self.incremental:
                for source_runtime in runtime.sources:
                    self._attach_fast_path(stream.name, source_runtime)
                self._attach_join(stream.name, runtime)
        if self.incremental:
            self._compile_source_plans()

    # -- output stream -------------------------------------------------------

    @property
    def output_schema(self) -> StreamSchema:
        return self.descriptor.output_structure

    def add_listener(self, listener: OutputListener) -> None:
        with self._emit_lock:
            self._listeners.append(listener)

    def remove_listener(self, listener: OutputListener) -> None:
        with self._emit_lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def latest_output(self) -> Optional[StreamElement]:
        if self.output_table is None:
            return None
        return self.output_table.latest()

    # -- life cycle ----------------------------------------------------------

    def start(self) -> None:
        self.lifecycle.start(self.clock.now())
        for wrapper in self._unique_wrappers():
            wrapper.start()

    def stop(self) -> None:
        for wrapper in self._unique_wrappers():
            wrapper.stop()
        self.ism.pause()
        self.lifecycle.stop()

    def pause(self) -> None:
        self.lifecycle.pause()
        self.ism.pause()

    def resume(self) -> None:
        self.lifecycle.resume()
        self.ism.resume()

    def ingest_batch(self, stream_name: str, alias: str,
                     values: Sequence[Any]) -> int:
        """Deliver a batch of tuples to one source, evaluating at most
        once.

        Accepts ready-made :class:`StreamElement`\\ s or plain mappings
        (a ``"timed"`` key, when present, becomes the element
        timestamp).  Used by the async ingestion gateway to amortize one
        window-update + query evaluation over a whole batch; see
        :meth:`InputStreamManager.ingest_batch` for the equivalence
        argument.  Returns the number of admitted elements.
        """
        elements: List[StreamElement] = []
        for value in values:
            if isinstance(value, StreamElement):
                elements.append(value)
            else:
                payload = dict(value)
                timed = payload.pop("timed", None)
                elements.append(StreamElement(payload, timed=timed))
        return self.ism.ingest_batch(stream_name, alias, elements)

    def _unique_wrappers(self) -> List[Wrapper]:
        seen: Dict[int, Wrapper] = {}
        for wrapper in self.wrappers.values():
            seen.setdefault(id(wrapper), wrapper)
        return list(seen.values())

    # -- fast-path wiring ------------------------------------------------------

    def _attach_fast_path(self, stream_name: str,
                          source: SourceRuntime) -> None:
        """Classify one per-source plan and wire up its fast path.

        Anything that doesn't qualify simply stays on the generic
        executor — classification is advisory, never load-bearing. When
        gsn-plan supplied a static verdict, a *proven*-ineligible one
        skips classification outright (legacy path chosen up front),
        while an eligible one that fails to attach here is a
        disagreement — the static analysis promised a fast path that the
        runtime could not deliver — and is counted as a defect.
        """
        key = (stream_name, source.spec.alias)
        verdict = self._static_verdicts.get(key)
        if verdict is not None and not verdict.eligible \
                and getattr(verdict, "proven", True):
            return
        attached = self._attach_classified(key, stream_name, source)
        if not attached and verdict is not None and verdict.eligible:
            self.fast_paths.record_static_disagreement()
            logger.warning(
                "%s: gsn-plan proved %s/%s fast-path eligible but the "
                "runtime could not attach it; please report this "
                "analyzer defect", self.name, stream_name,
                source.spec.alias,
            )

    def _attach_classified(self, key: SourceKey, stream_name: str,
                           source: SourceRuntime) -> bool:
        classified = classify(self._source_plans[key])
        if classified is None:
            return False
        mat = source.materializer
        if mat is None:
            return False
        if isinstance(classified, IdentityQuery):
            self._fast_paths[key] = classified
            return True
        # Running accumulators ride the window observer protocol, which
        # both count and time windows publish; the referenced columns
        # must all exist in the materialized relation, otherwise the
        # legacy path must keep raising its unknown-column error at
        # query time.
        if any(name not in mat._index for name in classified.referenced):
            return False
        def poisoned(exc: BaseException, _key: SourceKey = key) -> None:
            # Counted per sensor (fastpath_poisoned_total); the query
            # text itself is logged once by the accumulator.
            self.fast_paths.record_poisoned()
            if self.events is not None:
                self.events.record("poisoned", self.name,
                                   stream=_key[0], alias=_key[1],
                                   error=f"{type(exc).__name__}: {exc}")
            verdict = self._static_verdicts.get(_key)
            if verdict is not None and verdict.eligible:
                # gsn-plan proved this query could not poison; it did.
                self.fast_paths.record_static_disagreement()
                logger.warning(
                    "%s: statically-eligible query %s/%s poisoned at "
                    "runtime (%s); please report this analyzer defect",
                    self.name, *_key, exc,
                )

        label = (f"{self.name}/{stream_name}/{source.spec.alias}: "
                 f"{source.spec.query}")
        state: Union[IncrementalAggregateState, GroupedAggregateState]
        if isinstance(classified, GroupedAggregateQuery):
            state = GroupedAggregateState(classified, mat, label=label,
                                          on_poison=poisoned)
        else:
            state = IncrementalAggregateState(classified, mat, label=label,
                                              on_poison=poisoned)
        if not state.healthy:
            return False
        mat.add_listener(state)
        self._fast_paths[key] = classified
        self._agg_states[key] = state
        return True

    def _join_poisoned(self, stream_name: str, exc: BaseException) -> None:
        self.fast_paths.record_poisoned()
        if self.events is not None:
            self.events.record("poisoned", self.name, stream=stream_name,
                               alias="<join>",
                               error=f"{type(exc).__name__}: {exc}")

    def _attach_join(self, stream_name: str, runtime: StreamRuntime) -> None:
        """Wire the delta-maintained join for a qualifying stream query.

        Three gates, all advisory (failing any leaves the stream query
        on per-trigger execution): the output query must classify as a
        two-source inner equi-join over two distinct materialized
        sources; both sides' per-source queries must ride the identity
        fast path, so the join's inputs are exactly the temporaries the
        executor would see; and the container must be synchronous — the
        join state listens on two windows whose deltas arrive under two
        different source locks, so it is only safe when all windows
        mutate on the caller's thread (zero-copy mode).
        """
        if not self._zero_copy:
            return
        spec = classify_join(self._stream_plans[stream_name])
        if spec is None:
            return
        by_alias = {source.spec.alias.lower(): source
                    for source in runtime.sources}
        left = by_alias.get(spec.left_table.lower())
        right = by_alias.get(spec.right_table.lower())
        if left is None or right is None or left is right:
            return
        if left.materializer is None or right.materializer is None:
            return
        for side in (left, right):
            key = (stream_name, side.spec.alias)
            if not isinstance(self._fast_paths.get(key), IdentityQuery):
                return
        try:
            state = IncrementalJoinState(
                spec, left.materializer, right.materializer,
                label=f"{self.name}/{stream_name}: {runtime.spec.query}",
                on_poison=lambda exc: self._join_poisoned(stream_name, exc),
            )
        except Exception:
            # Unresolvable columns etc.: the executor raises the real
            # error at query time, exactly as without the fast path.
            logger.debug(
                "%s: join fast path for stream %s did not attach; the "
                "output query stays on per-trigger execution",
                self.name, stream_name, exc_info=True,
            )
            return
        if not state.healthy:
            state.detach()
            return
        self._join_states[stream_name] = state

    def _compile_source_plans(self) -> None:
        """Deploy-time compilation of the per-source plans.

        Each plan is lowered against its window's materialized schema
        into a pull-based physical-operator pipeline, so the legacy rung
        of the ladder re-executes compiled closures per trigger with
        zero re-planning. Shapes the compiler rejects stay on the
        interpreter (the failure is cached on the plan)."""
        for stream in self.descriptor.input_streams:
            runtime = self.ism.stream(stream.name)
            for source in runtime.sources:
                mat = source.materializer
                if mat is None:
                    continue
                plan = self._source_plans[(stream.name, source.spec.alias)]
                compile_for_catalog(plan, Catalog({WRAPPER_TABLE: mat}))

    # -- the pipeline ----------------------------------------------------------

    def _on_trigger(self, stream_name: str, element: StreamElement) -> None:
        if not self.lifecycle.is_processing:
            return
        self.lifecycle.pool.submit(
            lambda: self._process(stream_name, element)
        )

    def _process(self, stream_name: str, trigger: StreamElement) -> None:
        self.latency.start()
        now = self.clock.now()
        root = self.tracer.begin(trigger.trace_id, now, stream=stream_name)
        if root is not None:
            self._adopt_ingest_span(root)
        try:
            stream = self.ism.stream(stream_name)

            # Steps 2+3: window contents -> flat relations -> temporary
            # relations, one per stream source.
            temporaries = Catalog()
            all_views = True
            for source in stream.sources:
                temporary, from_view = self._source_temporary(
                    stream_name, source, now, parent=root)
                temporaries.register(source.spec.alias, temporary)
                all_views = all_views and from_view

            # Step 4: the output query over the temporary relations.
            span = root.child("output_query") if root is not None else None
            result = self._output_result(stream_name, temporaries,
                                         all_views, span)
            if span is not None:
                span.attributes["rows"] = len(result)
                span.finish()

            # Step 5: persist and notify, one output element per row.
            span = root.child("persist_notify") if root is not None else None
            trace_id = root.trace_id if root is not None else None
            for row in result.to_dicts():
                self._emit(row, default_timed=trigger.timed or now,
                           trace_id=trace_id)
            if span is not None:
                span.finish()
        except Exception as exc:
            if root is not None:
                root.attributes["error"] = repr(exc)
            self._on_pipeline_error(exc)
            raise
        else:
            self._consecutive_errors = 0
        finally:
            self.tracer.finish(root)
            service_ms = self.latency.stop()
            for hook in self.processing_hooks:
                hook(trigger.timed if trigger.timed is not None else now,
                     service_ms)

    def _adopt_ingest_span(self, root: Span) -> None:
        """Attach the step-1 (ingest) span of the triggering element.

        Exact in synchronous containers; in threaded mode a concurrent
        admission may have replaced the stashed span, so adoption is
        best-effort and keyed on the trace id matching.
        """
        source = self.ism.last_source
        if source is None:
            return
        span = source.last_ingest_span
        if span is not None and span.trace_id == root.trace_id:
            root.children.append(span)
            source.last_ingest_span = None

    def _source_temporary(self, stream_name: str, source: SourceRuntime,
                          now: int, parent: Optional[Span] = None
                          ) -> Tuple[Relation, bool]:
        """Step 3 for one source: its per-source query's result relation.

        The incremental ladder, cheapest rung first:

        1. temporary cache — the source's window hasn't moved since the
           last trigger, reuse the previous result outright;
        2. identity fast path — the query is ``select * from wrapper``,
           hand back the delta-maintained window relation;
        3. incremental aggregates — answer from running accumulators
           (flat or grouped);
        4. compiled/legacy — run the deploy-time compiled pipeline (or
           the interpreter, for shapes the compiler rejects) over a
           (possibly still zero-copy) window relation.

        Returns ``(temporary, from_view)`` — the second element reports
        whether step 2 was served by the live materialized view, which
        the join fast path uses as its per-trigger validity gate.

        With a ``parent`` span the window selection (step 2) and the
        query evaluation (step 3) each get a child span; the chosen
        ladder rung lands in the span's ``path`` attribute.
        """
        key = (stream_name, source.spec.alias)
        alias = source.spec.alias
        plan = self._source_plans[key]
        if not self.incremental:
            self.fast_paths.record_legacy()
            span = parent.child("window_select", source=alias) \
                if parent is not None else None
            relation = source.window_relation(now)
            if span is not None:
                span.finish()
            span = parent.child("source_query", source=alias,
                                path="legacy") if parent is not None else None
            temporary = execute_plan(plan, Catalog({WRAPPER_TABLE: relation}))
            if span is not None:
                span.finish()
            return temporary, False

        span = parent.child("window_select", source=alias) \
            if parent is not None else None
        relation, version, from_view, cacheable = source.snapshot_state(
            now, zero_copy=self._zero_copy
        )
        if span is not None:
            span.attributes["from_view"] = from_view
            span.finish()
        self.fast_paths.record_view(from_view)

        span = parent.child("source_query", source=alias) \
            if parent is not None else None
        cached = self._temp_cache.get(key)
        if cacheable and cached is not None and cached[0] == version:
            self.fast_paths.record_cache(True)
            if span is not None:
                span.attributes["path"] = "cache"
                span.finish()
            return cached[1], from_view
        self.fast_paths.record_cache(False)

        path = "legacy"
        temporary: Optional[Relation] = None
        fast = self._fast_paths.get(key)
        if from_view and fast is not None:
            if isinstance(fast, IdentityQuery):
                self.fast_paths.record_identity()
                temporary = relation
                path = "identity"
            else:
                temporary = self._aggregate_snapshot(key, source, fast)
                if temporary is not None:
                    path = "aggregate"
        if temporary is None:
            self.fast_paths.record_legacy()
            window_catalog = Catalog({WRAPPER_TABLE: relation})
            temporary, compiled = run_plan(plan, window_catalog)
            self.fast_paths.record_compiled(compiled)
            if compiled:
                path = "compiled"
        if cacheable:
            self._temp_cache[key] = (version, temporary)
        if span is not None:
            span.attributes["path"] = path
            span.finish()
        return temporary, from_view

    def _output_result(self, stream_name: str, temporaries: Catalog,
                       all_views: bool,
                       span: Optional[Span]) -> Relation:
        """Step 4, cheapest route first.

        A healthy delta-maintained join answers from its hash indexes —
        but only when every source served its live window view this
        trigger (``all_views``), because the join state mirrors the raw
        windows and a rebuilt/unfaithful snapshot could diverge from
        them. Otherwise the output query runs through the compiled
        pipeline, or the tree-walking interpreter for shapes the
        compiler rejects (and always the interpreter in legacy mode).
        """
        plan = self._stream_plans[stream_name]
        state = self._join_states.get(stream_name)
        if state is not None:
            result = self._join_snapshot(stream_name, state, all_views)
            if result is not None:
                if span is not None:
                    span.attributes["path"] = "join"
                return result
        if not self.incremental:
            if span is not None:
                span.attributes["path"] = "legacy"
            return execute_plan(plan, temporaries)
        result, compiled = run_plan(plan, temporaries)
        self.fast_paths.record_compiled(compiled)
        if span is not None:
            span.attributes["path"] = "compiled" if compiled \
                else "interpreted"
        return result

    def _join_snapshot(self, stream_name: str, state: IncrementalJoinState,
                       all_views: bool) -> Optional[Relation]:
        """The join state's current answer, or ``None`` to fall back."""
        if not all_views or not state.healthy:
            self.fast_paths.record_join_fallback()
            return None
        try:
            # Synchronous containers only: all windows mutate on this
            # thread, so the state cannot change under the snapshot.
            result = state.snapshot()
        except Exception as exc:
            state._poison(exc)
            self.fast_paths.record_join_fallback()
            logger.warning(
                "%s: join state for stream %s poisoned itself; falling "
                "back to per-trigger execution", self.name, stream_name,
                exc_info=True,
            )
            return None
        self.fast_paths.record_join()
        return result

    def _aggregate_snapshot(self, key: SourceKey, source: SourceRuntime,
                            spec: Classified) -> Optional[Relation]:
        """The accumulator's current answer, or ``None`` to fall back.

        A poisoned (or poisoning) accumulator routes the query through
        the legacy executor so errors surface at query time exactly as
        the non-incremental pipeline would raise them.
        """
        state = self._agg_states.get(key)
        if state is None:
            return None
        if not state.healthy:
            self.fast_paths.record_aggregate_fallback()
            return None
        try:
            # Under the source lock: accumulators are updated inside the
            # window's notification path, which holds the same lock.
            with source._lock:
                snapshot = state.snapshot()
        except Exception as exc:
            state._poison(exc)
            self.fast_paths.record_aggregate_fallback()
            logger.warning(
                "%s: aggregate accumulator for %s/%s poisoned itself; "
                "falling back to the legacy executor", self.name, *key,
                exc_info=True,
            )
            return None
        self.fast_paths.record_aggregate()
        return snapshot

    def _on_pipeline_error(self, exc: Exception) -> None:
        """Apply the descriptor's error-handling policy: after
        ``max-errors`` consecutive failures the sensor fails fast instead
        of burning cycles on a broken source."""
        self._consecutive_errors += 1
        logger.error("%s: pipeline error (%d consecutive): %s",
                     self.name, self._consecutive_errors, exc)
        limit = self.descriptor.lifecycle.max_errors
        if limit and self._consecutive_errors >= limit \
                and self.lifecycle.is_processing:
            self.ism.pause()
            self.lifecycle.fail(
                f"{self._consecutive_errors} consecutive pipeline "
                f"failures; last: {exc}"
            )

    def _emit(self, row: Dict[str, Any], default_timed: int,
              trace_id: Optional[str] = None) -> None:
        values = self._to_output_values(row)
        timed = row.get("timed")
        if not isinstance(timed, int) or isinstance(timed, bool):
            timed = default_timed
        element = StreamElement(values, timed=timed, producer=self.name,
                                trace_id=trace_id)
        with self._emit_lock:
            if self.output_table is not None:
                self.output_table.append(element)
            self.elements_produced += 1
            listeners = list(self._listeners)
        for listener in listeners:
            listener(element)

    def _to_output_values(self, row: Dict[str, Any]) -> Dict[str, Any]:
        """Map a result row onto the declared output structure by name.

        Extra result columns are dropped; declared fields missing from the
        row become ``None``; numeric values are rounded when the declared
        field is integral (``avg()`` over integers yields floats).
        """
        values: Dict[str, Any] = {}
        for field in self.output_schema:
            value = row.get(field.name)
            if value is not None and isinstance(value, float) \
                    and field.type.python_type is int:
                value = int(round(value))
            try:
                values[field.name] = field.type.coerce(value)
            except SchemaError as exc:
                raise SchemaError(
                    f"{self.name}: output field {field.name!r}: {exc}"
                ) from exc
        return values

    # -- introspection -------------------------------------------------------

    def status(self) -> dict:
        return {
            "name": self.name,
            "state": self.lifecycle.state.value,
            "counters": {
                "elements_produced": self.elements_produced,
                "tasks_completed": self.lifecycle.pool.tasks_completed,
                "tasks_failed": self.lifecycle.pool.tasks_failed,
            },
            "uptime_ms": self.lifecycle.uptime_ms(),
            "description": self.descriptor.description,
            "lifecycle": self.lifecycle.status(),
            "output_schema": {
                field.name: field.type.value for field in self.output_schema
            },
            "elements_produced": self.elements_produced,
            "processing": self.latency.summary(),
            "input_streams": self.ism.status(),
            "permanent_storage": self.descriptor.storage.permanent,
            "incremental": self.incremental_status(),
            "trace_sampling": self.tracer.sampling,
        }

    def incremental_status(self) -> dict:
        """Fast-path wiring and hit counters (dashboard/status block)."""
        kinds = {}
        for (stream_name, alias), classified in self._fast_paths.items():
            if isinstance(classified, IdentityQuery):
                kind = "identity"
            else:
                state = self._agg_states.get((stream_name, alias))
                base = ("group-aggregate"
                        if isinstance(classified, GroupedAggregateQuery)
                        else "aggregate")
                kind = base if state is None or state.healthy \
                    else f"{base} (poisoned)"
            kinds[f"{stream_name}/{alias}"] = kind
        joins = {
            stream: "join" if state.healthy else "join (poisoned)"
            for stream, state in self._join_states.items()
        }
        return {
            "enabled": self.incremental,
            "fast_paths": kinds,
            "joins": joins,
            "counters": self.fast_paths.snapshot(),
            "static": self._static_status(),
        }

    def _static_status(self) -> dict:
        """Deploy-time gsn-plan verdicts and fast-path coverage."""
        verdicts = {}
        eligible = 0
        for (stream_name, alias), verdict in sorted(
                self._static_verdicts.items()):
            verdicts[f"{stream_name}/{alias}"] = {
                "eligible": bool(verdict.eligible),
                "reason": getattr(verdict, "reason", None),
            }
            if verdict.eligible:
                eligible += 1
        total = len(self._static_verdicts)
        return {
            "verdicts": verdicts,
            "eligible": eligible,
            "total": total,
            "coverage_percent": round(100.0 * eligible / total, 1)
            if total else 0.0,
        }

    def __repr__(self) -> str:
        return (f"<VirtualSensor {self.name!r} "
                f"state={self.lifecycle.state.value} "
                f"produced={self.elements_produced}>")
