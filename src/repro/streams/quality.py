"""Stream quality monitoring.

The Input Stream Manager "ensures stream quality (disconnections,
unexpected delays, missing values, etc.)" — paper, Section 4. The monitor
observes every element entering a stream source and keeps online statistics
that the web interface exposes and that tests/benchmarks assert against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.streams.element import StreamElement


@dataclass
class QualityReport:
    """Snapshot of a source's health."""

    elements_seen: int = 0
    missing_value_count: int = 0
    late_count: int = 0
    out_of_order_count: int = 0
    disconnect_count: int = 0
    max_delay_ms: int = 0
    mean_interarrival_ms: float = 0.0
    missing_by_field: Dict[str, int] = field(default_factory=dict)

    @property
    def missing_value_ratio(self) -> float:
        if self.elements_seen == 0:
            return 0.0
        return self.missing_value_count / self.elements_seen

    def as_dict(self) -> Dict[str, object]:
        return {
            "elements_seen": self.elements_seen,
            "missing_value_count": self.missing_value_count,
            "missing_value_ratio": round(self.missing_value_ratio, 4),
            "late_count": self.late_count,
            "out_of_order_count": self.out_of_order_count,
            "disconnect_count": self.disconnect_count,
            "max_delay_ms": self.max_delay_ms,
            "mean_interarrival_ms": round(self.mean_interarrival_ms, 3),
            "missing_by_field": dict(self.missing_by_field),
        }


class StreamQualityMonitor:
    """Online quality statistics for one stream source.

    Parameters
    ----------
    late_threshold_ms:
        An element is *late* when its arrival time exceeds its own
        timestamp by more than this threshold (network/processing delays
        are "inherent properties of the observation process" the paper
        insists on exposing rather than hiding).
    """

    def __init__(self, late_threshold_ms: int = 1000) -> None:
        if late_threshold_ms < 0:
            raise ValueError("late threshold cannot be negative")
        self.late_threshold_ms = late_threshold_ms
        self._report = QualityReport()
        self._last_timed: Optional[int] = None
        self._last_arrival: Optional[int] = None
        self._interarrival_sum = 0
        self._interarrival_count = 0

    def observe(self, element: StreamElement) -> None:
        """Record one element (after implicit timestamping)."""
        report = self._report
        report.elements_seen += 1

        for name, value in element.values.items():
            if value is None:
                report.missing_value_count += 1
                report.missing_by_field[name] = (
                    report.missing_by_field.get(name, 0) + 1
                )

        timed = element.timed
        arrival = element.arrival_time
        if timed is not None and arrival is not None:
            delay = arrival - timed
            if delay > report.max_delay_ms:
                report.max_delay_ms = delay
            if delay > self.late_threshold_ms:
                report.late_count += 1

        if timed is not None:
            if self._last_timed is not None and timed < self._last_timed:
                report.out_of_order_count += 1
            self._last_timed = max(timed, self._last_timed or timed)

        if arrival is not None:
            if self._last_arrival is not None:
                self._interarrival_sum += arrival - self._last_arrival
                self._interarrival_count += 1
                report.mean_interarrival_ms = (
                    self._interarrival_sum / self._interarrival_count
                )
            self._last_arrival = arrival

    def record_disconnect(self) -> None:
        self._report.disconnect_count += 1

    @property
    def report(self) -> QualityReport:
        return self._report

    def healthy(self, max_missing_ratio: float = 0.5,
                max_late_ratio: float = 0.5) -> bool:
        """A coarse health verdict used by the monitoring interface."""
        r = self._report
        if r.elements_seen == 0:
            return True
        late_ratio = r.late_count / r.elements_seen
        return (r.missing_value_ratio <= max_missing_ratio
                and late_ratio <= max_late_ratio)

    def __repr__(self) -> str:
        return f"StreamQualityMonitor({self._report.as_dict()})"
