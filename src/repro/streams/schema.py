"""Stream schemas.

The ``<output-structure>`` element of a virtual-sensor descriptor declares
named, typed fields; this module is the runtime representation. Field names
are case-insensitive (normalized to lower case) like column names in the
original GSN's SQL layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.datatypes import DataType
from repro.exceptions import SchemaError

#: Reserved field automatically managed by the container (Section 3:
#: "implicit management of a timestamp attribute").
TIMED_FIELD = "timed"


@dataclass(frozen=True)
class Field:
    """A single named, typed field of a stream schema."""

    name: str
    type: DataType
    description: str = ""

    def __post_init__(self) -> None:
        normalized = self.name.strip().lower()
        if not normalized:
            raise SchemaError("field names cannot be empty")
        if not normalized[0].isalpha() and normalized[0] != "_":
            raise SchemaError(f"invalid field name: {self.name!r}")
        if not all(ch.isalnum() or ch == "_" for ch in normalized):
            raise SchemaError(f"invalid field name: {self.name!r}")
        object.__setattr__(self, "name", normalized)


class StreamSchema:
    """An ordered collection of :class:`Field` objects.

    The implicit ``timed`` attribute is *not* part of the schema; it lives
    on every :class:`~repro.streams.element.StreamElement` directly.
    """

    def __init__(self, fields: Iterable[Field]) -> None:
        self._fields: Tuple[Field, ...] = tuple(fields)
        if not self._fields:
            raise SchemaError("a schema needs at least one field")
        self._by_name: Dict[str, Field] = {}
        for field in self._fields:
            if field.name in self._by_name:
                raise SchemaError(f"duplicate field name: {field.name!r}")
            if field.name == TIMED_FIELD:
                raise SchemaError(
                    f"{TIMED_FIELD!r} is reserved for the implicit timestamp"
                )
            self._by_name[field.name] = field

    @classmethod
    def build(cls, **field_types: DataType) -> "StreamSchema":
        """Shorthand: ``StreamSchema.build(temperature=DataType.INTEGER)``."""
        return cls(Field(name, dtype) for name, dtype in field_types.items())

    @property
    def fields(self) -> Tuple[Field, ...]:
        return self._fields

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(field.name for field in self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._by_name

    def __getitem__(self, name: str) -> Field:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise SchemaError(f"no field named {name!r}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamSchema):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.type.value}" for f in self._fields)
        return f"StreamSchema({inner})"

    def validate(self, values: Mapping[str, Any]) -> Dict[str, Any]:
        """Check ``values`` against this schema and return a normalized dict.

        Unknown keys raise; missing keys become ``None`` (sensors may omit
        readings — the quality manager deals with missing values).
        """
        normalized: Dict[str, Any] = {}
        for key, value in values.items():
            lowered = key.lower()
            if lowered == TIMED_FIELD:
                continue
            if lowered not in self._by_name:
                raise SchemaError(f"value for unknown field {key!r}")
            field = self._by_name[lowered]
            if not field.type.accepts(value):
                raise SchemaError(
                    f"field {field.name!r} expects {field.type.value}, "
                    f"got {type(value).__name__} ({value!r})"
                )
            normalized[lowered] = value
        for field in self._fields:
            normalized.setdefault(field.name, None)
        return normalized

    def coerce(self, values: Mapping[str, Any]) -> Dict[str, Any]:
        """Like :meth:`validate` but converts convertible values in place of
        rejecting them (used at wrapper boundaries where devices report
        strings)."""
        coerced: Dict[str, Any] = {}
        for key, value in values.items():
            lowered = key.lower()
            if lowered == TIMED_FIELD:
                continue
            if lowered not in self._by_name:
                raise SchemaError(f"value for unknown field {key!r}")
            coerced[lowered] = self._by_name[lowered].type.coerce(value)
        for field in self._fields:
            coerced.setdefault(field.name, None)
        return coerced

    def project(self, names: Iterable[str]) -> "StreamSchema":
        """A new schema containing only ``names``, in the order given."""
        return StreamSchema(self[name] for name in names)

    def merge(self, other: "StreamSchema",
              on_conflict: str = "error") -> "StreamSchema":
        """Concatenate two schemas (used when joining streams).

        ``on_conflict`` is ``"error"`` or ``"skip"`` (keep first).
        """
        fields = list(self._fields)
        seen = set(self.field_names)
        for field in other:
            if field.name in seen:
                if on_conflict == "skip":
                    continue
                raise SchemaError(f"field {field.name!r} exists in both schemas")
            fields.append(field)
            seen.add(field.name)
        return StreamSchema(fields)


def schema_from_example(values: Mapping[str, Any],
                        default: Optional[DataType] = None) -> StreamSchema:
    """Infer a schema from one example reading (for schemaless wrappers)."""
    from repro.datatypes import sql_affinity

    fields = []
    for name, value in values.items():
        if name.lower() == TIMED_FIELD:
            continue
        inferred = sql_affinity(value) if value is not None else default
        if inferred is None:
            raise SchemaError(
                f"cannot infer type for field {name!r} from {value!r}"
            )
        fields.append(Field(name, inferred))
    return StreamSchema(fields)
