"""Samplers and rate bounders.

Paper, Section 3: GSN can bound "the rate of a data stream in order to
avoid overloads" and supports "sampling of data streams in order to reduce
the data rate". These are small stateful filters the Input Stream Manager
applies before elements reach a window.
"""

from __future__ import annotations

import abc
import random
from typing import Optional

from repro.exceptions import StreamError
from repro.streams.element import StreamElement


class StreamFilter(abc.ABC):
    """A stateful admit/reject decision applied per element."""

    @abc.abstractmethod
    def admit(self, element: StreamElement) -> bool:
        """Return ``True`` if the element should continue downstream."""

    def reset(self) -> None:
        """Restore initial state (default: nothing to do)."""


class ProbabilisticSampler(StreamFilter):
    """Admits each element independently with probability ``rate``.

    GSN's ``sampling-rate`` attribute: a value of 1 passes everything,
    0.5 passes roughly half the elements.
    """

    def __init__(self, rate: float, seed: Optional[int] = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise StreamError(f"sampling rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._rng = random.Random(seed)

    def admit(self, element: StreamElement) -> bool:
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        return self._rng.random() < self.rate

    def __repr__(self) -> str:
        return f"ProbabilisticSampler(rate={self.rate})"


class SystematicSampler(StreamFilter):
    """Admits every ``n``-th element (deterministic decimation)."""

    def __init__(self, every: int) -> None:
        if every < 1:
            raise StreamError("systematic sampler needs every >= 1")
        self.every = every
        self._count = 0

    def admit(self, element: StreamElement) -> bool:
        self._count += 1
        if self._count >= self.every:
            self._count = 0
            return True
        return False

    def reset(self) -> None:
        self._count = 0

    def __repr__(self) -> str:
        return f"SystematicSampler(every={self.every})"


class RateBounder(StreamFilter):
    """Enforces a maximum element rate by timestamp spacing.

    Admits an element only if at least ``min_interval_ms`` elapsed (by the
    element's own timestamp) since the last admitted one. This is GSN's
    overload protection: excess elements are dropped, not queued, so a
    bursty source cannot delay the pipeline.
    """

    def __init__(self, max_per_second: float) -> None:
        if max_per_second <= 0:
            raise StreamError("rate bound must be positive")
        self.max_per_second = max_per_second
        self.min_interval_ms = 1000.0 / max_per_second
        self._last_admitted: Optional[int] = None
        self.dropped = 0

    def admit(self, element: StreamElement) -> bool:
        if element.timed is None:
            raise StreamError("rate bounding requires timestamped elements")
        if (self._last_admitted is None
                or element.timed - self._last_admitted >= self.min_interval_ms):
            self._last_admitted = element.timed
            return True
        self.dropped += 1
        return False

    def reset(self) -> None:
        self._last_admitted = None
        self.dropped = 0

    def __repr__(self) -> str:
        return (f"RateBounder(max_per_second={self.max_per_second}, "
                f"dropped={self.dropped})")


class FilterChain(StreamFilter):
    """Applies several filters in order; an element must pass all of them.

    Filters later in the chain do not see elements rejected earlier, so a
    rate bounder placed after a sampler measures the *sampled* rate.
    """

    def __init__(self, *filters: StreamFilter) -> None:
        self.filters = list(filters)

    def admit(self, element: StreamElement) -> bool:
        return all(f.admit(element) for f in self.filters)

    def reset(self) -> None:
        for f in self.filters:
            f.reset()

    def __repr__(self) -> str:
        return f"FilterChain({', '.join(map(repr, self.filters))})"
