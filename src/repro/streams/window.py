"""Count- and time-based windows over data streams.

Paper, Section 3: "a windowing mechanism which allows the user to define
count- or time-based windows on data streams". Windows maintain the set of
stream elements visible to the per-source query of pipeline step 2.

Windows broadcast element-level deltas to
:class:`~repro.streams.materialized.WindowObserver`\\ s (append, FIFO
eviction, bulk reset) and carry a monotonically increasing ``version``
that bumps on every content change — the dirty-tracking signal the
incremental pipeline uses to skip re-executing per-source queries for
windows that did not move.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Deque, List, Optional

from repro.exceptions import WindowError
from repro.gsntime.duration import parse_window_spec
from repro.streams.element import StreamElement
from repro.streams.materialized import WindowObserver


class SlidingWindow(abc.ABC):
    """Common interface for stream windows.

    Elements enter via :meth:`append`; :meth:`contents` returns the elements
    currently inside the window, oldest first. Time windows need the query
    time to expire elements, so ``contents`` takes ``now``.
    """

    def __init__(self) -> None:
        #: Bumped on every content change (append, evict, reset). Cached
        #: derivations of the window (temporary relations, accumulators)
        #: are valid exactly as long as the version they were built at.
        self.version = 0
        self._observers: List[WindowObserver] = []

    @abc.abstractmethod
    def append(self, element: StreamElement) -> None:
        """Admit a new element (must already carry a timestamp)."""

    @abc.abstractmethod
    def contents(self, now: Optional[int] = None) -> List[StreamElement]:
        """Elements currently in the window, oldest first."""

    @abc.abstractmethod
    def spec(self) -> str:
        """The descriptor string this window was built from."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of elements currently held — O(1), never materializes
        the contents list."""

    def synchronize(self, now: Optional[int] = None) -> bool:
        """Apply any pending expiry for query time ``now``.

        Returns ``True`` when, afterwards, the retained elements are
        exactly ``contents(now)`` — i.e. a materialized mirror of the
        retained set is a faithful window relation. Count windows always
        are; time windows are unless ``now`` lies before the newest
        element's timestamp (elements "from the future" are retained but
        outside the queried span).
        """
        return True

    def clear(self) -> None:
        """Drop all buffered elements."""
        raise NotImplementedError

    # -- observers ---------------------------------------------------------

    def add_observer(self, observer: WindowObserver) -> None:
        self._observers.append(observer)

    def remove_observer(self, observer: WindowObserver) -> None:
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    # Observer dispatch runs under the owning SourceRuntime's lock by
    # design: observers are the window's materialized mirrors (delta
    # relations, running aggregates) and MUST see every delta in the
    # exact order the window applies it, atomically with the window's
    # own mutation. Observers are internal, non-blocking, and never
    # take locks of their own (see docs/concurrency.md).

    def _notify_append(self, element: StreamElement) -> None:
        self.version += 1
        for observer in self._observers:
            observer.window_appended(element)  # gsn-lint: disable=GSN503

    def _notify_evict(self, element: StreamElement) -> None:
        self.version += 1
        for observer in self._observers:
            observer.window_evicted(element)  # gsn-lint: disable=GSN503

    def _notify_reset(self, retained: List[StreamElement]) -> None:
        self.version += 1
        for observer in self._observers:
            observer.window_reset(retained)  # gsn-lint: disable=GSN503


class CountWindow(SlidingWindow):
    """Keeps the last ``size`` elements regardless of their timestamps."""

    def __init__(self, size: int) -> None:
        super().__init__()
        if size <= 0:
            raise WindowError("count windows must hold at least one element")
        self.size = size
        self._elements: Deque[StreamElement] = deque()

    def append(self, element: StreamElement) -> None:
        if element.timed is None:
            raise WindowError("cannot window an unstamped element")
        if len(self._elements) >= self.size:
            evicted = self._elements.popleft()
            self._notify_evict(evicted)
        self._elements.append(element)
        self._notify_append(element)

    def contents(self, now: Optional[int] = None) -> List[StreamElement]:
        return list(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def clear(self) -> None:
        self._elements.clear()
        self._notify_reset([])

    def spec(self) -> str:
        return str(self.size)

    def __repr__(self) -> str:
        return f"CountWindow(size={self.size}, held={len(self._elements)})"


class TimeWindow(SlidingWindow):
    """Keeps elements whose timestamp lies within the trailing time span.

    An element with timestamp ``t`` is in the window at query time ``now``
    iff ``now - span < t <= now``. Out-of-order arrivals are tolerated: the
    window keeps elements sorted by insertion but expiry is purely
    timestamp-driven.
    """

    def __init__(self, span_millis: int) -> None:
        super().__init__()
        if span_millis <= 0:
            raise WindowError("time windows must span a positive duration")
        self.span_millis = span_millis
        self._elements: Deque[StreamElement] = deque()
        self._latest_seen: int = -1
        self._monotonic = True  # False once an out-of-order element arrives

    def append(self, element: StreamElement) -> None:
        if element.timed is None:
            raise WindowError("cannot window an unstamped element")
        if self._elements and element.timed < self._elements[-1].timed:
            self._monotonic = False
        self._elements.append(element)
        if element.timed > self._latest_seen:
            self._latest_seen = element.timed
        self._notify_append(element)

    def _expire(self, now: int) -> None:
        cutoff = now - self.span_millis
        # Elements are usually in timestamp order; pop expired ones from
        # the left. A full rebuild only happens after out-of-order
        # arrivals, where stale elements can hide mid-deque.
        while self._elements and self._elements[0].timed <= cutoff:
            evicted = self._elements.popleft()
            self._notify_evict(evicted)
        if not self._monotonic and any(
            e.timed <= cutoff for e in self._elements
        ):
            self._elements = deque(
                e for e in self._elements if e.timed > cutoff
            )
            self._notify_reset(list(self._elements))

    def synchronize(self, now: Optional[int] = None) -> bool:
        if self._latest_seen < 0:
            return True
        reference = self._latest_seen if now is None else now
        self._expire(reference)
        # After expiry every retained element has timed > cutoff; the
        # retained set equals contents(now) unless some element is newer
        # than the reference (an out-of-order "future" stamp).
        return reference >= self._latest_seen

    def contents(self, now: Optional[int] = None) -> List[StreamElement]:
        reference = self._latest_seen if now is None else now
        if reference < 0:
            return []
        self._expire(reference)
        cutoff = reference - self.span_millis
        if self._monotonic and reference >= self._latest_seen:
            # Everything retained lies in (cutoff, latest] ⊆ (cutoff, ref].
            return list(self._elements)
        return [e for e in self._elements
                if cutoff < e.timed <= reference]

    def __len__(self) -> int:
        # Expire against the newest seen timestamp, then count what is
        # left — O(1) plus expiry work that had to happen anyway.
        if self._latest_seen >= 0:
            self._expire(self._latest_seen)
        return len(self._elements)

    def clear(self) -> None:
        self._elements.clear()
        self._latest_seen = -1
        self._monotonic = True
        self._notify_reset([])

    def spec(self) -> str:
        from repro.gsntime.duration import format_duration
        return format_duration(self.span_millis)

    def __repr__(self) -> str:
        return (f"TimeWindow(span={self.span_millis}ms, "
                f"held={len(self._elements)})")


def make_window(spec: str) -> SlidingWindow:
    """Build a window from a descriptor attribute.

    ``"10"`` → a 10-element :class:`CountWindow`; ``"10s"`` → a 10-second
    :class:`TimeWindow` (GSN's ``storage-size`` convention).
    """
    try:
        kind, amount = parse_window_spec(spec)
    except Exception as exc:
        raise WindowError(f"bad window spec {spec!r}: {exc}") from exc
    if kind == "count":
        return CountWindow(amount)
    return TimeWindow(amount)
