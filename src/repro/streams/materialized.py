"""Delta-maintained window relations (the incremental hot path's core).

The legacy pipeline re-materializes every window into a fresh
:class:`~repro.sqlengine.relation.Relation` on *every* trigger — an
O(window) rebuild per arrival. This module keeps one relation per window
alive instead: a ring buffer of pre-flattened row tuples that the window
updates in place on append/expire, so pipeline step 2 ("select each
source's window contents and unnest them into flat relations") becomes a
zero-copy view of state that already exists.

Windows publish three events (:class:`WindowObserver`): one element
appended at the right edge, one element evicted from the oldest edge, or
a bulk reset (clear, or a time window repairing itself after out-of-order
arrivals). :class:`WindowRelation` translates those into row-level deltas
and forwards them to row listeners — the incremental-aggregate
accumulators of :mod:`repro.sqlengine.incremental`.

Thread-safety: a ``WindowRelation`` has no lock of its own; it is always
mutated from inside its window's notification calls, which the owning
:class:`~repro.vsensor.input_manager.SourceRuntime` serializes under its
per-source lock.
"""

from __future__ import annotations

from collections import deque
from typing import Any, List, Sequence, Tuple

from repro.sqlengine.relation import Relation
from repro.streams.element import StreamElement


class WindowObserver:
    """Protocol for objects tracking a window's element-level deltas.

    Windows guarantee that between resets, evictions happen strictly in
    FIFO order (the evicted element is always the oldest retained one),
    which is what lets observers mirror the window with a ring buffer.
    """

    def window_appended(self, element: StreamElement) -> None:
        """``element`` entered at the window's right (newest) edge."""

    def window_evicted(self, element: StreamElement) -> None:
        """``element`` left the window from the oldest edge."""

    def window_reset(self, retained: Sequence[StreamElement]) -> None:
        """Bulk change: the window now holds exactly ``retained``."""


class RowListener:
    """Row-level delta consumer fed by a :class:`WindowRelation`."""

    def row_appended(self, row: Tuple[Any, ...]) -> None:
        """``row`` was appended to the materialized relation."""

    def row_evicted(self, row: Tuple[Any, ...]) -> None:
        """``row`` (the oldest) was removed from the relation."""

    def rows_reset(self, rows: Sequence[Tuple[Any, ...]]) -> None:
        """The relation was rebuilt and now holds exactly ``rows``."""


class WindowRelation(Relation, WindowObserver):
    """A live, columnar-schema relation mirroring one window's contents.

    It *is* a :class:`Relation` — ``columns`` are the wrapper schema's
    field names plus ``timed`` and ``rows`` hold the flattened tuples —
    but ``rows`` is a deque maintained incrementally: O(1) append at the
    right edge, O(1) eviction at the left, zero per-trigger rebuild. The
    SQL executor only ever iterates catalog relations, so the deque is a
    drop-in backing store.
    """

    __slots__ = ("field_names", "listeners")

    def __init__(self, field_names: Sequence[str]) -> None:
        super().__init__(tuple(field_names) + ("timed",))
        # Replace the list backing store with a ring buffer; every other
        # Relation affordance (iteration, len, column access) still works.
        self.rows = deque()  # type: ignore[assignment]
        self.field_names: Tuple[str, ...] = tuple(
            name.lower() for name in field_names
        )
        self.listeners: List[RowListener] = []

    # -- row listeners -----------------------------------------------------

    def add_listener(self, listener: RowListener) -> None:
        self.listeners.append(listener)

    def remove_listener(self, listener: RowListener) -> None:
        try:
            self.listeners.remove(listener)
        except ValueError:
            pass

    # -- WindowObserver protocol -------------------------------------------

    def _flatten(self, element: StreamElement) -> Tuple[Any, ...]:
        return tuple(
            element.get(field) for field in self.field_names
        ) + (element.timed,)

    def window_appended(self, element: StreamElement) -> None:
        row = self._flatten(element)
        self.rows.append(row)
        for listener in self.listeners:
            listener.row_appended(row)

    def window_evicted(self, element: StreamElement) -> None:
        if not self.rows:
            return
        row = self.rows.popleft()  # type: ignore[attr-defined]
        for listener in self.listeners:
            listener.row_evicted(row)

    def window_reset(self, retained: Sequence[StreamElement]) -> None:
        self.rows = deque(  # type: ignore[assignment]
            self._flatten(element) for element in retained
        )
        for listener in self.listeners:
            listener.rows_reset(self.rows)

    # -- views -------------------------------------------------------------

    def snapshot(self) -> Relation:
        """A frozen point-in-time copy (used when pipelines run on pool
        threads, where the live view could mutate mid-query)."""
        clone = Relation(self.columns)
        clone.rows = list(self.rows)
        return clone

    def pretty(self, limit: int = 20) -> str:
        # Relation.pretty slices rows; deques don't slice.
        clone = self.snapshot()
        return clone.pretty(limit)

    def __repr__(self) -> str:
        return (f"WindowRelation({list(self.columns)}, "
                f"{len(self.rows)} rows)")
