"""Data-stream substrate.

A GSN data stream is a sequence of timestamped tuples (paper, Section 3).
This package provides the tuple/schema model, count- and time-based
windows, samplers and rate bounders, disconnect buffers, and the stream
quality manager used by the Input Stream Manager.
"""

from repro.streams.schema import Field, StreamSchema
from repro.streams.element import StreamElement
from repro.streams.window import CountWindow, SlidingWindow, TimeWindow, make_window
from repro.streams.sampling import ProbabilisticSampler, RateBounder, SystematicSampler
from repro.streams.buffer import DisconnectBuffer
from repro.streams.quality import QualityReport, StreamQualityMonitor

__all__ = [
    "Field",
    "StreamSchema",
    "StreamElement",
    "SlidingWindow",
    "CountWindow",
    "TimeWindow",
    "make_window",
    "ProbabilisticSampler",
    "SystematicSampler",
    "RateBounder",
    "DisconnectBuffer",
    "StreamQualityMonitor",
    "QualityReport",
]
