"""Disconnect buffers.

GSN descriptors carry a ``disconnect-buffer`` attribute on stream sources
(paper Figure 1: ``disconnect-buffer="10"``). While a source is
disconnected, up to that many elements are retained and replayed in order
when the connection returns, so short outages lose no data.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.exceptions import StreamError
from repro.streams.element import StreamElement


class DisconnectBuffer:
    """Bounded FIFO holding elements produced while a source is down.

    The buffer drops the *oldest* elements on overflow — the most recent
    readings are the ones a sensor application cares about after an outage.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise StreamError("disconnect buffer capacity cannot be negative")
        self.capacity = capacity
        self._buffer: Deque[StreamElement] = deque(maxlen=capacity or None)
        self._connected = True
        self.total_buffered = 0
        self.total_dropped = 0

    @property
    def connected(self) -> bool:
        return self._connected

    @property
    def pending(self) -> int:
        """Number of elements waiting to be replayed."""
        return len(self._buffer)

    def disconnect(self) -> None:
        """Mark the source as disconnected; subsequent offers are buffered."""
        self._connected = False

    def reconnect(self) -> List[StreamElement]:
        """Mark the source connected and return buffered elements in order.

        The caller (the Input Stream Manager) replays the returned elements
        downstream before resuming live delivery.
        """
        self._connected = True
        replay = list(self._buffer)
        self._buffer.clear()
        return replay

    def offer(self, element: StreamElement) -> bool:
        """Process one element.

        Returns ``True`` if the element should be delivered immediately
        (source connected); ``False`` if it was buffered or dropped.
        """
        if self._connected:
            return True
        if self.capacity == 0:
            self.total_dropped += 1
            return False
        if len(self._buffer) == self.capacity:
            self.total_dropped += 1  # deque(maxlen) evicts the oldest
        self._buffer.append(element)
        self.total_buffered += 1
        return False

    def __repr__(self) -> str:
        state = "connected" if self._connected else "disconnected"
        return (f"DisconnectBuffer(capacity={self.capacity}, {state}, "
                f"pending={self.pending})")
