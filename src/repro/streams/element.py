"""Stream elements: the timestamped tuples that flow through GSN.

Section 3 of the paper: "a data stream is a sequence of timestamped tuples"
whose order derives from the timestamps, with implicit timestamping on
arrival. A :class:`StreamElement` is immutable; transformations produce new
elements so that the "temporal history of data stream elements" can always
be traced.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from repro.exceptions import SchemaError
from repro.streams.schema import TIMED_FIELD, StreamSchema


class StreamElement:
    """One timestamped tuple.

    Attributes
    ----------
    timed:
        The element's primary timestamp in epoch milliseconds, or ``None``
        if the producer did not stamp it (the container will, on arrival).
    arrival_time:
        Reception time stamped by the container (paper: "implicit
        timestamping of tuples upon arrival"). ``None`` until received.
    """

    __slots__ = ("_values", "_timed", "_arrival_time", "_producer",
                 "_trace_id")

    def __init__(self, values: Mapping[str, Any], timed: Optional[int] = None,
                 arrival_time: Optional[int] = None,
                 producer: str = "", trace_id: Optional[str] = None) -> None:
        if timed is not None and timed < 0:
            raise SchemaError("timestamps cannot be negative")
        self._values: Dict[str, Any] = {
            key.lower(): value for key, value in values.items()
            if key.lower() != TIMED_FIELD
        }
        self._timed = timed
        self._arrival_time = arrival_time
        self._producer = producer
        self._trace_id = trace_id

    # -- accessors ---------------------------------------------------------

    @property
    def timed(self) -> Optional[int]:
        return self._timed

    @property
    def arrival_time(self) -> Optional[int]:
        return self._arrival_time

    @property
    def producer(self) -> str:
        """Name of the wrapper or virtual sensor that produced the element."""
        return self._producer

    @property
    def trace_id(self) -> Optional[str]:
        """Pipeline-trace id, or ``None`` when the element is untraced.

        Provenance only: not part of the payload, equality, or storage.
        """
        return self._trace_id

    @property
    def values(self) -> Dict[str, Any]:
        """A copy of the payload (without the implicit timestamp)."""
        return dict(self._values)

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(self._values)

    def __getitem__(self, name: str) -> Any:
        lowered = name.lower()
        if lowered == TIMED_FIELD:
            return self._timed
        try:
            return self._values[lowered]
        except KeyError:
            raise SchemaError(f"element has no field {name!r}") from None

    def get(self, name: str, default: Any = None) -> Any:
        lowered = name.lower()
        if lowered == TIMED_FIELD:
            return self._timed if self._timed is not None else default
        return self._values.get(lowered, default)

    def __contains__(self, name: object) -> bool:
        return (isinstance(name, str)
                and (name.lower() in self._values or name.lower() == TIMED_FIELD))

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    # -- derivation --------------------------------------------------------

    def with_timestamp(self, timed: int) -> "StreamElement":
        """A copy stamped with ``timed`` (used for step 1 of the pipeline)."""
        return StreamElement(self._values, timed=timed,
                             arrival_time=self._arrival_time,
                             producer=self._producer,
                             trace_id=self._trace_id)

    def with_arrival(self, arrival_time: int) -> "StreamElement":
        """A copy carrying the container reception time."""
        return StreamElement(self._values, timed=self._timed,
                             arrival_time=arrival_time,
                             producer=self._producer,
                             trace_id=self._trace_id)

    def with_producer(self, producer: str) -> "StreamElement":
        return StreamElement(self._values, timed=self._timed,
                             arrival_time=self._arrival_time,
                             producer=producer,
                             trace_id=self._trace_id)

    def with_trace(self, trace_id: Optional[str]) -> "StreamElement":
        """A copy stamped with a pipeline-trace id."""
        return StreamElement(self._values, timed=self._timed,
                             arrival_time=self._arrival_time,
                             producer=self._producer,
                             trace_id=trace_id)

    def with_values(self, **updates: Any) -> "StreamElement":
        """A copy with some payload fields replaced."""
        merged = dict(self._values)
        merged.update({k.lower(): v for k, v in updates.items()})
        return StreamElement(merged, timed=self._timed,
                             arrival_time=self._arrival_time,
                             producer=self._producer,
                             trace_id=self._trace_id)

    # -- conversion --------------------------------------------------------

    def as_row(self, schema: Optional[StreamSchema] = None) -> Dict[str, Any]:
        """Flatten to a relational row including the ``timed`` column.

        This is the "unnesting into flat relations" of pipeline step 2:
        window contents become rows the SQL engine can process. When a
        schema is given the row is restricted and validated against it.
        """
        if schema is None:
            row = dict(self._values)
        else:
            row = schema.validate(self._values)
        row[TIMED_FIELD] = self._timed
        return row

    def payload_size(self) -> int:
        """Approximate payload size in bytes (used by the benchmarks to
        report stream-element sizes the way Figure 3 does)."""
        total = 0
        for value in self._values.values():
            if value is None:
                continue
            if isinstance(value, (bytes, bytearray)):
                total += len(value)
            elif isinstance(value, str):
                total += len(value.encode("utf-8"))
            elif isinstance(value, bool):
                total += 1
            elif isinstance(value, int):
                total += 8
            elif isinstance(value, float):
                total += 8
            else:
                total += len(repr(value))
        return total

    # -- comparisons -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamElement):
            return NotImplemented
        return (self._timed == other._timed
                and self._values == other._values)

    def __hash__(self) -> int:
        return hash((self._timed, tuple(sorted(
            (k, v) for k, v in self._values.items()
            if not isinstance(v, (bytes, bytearray))
        ))))

    def __repr__(self) -> str:
        pairs = ", ".join(f"{k}={_short(v)}" for k, v in self._values.items())
        return f"StreamElement(timed={self._timed}, {pairs})"


def _short(value: Any) -> str:
    if isinstance(value, (bytes, bytearray)):
        return f"<{len(value)} bytes>"
    text = repr(value)
    return text if len(text) <= 32 else text[:29] + "..."
