"""Exception hierarchy for the GSN reproduction.

Every error raised by :mod:`repro` derives from :class:`GSNError` so that
applications can catch middleware failures with a single ``except`` clause
while still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class GSNError(Exception):
    """Base class for all errors raised by the middleware."""


class ConfigurationError(GSNError):
    """A deployment descriptor or runtime configuration value is invalid."""


class DescriptorError(ConfigurationError):
    """An XML virtual-sensor deployment descriptor could not be parsed."""


class ValidationError(ConfigurationError):
    """A descriptor parsed correctly but violates a semantic constraint."""


class SchemaError(GSNError):
    """A stream element does not match the schema it is declared against."""


class StreamError(GSNError):
    """A data-stream level failure (ordering, rate, disconnection)."""


class WindowError(StreamError):
    """An invalid window specification or window operation."""


class SQLError(GSNError):
    """Base class for SQL engine failures."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenized or parsed.

    Carries the offending position so tools can point at the error.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class SQLPlanError(SQLError):
    """A parsed query cannot be planned (unknown table/column, bad types)."""


class SQLExecutionError(SQLError):
    """A planned query failed during execution."""


class StorageError(GSNError):
    """The storage layer failed to persist or retrieve stream data."""


class WrapperError(GSNError):
    """A wrapper failed to initialize, produce data, or shut down."""


class LifecycleError(GSNError):
    """An operation is illegal in the current life-cycle state."""


class DeploymentError(GSNError):
    """A virtual sensor could not be deployed or undeployed."""


class DiscoveryError(GSNError):
    """No virtual sensor matching a set of predicates could be located."""


class TransportError(GSNError):
    """Inter-container communication failed."""


class AccessDeniedError(GSNError):
    """The caller lacks the permission required for the operation."""


class IntegrityError(GSNError):
    """A signed or encrypted payload failed verification."""


class NotificationError(GSNError):
    """A notification channel failed to deliver an event."""
