"""Peering: remote subscriptions between containers.

``PeerNetwork`` bundles the shared directory and message bus of one GSN
deployment; each container joins through a ``PeerNode``. The node serves
two roles:

- *producer*: on a ``subscribe`` message it attaches a listener to the
  local virtual sensor's output stream and forwards every element as an
  ``element`` message (sealed by the integrity service when enabled);
- *consumer*: :meth:`PeerNode.subscribe` resolves predicates through the
  directory ("logical addressing"), sends the ``subscribe`` message, and
  routes incoming elements to the local callback — this is what backs
  ``<address wrapper="remote">``.
"""

from __future__ import annotations

import itertools
import logging
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.access.integrity import IntegrityService, SealedEnvelope
from repro.concurrency import new_lock
from repro.datatypes import DataType
from repro.exceptions import DiscoveryError, TransportError
from repro.gsntime.clock import Clock
from repro.gsntime.scheduler import EventScheduler
from repro.metrics.flight import FlightRecorder
from repro.metrics.registry import MetricsRegistry
from repro.metrics.tracing import REMOTE_HOP_STEP, Span, TraceBuffer
from repro.network.directory import DirectoryEntry, PeerDirectory
from repro.network.transport import Message, MessageBus
from repro.status import UptimeTracker, status_doc
from repro.streams.element import StreamElement
from repro.streams.schema import Field, StreamSchema

ElementListener = Callable[[StreamElement], None]

logger = logging.getLogger("repro.network")

_subscription_ids = itertools.count(1)


class PeerNetwork:
    """The directory + bus shared by one deployment of GSN containers.

    ``distributed=True`` swaps the in-process directory for the
    Chord-style :class:`~repro.network.overlay.DistributedDirectory`:
    same lookup semantics, but entries are sharded over the peers and
    lookups route through the overlay (O(log n) hops).
    """

    def __init__(self, scheduler: Optional[EventScheduler] = None,
                 latency_ms: int = 0, loss_rate: float = 0.0,
                 seed: Optional[int] = 0,
                 distributed: bool = False) -> None:
        if distributed:
            from repro.network.overlay import DistributedDirectory
            self.directory = DistributedDirectory()
        else:
            self.directory = PeerDirectory()
        self.bus = MessageBus(scheduler, latency_ms, loss_rate, seed)
        self._uptime = UptimeTracker()

    def status(self) -> dict:
        doc = status_doc(
            "peer-network", "running",
            counters={"directory_entries": len(self.directory)},
            uptime_ms=self._uptime.uptime_ms(),
            directory_entries=len(self.directory),
            directory=[
                {"container": e.container, "sensor": e.sensor,
                 "predicates": e.predicate_dict()}
                for e in self.directory.entries()
            ],
            bus=self.bus.status(),
        )
        total_hops = getattr(self.directory, "total_hops", None)
        if total_hops is not None:
            doc["overlay_hops"] = total_hops
        return doc


def schema_to_wire(schema: StreamSchema) -> Tuple[Tuple[str, str], ...]:
    return tuple((f.name, f.type.value) for f in schema)


def schema_from_wire(wire: Tuple[Tuple[str, str], ...]) -> StreamSchema:
    return StreamSchema(
        Field(name, DataType.parse(type_text)) for name, type_text in wire
    )


class PeerNode:
    """One container's presence on the peer network."""

    def __init__(self, network: PeerNetwork, name: str,
                 sensor_getter: Callable[[str], "object"],
                 integrity: Optional[IntegrityService] = None,
                 seal: str = "none",
                 clock: Optional[Clock] = None,
                 trace_sink: Optional[TraceBuffer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 events: Optional[FlightRecorder] = None) -> None:
        if seal not in ("none", "sign", "encrypt"):
            raise TransportError(f"unknown seal level {seal!r}")
        if seal != "none" and integrity is None:
            raise TransportError("sealing requires an integrity service")
        self.network = network
        self.name = name.lower()
        self._sensor_getter = sensor_getter
        self.integrity = integrity
        self.seal = seal
        self.clock = clock
        self.trace_sink = trace_sink
        self.events = events
        self._hop_latency = None
        if metrics is not None:
            self._hop_latency = metrics.histogram(
                "gsn_remote_hop_latency_ms",
                "Container-to-container delivery latency (shared clock).",
                labelnames=("producer", "subscriber"),
            )
        # Guards the subscription maps and counters, which bus callbacks
        # mutate from scheduler/wrapper threads. Bus sends and listener
        # dispatch stay OUTSIDE the lock: sends re-enter peer callbacks
        # on the remote node and listeners run arbitrary wrapper code
        # (GSN502/GSN503 regression, see CHANGES.md PR 4).
        self._lock = new_lock("PeerNode._lock")
        # producer side: subscription id -> (sensor_name, detach callable)
        self._served: Dict[int, Tuple[str, Callable[[], None]]] = {}  # guarded-by: PeerNode._lock
        # consumer side: subscription id -> local listener
        self._listening: Dict[int, ElementListener] = {}  # guarded-by: PeerNode._lock
        self.elements_forwarded = 0  # guarded-by: PeerNode._lock
        self.elements_received = 0  # guarded-by: PeerNode._lock
        self._uptime = UptimeTracker()
        network.bus.register(self.name, self._on_message)
        add_peer = getattr(network.directory, "add_peer", None)
        if add_peer is not None:  # distributed overlay: join the ring
            add_peer(self.name)

    # -- lifecycle -----------------------------------------------------------

    def leave(self) -> None:
        """Detach from the network, tearing down served subscriptions."""
        with self._lock:
            served = list(self._served)
        for subscription_id in served:
            self._detach(subscription_id)
        with self._lock:
            self._listening.clear()
        self.network.directory.unpublish_container(self.name)
        remove_peer = getattr(self.network.directory, "remove_peer", None)
        if remove_peer is not None:
            remove_peer(self.name)
        self.network.bus.unregister(self.name)

    # -- directory -----------------------------------------------------------

    def publish(self, sensor_name: str, predicates: Mapping[str, str],
                schema: StreamSchema) -> DirectoryEntry:
        return self.network.directory.publish(
            self.name, sensor_name, predicates, schema_to_wire(schema)
        )

    def unpublish(self, sensor_name: str) -> None:
        self.network.directory.unpublish(self.name, sensor_name)

    # -- consumer side ---------------------------------------------------------

    def subscribe(self, predicates: Mapping[str, str],
                  listener: ElementListener
                  ) -> Tuple[StreamSchema, Callable[[], None]]:
        """Resolve ``predicates`` and stream the matching sensor's output
        to ``listener``. Returns the remote schema and a cancel callable.

        This signature matches
        :data:`repro.wrappers.remote.SubscribeFunc`, so a bound method of
        this node is exactly what remote wrappers are given.
        """
        entry = self.network.directory.lookup_one(predicates)
        if not entry.schema:
            raise DiscoveryError(
                f"directory entry for {entry.sensor!r} carries no schema"
            )
        subscription_id = next(_subscription_ids)
        with self._lock:
            self._listening[subscription_id] = listener
        self.network.bus.send(
            self.name, entry.container, "subscribe",
            {"sensor": entry.sensor, "subscription_id": subscription_id,
             "subscriber": self.name},
            reliable=True,
        )

        def cancel() -> None:
            with self._lock:
                self._listening.pop(subscription_id, None)
            try:
                self.network.bus.send(
                    self.name, entry.container, "unsubscribe",
                    {"subscription_id": subscription_id},
                    reliable=True,
                )
            except TransportError:
                pass  # producer already gone

        return schema_from_wire(entry.schema), cancel

    # -- message handling --------------------------------------------------------

    def _on_message(self, message: Message) -> None:
        if message.kind == "subscribe":
            self._serve(message)
        elif message.kind == "unsubscribe":
            self._detach(message.payload["subscription_id"])
        elif message.kind == "element":
            self._receive(message)
        else:
            raise TransportError(f"unknown message kind {message.kind!r}")

    def _serve(self, message: Message) -> None:
        sensor_name = message.payload["sensor"]
        subscription_id = message.payload["subscription_id"]
        subscriber = message.payload["subscriber"]
        sensor = self._sensor_getter(sensor_name)

        def forward(element: StreamElement) -> None:
            payload = {
                "subscription_id": subscription_id,
                "values": element.values,
                "timed": element.timed,
                "producer": f"{self.name}/{sensor_name}",
            }
            if element.trace_id is not None:
                # Trace provenance travels inside the (sealable) payload
                # so the receiving container stitches the same trace.
                payload["trace_id"] = element.trace_id
                if self.clock is not None:
                    payload["sent_at"] = self.clock.now()
            if self.seal != "none":
                assert self.integrity is not None
                envelope = self.integrity.seal(
                    payload, encrypt=(self.seal == "encrypt")
                )
                wire = {"sealed": envelope}
            else:
                wire = payload
            try:
                self.network.bus.send(self.name, subscriber, "element", wire)
                with self._lock:
                    self.elements_forwarded += 1
            except TransportError as exc:
                logger.warning(
                    "%s: dropping subscription %s to %s: %s",
                    self.name, subscription_id, subscriber, exc,
                )
                self._detach(subscription_id)

        # Attaching to the sensor's output stream takes the sensor's
        # emit lock; done before publishing the registration so the node
        # lock is never held across it (PeerNode._lock stays outermost).
        sensor.add_listener(forward)
        with self._lock:
            self._served[subscription_id] = (
                sensor_name, lambda: sensor.remove_listener(forward)
            )
        if self.events is not None:
            self.events.record("peer_subscribe", self.name,
                               sensor=sensor_name, subscriber=subscriber,
                               subscription_id=subscription_id)

    def _detach(self, subscription_id: int) -> None:
        with self._lock:
            entry = self._served.pop(subscription_id, None)
        if entry is not None:
            sensor_name, detach = entry
            detach()  # takes the sensor's emit lock: outside ours
            if self.events is not None:
                self.events.record("peer_unsubscribe", self.name,
                                   sensor=sensor_name,
                                   subscription_id=subscription_id)

    def _receive(self, message: Message) -> None:
        payload = message.payload
        if "sealed" in payload:
            envelope = payload["sealed"]
            if not isinstance(envelope, SealedEnvelope):
                raise TransportError("malformed sealed element")
            if self.integrity is None:
                raise TransportError(
                    "received a sealed element without an integrity service"
                )
            payload = self.integrity.open(envelope)
        subscription_id = payload["subscription_id"]
        with self._lock:
            listener = self._listening.get(subscription_id)
        if listener is None:
            return  # cancelled while in flight
        trace_id = payload.get("trace_id")
        element = StreamElement(
            payload["values"],
            timed=payload["timed"],
            producer=payload.get("producer", "remote"),
            trace_id=trace_id,
        )
        if trace_id is not None:
            self._record_hop(payload, trace_id)
        with self._lock:
            self.elements_received += 1
        # The listener feeds the local remote-wrapper, which runs the
        # whole admission + pipeline chain — never under the node lock.
        listener(element)

    def _record_hop(self, payload: Mapping[str, object],
                    trace_id: str) -> None:
        """Record the remote-hop span of a traced inbound element.

        The hop duration comes from the deployment's shared clock
        (``sent_at`` stamped by the producer), not this process's wall
        clock, so it is meaningful in simulation too.
        """
        sent_at = payload.get("sent_at")
        producer = str(payload.get("producer", "remote"))
        now = self.clock.now() if self.clock is not None else None
        duration = float(now - sent_at) \
            if isinstance(sent_at, int) and now is not None else 0.0
        if self._hop_latency is not None:
            self._hop_latency.labels(
                producer=producer, subscriber=self.name
            ).observe(duration)
        if self.trace_sink is not None:
            span = Span(trace_id, REMOTE_HOP_STEP,
                        sent_at if isinstance(sent_at, int) else (now or 0),
                        producer=producer, subscriber=self.name)
            span.close(duration)
            self.trace_sink.add(span)
        if self.events is not None:
            self.events.record("remote_hop", self.name,
                               producer=producer, trace_id=trace_id,
                               latency_ms=duration)

    def status(self) -> dict:
        return status_doc(
            self.name, "joined",
            counters={"elements_forwarded": self.elements_forwarded,
                      "elements_received": self.elements_received},
            uptime_ms=self._uptime.uptime_ms(),
            serving=len(self._served),
            listening=len(self._listening),
            elements_forwarded=self.elements_forwarded,
            elements_received=self.elements_received,
            seal=self.seal,
        )
