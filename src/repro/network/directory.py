"""The peer-to-peer directory.

Virtual sensors are "identified by user-definable key-value pairs ...
discovered and accessed based on any combination of their properties, for
example, geographical location and sensor type" (paper, Section 4). A
lookup supplies predicates; an entry matches when it carries *every*
queried key with an equal (case-insensitive) value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.exceptions import DiscoveryError


@dataclass(frozen=True)
class DirectoryEntry:
    """One published virtual sensor.

    ``schema`` carries the sensor's output structure as (field, type)
    pairs so that subscribers can wire a remote stream without a round
    trip to the producer.
    """

    container: str
    sensor: str
    predicates: Tuple[Tuple[str, str], ...]
    schema: Tuple[Tuple[str, str], ...] = ()

    def predicate_dict(self) -> Dict[str, str]:
        return dict(self.predicates)

    def matches(self, query: Mapping[str, str]) -> bool:
        own = self.predicate_dict()
        for key, value in query.items():
            lowered_key = key.lower()
            lowered_value = str(value).lower()
            if lowered_key == "name" and lowered_key not in own:
                # Every sensor is implicitly addressable by its name,
                # even when the publisher set no explicit name predicate.
                if self.sensor != lowered_value:
                    return False
                continue
            if own.get(lowered_key) != lowered_value:
                return False
        return True


def _normalize(predicates: Mapping[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(
        (str(k).lower(), str(v).lower()) for k, v in predicates.items()
    ))


class PeerDirectory:
    """The shared discovery structure of one GSN peer network.

    In the original this is distributed (P-Grid); the reproduction keeps
    one consistent in-process registry, which preserves the lookup
    semantics the middleware layers against.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, str], DirectoryEntry] = {}
        self.lookups = 0

    def publish(self, container: str, sensor: str,
                predicates: Mapping[str, str],
                schema: Tuple[Tuple[str, str], ...] = ()) -> DirectoryEntry:
        entry = DirectoryEntry(
            container=container.lower(),
            sensor=sensor.lower(),
            predicates=_normalize(predicates),
            schema=tuple(schema),
        )
        self._entries[(entry.container, entry.sensor)] = entry
        return entry

    def unpublish(self, container: str, sensor: str) -> None:
        self._entries.pop((container.lower(), sensor.lower()), None)

    def unpublish_container(self, container: str) -> None:
        """Remove everything a departing container published."""
        key = container.lower()
        for entry_key in [k for k in self._entries if k[0] == key]:
            del self._entries[entry_key]

    def lookup(self, predicates: Mapping[str, str]) -> List[DirectoryEntry]:
        """All entries matching every queried predicate, sorted for
        deterministic selection."""
        self.lookups += 1
        matches = [
            entry for entry in self._entries.values()
            if entry.matches(predicates)
        ]
        matches.sort(key=lambda e: (e.container, e.sensor))
        return matches

    def lookup_one(self, predicates: Mapping[str, str]) -> DirectoryEntry:
        """The first match; raises :class:`DiscoveryError` when none."""
        matches = self.lookup(predicates)
        if not matches:
            raise DiscoveryError(
                f"no virtual sensor matches predicates {dict(predicates)!r}"
            )
        return matches[0]

    def entries(self) -> List[DirectoryEntry]:
        return sorted(self._entries.values(),
                      key=lambda e: (e.container, e.sensor))

    def __len__(self) -> int:
        return len(self._entries)
