"""Peer-to-peer networking between GSN containers.

"GSN nodes communicate among each other in a peer-to-peer fashion" with
virtual sensor descriptions "published in a peer-to-peer directory so that
virtual sensors can be discovered and accessed based on any combination of
their properties" (paper, Section 4).

The physical LAN of the paper's testbed is replaced by an in-process
message bus with injectable latency and loss
(:class:`~repro.network.transport.MessageBus`); the directory is the same
predicate-match structure a DHT would serve.
"""

from repro.network.directory import DirectoryEntry, PeerDirectory
from repro.network.transport import Message, MessageBus
from repro.network.peer import PeerNetwork, PeerNode

__all__ = [
    "PeerDirectory",
    "DirectoryEntry",
    "MessageBus",
    "Message",
    "PeerNetwork",
    "PeerNode",
]
