"""A structured-overlay (Chord-style) distributed directory.

The original GSN publishes virtual-sensor descriptions in a *P2P
directory* (P-Grid). :class:`repro.network.directory.PeerDirectory`
models its lookup semantics with one in-process registry; this module
models its *distribution*: directory entries are sharded over a ring of
peers with consistent hashing, lookups route greedily through finger
tables in O(log n) hops, and peers joining/leaving hand their shard over
— the properties that make the directory scale with the network.

Indexing scheme (how predicate queries map onto a DHT, as in GSN):
every entry is indexed once per ``key=value`` predicate it carries (and
under its name); a query picks one of its predicates, routes to the
shard responsible for that pair, fetches the candidate set, and filters
the remaining predicates locally. Queries with no predicates degrade to
a full-ring gather.

:class:`DistributedDirectory` is API-compatible with ``PeerDirectory``,
so ``PeerNetwork(distributed=True)`` swaps it in transparently; it also
exposes routing statistics (:attr:`DistributedDirectory.total_hops`)
that the scalability benchmark asserts against.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, insort
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.exceptions import DiscoveryError, TransportError
from repro.network.directory import DirectoryEntry, _normalize

#: Identifier-space size: 2**BITS positions on the ring.
BITS = 32
_SPACE = 1 << BITS


def ring_hash(text: str) -> int:
    """Position of ``text`` on the identifier ring."""
    digest = hashlib.sha1(text.lower().encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SPACE


class OverlayNode:
    """One peer's shard of the directory plus its finger table."""

    def __init__(self, name: str) -> None:
        self.name = name.lower()
        self.node_id = ring_hash(self.name)
        #: index key -> set of directory entries stored at this node
        self.store: Dict[int, Set[DirectoryEntry]] = {}
        #: finger[i] = the node succeeding (id + 2^i); maintained by the ring
        self.fingers: List["OverlayNode"] = []

    def closest_preceding(self, key: int) -> "OverlayNode":
        """The finger that makes the most progress toward ``key``
        without overshooting (classic Chord routing step)."""
        for finger in reversed(self.fingers):
            if _in_open_interval(finger.node_id, self.node_id, key):
                return finger
        return self

    def __repr__(self) -> str:
        return f"<OverlayNode {self.name} id={self.node_id}>"


def _in_open_interval(x: int, a: int, b: int) -> bool:
    """Whether x lies in the ring interval (a, b), wrapping around."""
    if a < b:
        return a < x < b
    return x > a or x < b


class ChordRing:
    """The ring of overlay nodes, with joins, leaves, and routed lookups."""

    def __init__(self) -> None:
        self._nodes: Dict[str, OverlayNode] = {}
        self._ids: List[int] = []          # sorted node ids
        self._by_id: Dict[int, OverlayNode] = {}
        self.total_hops = 0
        self.lookups_routed = 0

    # -- membership -----------------------------------------------------------

    def join(self, name: str) -> OverlayNode:
        node = OverlayNode(name)
        if node.name in self._nodes:
            raise TransportError(f"peer {name!r} already on the ring")
        if node.node_id in self._by_id:
            raise TransportError(
                f"ring id collision for {name!r} (try another name)"
            )
        # The new node takes over the keys it now succeeds.
        successor = self._successor_node(node.node_id)
        self._nodes[node.name] = node
        self._by_id[node.node_id] = node
        insort(self._ids, node.node_id)
        if successor is not None and successor is not node:
            for key in [k for k in successor.store
                        if self._successor_id(k) == node.node_id]:
                node.store[key] = successor.store.pop(key)
        self._rebuild_fingers()
        return node

    def leave(self, name: str) -> None:
        node = self._nodes.pop(name.lower(), None)
        if node is None:
            return
        self._ids.remove(node.node_id)
        del self._by_id[node.node_id]
        if self._ids:
            # Hand the departing node's shard to its successor.
            successor = self._successor_node(node.node_id)
            assert successor is not None
            for key, entries in node.store.items():
                successor.store.setdefault(key, set()).update(entries)
        self._rebuild_fingers()

    def node_names(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def _rebuild_fingers(self) -> None:
        # Centralized finger maintenance stands in for Chord's
        # stabilization protocol; the *routing* still only uses fingers.
        for node in self._nodes.values():
            node.fingers = [
                self._successor_node((node.node_id + (1 << i)) % _SPACE)
                for i in range(BITS)
            ]

    # -- key placement ----------------------------------------------------------

    def _successor_id(self, key: int) -> int:
        # Chord: successor(k) is the first node with id >= k (wrapping).
        position = bisect_left(self._ids, key)
        if position == len(self._ids):
            position = 0
        return self._ids[position]

    def _successor_node(self, key: int) -> Optional[OverlayNode]:
        if not self._ids:
            return None
        return self._by_id[self._successor_id(key)]

    def owner_of(self, key: int) -> OverlayNode:
        node = self._successor_node(key)
        if node is None:
            raise TransportError("the overlay has no nodes")
        return node

    # -- routing ------------------------------------------------------------------

    def route(self, start: OverlayNode, key: int) -> Tuple[OverlayNode, int]:
        """Greedy finger routing from ``start`` to the owner of ``key``.

        Returns (owner, hops). Hop counts feed the scalability bench:
        they must stay O(log n).
        """
        owner = self.owner_of(key)
        current = start
        hops = 0
        while current is not owner:
            # Greedy progress through fingers lands on the key's immediate
            # predecessor; its successor finger (fingers[0]) is the owner.
            nxt = current.closest_preceding(key)
            if nxt is current:
                nxt = current.fingers[0] if current.fingers else owner
            if nxt is current:  # single-node ring
                break
            current = nxt
            hops += 1
            if hops > 4 * BITS:  # routing loop guard (should not happen)
                raise TransportError("overlay routing did not converge")
        self.total_hops += hops
        self.lookups_routed += 1
        return owner, hops


def _index_keys(entry: DirectoryEntry) -> List[int]:
    keys = [ring_hash(f"{key}={value}") for key, value in entry.predicates]
    keys.append(ring_hash(f"name={entry.sensor}"))
    return keys


class DistributedDirectory:
    """``PeerDirectory``-compatible facade over a :class:`ChordRing`."""

    def __init__(self) -> None:
        self.ring = ChordRing()
        self.lookups = 0

    # -- membership (driven by PeerNode attach/leave) --------------------------

    def add_peer(self, name: str) -> None:
        self.ring.join(name)

    def remove_peer(self, name: str) -> None:
        self.ring.leave(name)

    @property
    def total_hops(self) -> int:
        return self.ring.total_hops

    # -- PeerDirectory API ---------------------------------------------------------

    def publish(self, container: str, sensor: str,
                predicates: Mapping[str, str],
                schema: Tuple[Tuple[str, str], ...] = ()) -> DirectoryEntry:
        self._ensure_peer(container)
        self.unpublish(container, sensor)
        entry = DirectoryEntry(
            container=container.lower(),
            sensor=sensor.lower(),
            predicates=_normalize(predicates),
            schema=tuple(schema),
        )
        origin = self.ring._nodes[entry.container]
        for key in _index_keys(entry):
            owner, __ = self.ring.route(origin, key)
            owner.store.setdefault(key, set()).add(entry)
        return entry

    def _ensure_peer(self, container: str) -> None:
        if container.lower() not in self.ring._nodes:
            self.ring.join(container)

    def unpublish(self, container: str, sensor: str) -> None:
        container = container.lower()
        sensor = sensor.lower()
        for node in self.ring._nodes.values():
            for key in list(node.store):
                node.store[key] = {
                    e for e in node.store[key]
                    if not (e.container == container and e.sensor == sensor)
                }
                if not node.store[key]:
                    del node.store[key]

    def unpublish_container(self, container: str) -> None:
        container = container.lower()
        for node in self.ring._nodes.values():
            for key in list(node.store):
                node.store[key] = {
                    e for e in node.store[key] if e.container != container
                }
                if not node.store[key]:
                    del node.store[key]

    def lookup(self, predicates: Mapping[str, str]) -> List[DirectoryEntry]:
        self.lookups += 1
        if not self.ring._nodes:
            return []
        origin = next(iter(self.ring._nodes.values()))
        normalized = {str(k).lower(): str(v).lower()
                      for k, v in predicates.items()}
        if normalized:
            # Route to the shard of one predicate; filter the rest there.
            first_key, first_value = next(iter(normalized.items()))
            key = ring_hash(f"{first_key}={first_value}")
            owner, __ = self.ring.route(origin, key)
            candidates = set(owner.store.get(key, ()))
        else:
            # No predicates: gather the whole ring.
            candidates = {
                entry
                for node in self.ring._nodes.values()
                for entries in node.store.values()
                for entry in entries
            }
        matches = [entry for entry in candidates
                   if entry.matches(normalized)]
        matches.sort(key=lambda e: (e.container, e.sensor))
        return matches

    def lookup_one(self, predicates: Mapping[str, str]) -> DirectoryEntry:
        matches = self.lookup(predicates)
        if not matches:
            raise DiscoveryError(
                f"no virtual sensor matches predicates {dict(predicates)!r}"
            )
        return matches[0]

    def entries(self) -> List[DirectoryEntry]:
        unique = {
            entry
            for node in self.ring._nodes.values()
            for entries in node.store.values()
            for entry in entries
        }
        return sorted(unique, key=lambda e: (e.container, e.sensor))

    def __len__(self) -> int:
        return len(self.entries())
