"""In-process message bus standing in for the paper's LAN.

Containers register an inbox handler under their name; :meth:`send`
routes a message, optionally after a simulated latency (via the event
scheduler) and subject to a seeded loss probability. Latency and loss
are *parameters* here where the paper had cables — the code paths above
(remote wrappers, peering, discovery) are identical.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.concurrency import new_lock
from repro.exceptions import TransportError
from repro.gsntime.scheduler import EventScheduler
from repro.status import UptimeTracker, status_doc

logger = logging.getLogger("repro.network")


@dataclass(frozen=True)
class Message:
    """One routed datagram."""

    source: str
    destination: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)


Handler = Callable[[Message], None]


class MessageBus:
    """Routes messages between named endpoints."""

    def __init__(self, scheduler: Optional[EventScheduler] = None,
                 latency_ms: int = 0, loss_rate: float = 0.0,
                 seed: Optional[int] = 0) -> None:
        if latency_ms < 0:
            raise TransportError("latency cannot be negative")
        if not 0.0 <= loss_rate < 1.0:
            raise TransportError("loss rate must be in [0, 1)")
        self.scheduler = scheduler
        self.latency_ms = latency_ms
        self.loss_rate = loss_rate
        self._rng = random.Random(seed)
        # Serializes the endpoint table and delivery counters: nodes
        # register/leave from the application thread while scheduled
        # deliveries and peer callbacks route concurrently.
        self._lock = new_lock("MessageBus._lock")
        self._handlers: Dict[str, Handler] = {}  # guarded-by: MessageBus._lock
        self.sent = 0  # guarded-by: MessageBus._lock
        self.delivered = 0  # guarded-by: MessageBus._lock
        self.dropped = 0  # guarded-by: MessageBus._lock
        self._uptime = UptimeTracker()

    def register(self, name: str, handler: Handler) -> None:
        key = name.lower()
        with self._lock:
            if key in self._handlers:
                raise TransportError(f"endpoint {name!r} already registered")
            self._handlers[key] = handler

    def unregister(self, name: str) -> None:
        with self._lock:
            self._handlers.pop(name.lower(), None)

    def endpoints(self):
        with self._lock:
            return sorted(self._handlers)

    def send(self, source: str, destination: str, kind: str,
             payload: Optional[Dict[str, Any]] = None,
             reliable: bool = False) -> bool:
        """Route one message. Returns ``False`` if it was lost.

        ``reliable`` messages bypass loss injection (the control plane —
        subscriptions, discovery — runs over TCP in a real deployment;
        only the data plane is exposed to loss). Unknown destinations
        raise :class:`TransportError` — a configuration error, unlike
        loss, which is a simulated network property.
        """
        key = destination.lower()
        with self._lock:
            handler = self._handlers.get(key)
        if handler is None:
            raise TransportError(f"unknown endpoint {destination!r}")
        message = Message(source.lower(), key, kind, payload or {})
        with self._lock:
            self.sent += 1
            lost = (not reliable and self.loss_rate > 0.0
                    and self._rng.random() < self.loss_rate)
            if lost:
                self.dropped += 1
        if lost:
            logger.debug("dropped %s message %s -> %s (simulated loss)",
                         kind, source, destination)
            return False
        if self.latency_ms > 0 and self.scheduler is not None:
            self.scheduler.after(
                self.latency_ms,
                lambda __: self._deliver(handler, message),
                name=f"msg:{kind}",
            )
        else:
            self._deliver(handler, message)
        return True

    def _deliver(self, handler: Handler, message: Message) -> None:
        handler(message)
        with self._lock:
            self.delivered += 1

    def status(self) -> dict:
        with self._lock:
            sent, delivered, dropped = self.sent, self.delivered, self.dropped
        return status_doc(
            "message-bus", "running",
            counters={"sent": sent, "delivered": delivered,
                      "dropped": dropped},
            uptime_ms=self._uptime.uptime_ms(),
            endpoints=self.endpoints(),
            latency_ms=self.latency_ms,
            loss_rate=self.loss_rate,
            sent=sent,
            delivered=delivered,
            dropped=dropped,
        )
