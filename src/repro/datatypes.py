"""Field data types used in virtual-sensor output structures.

GSN descriptors declare an ``<output-structure>`` whose fields carry a type
(the paper's Figure 1 shows ``type="integer"``). This module defines the
supported types, their Python representations, and conversion/validation
helpers used by the schema and SQL layers.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from repro.exceptions import SchemaError


class DataType(enum.Enum):
    """The type of a single field in a stream schema."""

    INTEGER = "integer"
    DOUBLE = "double"
    VARCHAR = "varchar"
    BINARY = "binary"
    BOOLEAN = "boolean"
    TIMESTAMP = "timestamp"

    @classmethod
    def parse(cls, text: str) -> "DataType":
        """Parse a descriptor type string (case-insensitive, with aliases)."""
        normalized = text.strip().lower()
        alias = _ALIASES.get(normalized, normalized)
        try:
            return cls(alias)
        except ValueError:
            raise SchemaError(f"unknown data type: {text!r}") from None

    @property
    def python_type(self) -> type:
        """The canonical Python type for values of this data type."""
        return _PYTHON_TYPES[self]

    def coerce(self, value: Any) -> Any:
        """Convert ``value`` to this type, raising :class:`SchemaError` if
        the conversion would lose meaning (e.g. a string into an integer
        field that is not numeric)."""
        if value is None:
            return None
        try:
            return _COERCERS[self](value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"cannot coerce {value!r} to {self.value}"
            ) from exc

    def accepts(self, value: Any) -> bool:
        """Whether ``value`` is already a valid instance of this type."""
        if value is None:
            return True
        if self is DataType.DOUBLE:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is DataType.INTEGER or self is DataType.TIMESTAMP:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is DataType.VARCHAR:
            return isinstance(value, str)
        if self is DataType.BINARY:
            return isinstance(value, (bytes, bytearray))
        if self is DataType.BOOLEAN:
            return isinstance(value, bool)
        return False


_ALIASES = {
    "int": "integer",
    "bigint": "integer",
    "smallint": "integer",
    "tinyint": "integer",
    "float": "double",
    "real": "double",
    "numeric": "double",
    "string": "varchar",
    "text": "varchar",
    "char": "varchar",
    "blob": "binary",
    "bytes": "binary",
    "bool": "boolean",
    "time": "timestamp",
}

_PYTHON_TYPES = {
    DataType.INTEGER: int,
    DataType.DOUBLE: float,
    DataType.VARCHAR: str,
    DataType.BINARY: bytes,
    DataType.BOOLEAN: bool,
    DataType.TIMESTAMP: int,
}


def _coerce_int(value: Any) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float) and not value.is_integer():
        raise ValueError(f"{value} has a fractional part")
    return int(value)


def _coerce_binary(value: Any) -> bytes:
    if isinstance(value, (bytes, bytearray)):
        return bytes(value)
    if isinstance(value, str):
        return value.encode("utf-8")
    raise TypeError(f"cannot treat {type(value).__name__} as binary")


def _coerce_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "1", "yes", "on"):
            return True
        if lowered in ("false", "0", "no", "off"):
            return False
    raise ValueError(f"not a boolean: {value!r}")


_COERCERS = {
    DataType.INTEGER: _coerce_int,
    DataType.DOUBLE: float,
    DataType.VARCHAR: str,
    DataType.BINARY: _coerce_binary,
    DataType.BOOLEAN: _coerce_bool,
    DataType.TIMESTAMP: _coerce_int,
}


def sql_affinity(value: Any) -> Optional[DataType]:
    """Infer the :class:`DataType` of a Python value, or ``None`` for null.

    Used by the SQL engine to type literal expressions and by wrappers that
    produce schemaless readings.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.DOUBLE
    if isinstance(value, str):
        return DataType.VARCHAR
    if isinstance(value, (bytes, bytearray)):
        return DataType.BINARY
    raise SchemaError(f"unsupported value type: {type(value).__name__}")
