"""A from-scratch SQL engine.

GSN specifies all stream processing declaratively in SQL (paper, Section 3:
"At the moment GSN supports SQL queries with the full range of operations
allowed by the standard syntax, i.e., joins, subqueries, ordering, grouping,
unions, intersections, etc."). The original delegates to MySQL; this
reproduction implements the engine itself so the middleware is
self-contained:

- :mod:`repro.sqlengine.lexer` — tokenizer
- :mod:`repro.sqlengine.parser` — recursive-descent parser to an AST
- :mod:`repro.sqlengine.planner` — logical plans with join-strategy choice
- :mod:`repro.sqlengine.executor` — pull-based evaluation over
  :class:`~repro.sqlengine.relation.Relation` tables
- :mod:`repro.sqlengine.rewriter` — the ``WRAPPER`` table-name rewriting
  used by stream sources

The top-level :func:`execute` covers the common case of running one query
against a catalog of named relations.
"""

from repro.sqlengine.relation import Relation
from repro.sqlengine.lexer import tokenize
from repro.sqlengine.parser import parse_select
from repro.sqlengine.planner import plan_select
from repro.sqlengine.executor import Catalog, execute, execute_plan
from repro.sqlengine.rewriter import rewrite_table_names, referenced_tables

__all__ = [
    "Relation",
    "Catalog",
    "tokenize",
    "parse_select",
    "plan_select",
    "execute",
    "execute_plan",
    "rewrite_table_names",
    "referenced_tables",
]
