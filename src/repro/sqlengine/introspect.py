"""AST introspection helpers shared by the executor and static analysis.

The executor needs output column names for result relations; the
``repro.analysis`` schema pass needs the same naming rules plus column
extraction so its inferred schemas line up exactly with what the engine
produces at runtime. Keeping both on one implementation guarantees the
analyzer never disagrees with the executor about a column's name.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.sqlengine.ast_nodes import (
    ColumnRef, FunctionCall, Literal, Node, SelectStatement,
)


def expression_name(expr: Node) -> str:
    """The output column name the engine gives an unaliased select item."""
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, FunctionCall):
        if expr.star:
            return f"{expr.name}_star"
        if len(expr.args) == 1 and isinstance(expr.args[0], ColumnRef):
            return f"{expr.name}_{expr.args[0].name}"
        return expr.name
    if isinstance(expr, Literal):
        return "literal"
    return "expr"


def dedupe_columns(names: List[str]) -> List[str]:
    """Disambiguate duplicate output names the way the executor does
    (``a, a`` becomes ``a, a_2``)."""
    seen: Dict[str, int] = {}
    result = []
    for name in names:
        if name in seen:
            seen[name] += 1
            result.append(f"{name}_{seen[name]}")
        else:
            seen[name] = 1
            result.append(name)
    return result


def expression_columns(node: Node) -> Iterator[ColumnRef]:
    """Column references in an expression tree, excluding those that
    belong to nested subqueries (which resolve in their own scope)."""
    if isinstance(node, ColumnRef):
        yield node
        return
    for child in node.children():
        if isinstance(child, SelectStatement):
            continue
        yield from expression_columns(child)
