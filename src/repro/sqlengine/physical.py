"""Compiled physical operator pipelines.

The logical :class:`~repro.sqlengine.planner.SelectPlan` is interpreted
by :mod:`repro.sqlengine.executor` through per-row environments — a dict
of ``LazyRow`` views per frame, name resolution on every column access.
That is the right fallback for arbitrary SQL, but standing queries (the
descriptor's per-source and output queries, registered client queries)
run the *same* plan thousands of times per second, and the paper calls
out exactly this: "the cost of query compiling increases" with clients.

This module lowers a ``SelectPlan`` once — at deploy time — into a tree
of pull-based physical operators:

    SeqScan / DerivedScan / Filter / NestedLoopJoin / HashJoin /
    Project / HashAggregate (GROUP BY) / Distinct / SetOp / Sort /
    Limit

with every expression compiled to a *positional* closure over flat row
tuples: column references become tuple indexes resolved at compile time,
so per-trigger execution does zero name resolution, zero environment
allocation, and zero plan-tree dispatch.

Compilation is total-or-nothing: :func:`try_compile` returns ``None``
for any shape whose exact legacy semantics the pipeline does not
replicate (subqueries anywhere, ``SELECT *`` under aggregation,
unresolvable or ambiguous columns, …). Callers then fall back to
:func:`~repro.sqlengine.executor.execute_plan`, which also re-raises the
proper error at query time — the compiled path never changes observable
behaviour, it only removes interpretation overhead. The differential
property tests assert ``compiled == interpreted`` row for row.

Reentrancy: a compiled pipeline holds no per-execution state — stage
closures pass rows through locals — so one pipeline may execute
concurrently from threaded sensor pools. The per-operator ``last_rows``
counters exist only for EXPLAIN ANALYZE and are benignly racy.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import SQLExecutionError
from repro.sqlengine.ast_nodes import (
    AGGREGATE_FUNCTIONS, BetweenExpr, BinaryOp, CaseExpr, CastExpr,
    ColumnRef, FunctionCall, InExpr, IsNullExpr, LikeExpr, Literal, Node,
    Star, UnaryOp,
)
from repro.sqlengine.compiler import has_subquery
from repro.sqlengine.executor import (
    Catalog, _apply_set_op, _arith, _cast, _compare, _hashable,
    _like_to_regex, _Reversed, _sort_key, _truthy,
)
from repro.sqlengine.functions import (
    SCALAR_FUNCTIONS, call_aggregate, call_scalar,
)
from repro.sqlengine.introspect import dedupe_columns, expression_name
from repro.sqlengine.planner import (
    HashJoinPlan, NestedLoopJoinPlan, Plan, ScanPlan, SelectPlan,
    SubqueryScanPlan,
)
from repro.sqlengine.relation import Relation

#: Compiled row expression: flat tuple -> value.
RowFn = Callable[[Tuple[Any, ...]], Any]
#: Compiled group expression: list of flat tuples -> value.
GroupFn = Callable[[List[Tuple[Any, ...]]], Any]


class Unsupported(Exception):
    """Internal: the plan shape is outside the compiled pipeline's scope.

    Never escapes :func:`try_compile`; the reason string is kept on the
    plan object for EXPLAIN to report why execution stays legacy.
    """


class SchemaMismatch(Exception):
    """A scanned relation no longer matches the compiled layout."""


# --------------------------------------------------------------------------
# Compile-time row layout
# --------------------------------------------------------------------------


class _Layout:
    """The flat-tuple shape of one source's rows at a pipeline point.

    ``segments`` maps each table binding to ``(offset, columns)``; a row
    is the concatenation of the bindings' column values in segment
    order. Name resolution happens *here, once, at compile time* —
    mirroring ``Env.lookup``'s qualified/unqualified/ambiguous rules —
    instead of per row at execution time. Shapes the runtime resolver
    would reject (unknown column, ambiguous name) compile to
    :class:`Unsupported` so the legacy interpreter keeps raising the
    identical error at query time.
    """

    __slots__ = ("order", "segments", "width")

    def __init__(self) -> None:
        self.order: List[str] = []
        self.segments: Dict[str, Tuple[int, Tuple[str, ...]]] = {}
        self.width = 0

    def add(self, binding: str, columns: Sequence[str]) -> None:
        cols = tuple(columns)
        self.order.append(binding)
        self.segments[binding] = (self.width, cols)
        self.width += len(cols)

    @classmethod
    def merge(cls, left: "_Layout", right: "_Layout") -> "_Layout":
        merged = cls()
        for binding in left.order:
            offset, cols = left.segments[binding]
            merged.add(binding, cols)
        for binding in right.order:
            offset, cols = right.segments[binding]
            merged.add(binding, cols)
        return merged

    def position(self, name: str, table: Optional[str]) -> int:
        if table is not None:
            segment = self.segments.get(table)
            if segment is None:
                raise Unsupported(f"unknown table or alias {table!r}")
            offset, cols = segment
            try:
                return offset + cols.index(name)
            except ValueError:
                raise Unsupported(
                    f"table {table!r} has no column {name!r}"
                ) from None
        hits = []
        for binding in self.order:
            offset, cols = self.segments[binding]
            if name in cols:
                hits.append(offset + cols.index(name))
        if len(hits) > 1:
            raise Unsupported(f"ambiguous column {name!r}")
        if not hits:
            raise Unsupported(f"unknown column {name!r}")
        return hits[0]


# --------------------------------------------------------------------------
# Positional expression compilation (row context)
# --------------------------------------------------------------------------


def _compile_row(node: Node, layout: _Layout,
                 like_cache: Dict[str, "re.Pattern[str]"]) -> RowFn:
    """Compile an expression into a closure over one flat row tuple.

    Semantics mirror ``_Executor.eval`` / the ``(executor, env)``
    compiler exactly — same three-valued logic, same short-circuiting,
    same error types — with column references pre-resolved to indexes.
    """
    if isinstance(node, Literal):
        value = node.value
        return lambda row: value

    if isinstance(node, ColumnRef):
        position = layout.position(node.name, node.table)
        return lambda row: row[position]

    if isinstance(node, UnaryOp):
        operand = _compile_row(node.operand, layout, like_cache)
        if node.op == "not":
            def negate(row):
                value = operand(row)
                if value is None:
                    return None
                return not _truthy(value)
            return negate
        op = node.op

        def signed(row):
            value = operand(row)
            if value is None:
                return None
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                raise SQLExecutionError(f"unary {op} needs a number")
            return -value if op == "-" else value
        return signed

    if isinstance(node, BinaryOp):
        return _compile_row_binary(node, layout, like_cache)

    if isinstance(node, FunctionCall):
        if node.name in AGGREGATE_FUNCTIONS:
            raise Unsupported(
                f"aggregate {node.name}() in row context"
            )
        args = [_compile_row(arg, layout, like_cache)
                for arg in node.args]
        name = node.name
        func = SCALAR_FUNCTIONS.get(name)
        if func is None:
            return lambda row: call_scalar(
                name, [arg(row) for arg in args])

        def scalar_call(row):
            try:
                return func(*(arg(row) for arg in args))
            except SQLExecutionError:
                raise
            except Exception as exc:
                raise SQLExecutionError(f"{name}() failed: {exc}") from exc
        return scalar_call

    if isinstance(node, InExpr):
        if node.subquery is not None:
            raise Unsupported("IN (subquery)")
        operand = _compile_row(node.operand, layout, like_cache)
        options = [_compile_row(option, layout, like_cache)
                   for option in node.options or ()]
        negated = node.negated

        def in_list(row):
            value = operand(row)
            if value is None:
                return None
            saw_null = False
            for option in options:
                candidate = option(row)
                if candidate is None:
                    saw_null = True
                elif _compare("=", value, candidate):
                    return not negated
            if saw_null:
                return None
            return negated
        return in_list

    if isinstance(node, BetweenExpr):
        operand = _compile_row(node.operand, layout, like_cache)
        low = _compile_row(node.low, layout, like_cache)
        high = _compile_row(node.high, layout, like_cache)
        negated = node.negated

        def between(row):
            value = operand(row)
            lower_ok = _compare(">=", value, low(row))
            upper_ok = _compare("<=", value, high(row))
            if lower_ok is False or upper_ok is False:
                result = False
            elif lower_ok is None or upper_ok is None:
                return None
            else:
                result = True
            return not result if negated else result
        return between

    if isinstance(node, LikeExpr):
        operand = _compile_row(node.operand, layout, like_cache)
        pattern = _compile_row(node.pattern, layout, like_cache)
        negated = node.negated

        def like(row):
            value = operand(row)
            text = pattern(row)
            if value is None or text is None:
                return None
            regex = like_cache.get(text)
            if regex is None:
                regex = _like_to_regex(str(text))
                like_cache[text] = regex
            result = bool(regex.match(str(value)))
            return not result if negated else result
        return like

    if isinstance(node, IsNullExpr):
        operand = _compile_row(node.operand, layout, like_cache)
        negated = node.negated

        def is_null(row):
            result = operand(row) is None
            return not result if negated else result
        return is_null

    if isinstance(node, CastExpr):
        operand = _compile_row(node.operand, layout, like_cache)
        target = node.target
        return lambda row: _cast(operand(row), target)

    if isinstance(node, CaseExpr):
        branches = [
            (_compile_row(condition, layout, like_cache),
             _compile_row(result, layout, like_cache))
            for condition, result in node.branches
        ]
        default = (_compile_row(node.default, layout, like_cache)
                   if node.default is not None else None)
        if node.operand is not None:
            operand = _compile_row(node.operand, layout, like_cache)

            def simple_case(row):
                subject = operand(row)
                for match, result in branches:
                    if _compare("=", subject, match(row)):
                        return result(row)
                return default(row) if default is not None else None
            return simple_case

        def searched_case(row):
            for condition, result in branches:
                if _truthy(condition(row)):
                    return result(row)
            return default(row) if default is not None else None
        return searched_case

    raise Unsupported(f"cannot compile {type(node).__name__}")


def _compile_row_binary(node: BinaryOp, layout: _Layout,
                        like_cache: Dict[str, "re.Pattern[str]"]) -> RowFn:
    op = node.op
    left = _compile_row(node.left, layout, like_cache)
    right = _compile_row(node.right, layout, like_cache)

    if op == "and":
        def logical_and(row):
            lhs = left(row)
            if lhs is not None and not _truthy(lhs):
                return False
            rhs = right(row)
            if rhs is not None and not _truthy(rhs):
                return False
            if lhs is None or rhs is None:
                return None
            return True
        return logical_and

    if op == "or":
        def logical_or(row):
            lhs = left(row)
            if lhs is not None and _truthy(lhs):
                return True
            rhs = right(row)
            if rhs is not None and _truthy(rhs):
                return True
            if lhs is None or rhs is None:
                return None
            return False
        return logical_or

    if op in ("=", "<>", "<", "<=", ">", ">="):
        return lambda row: _compare(op, left(row), right(row))
    return lambda row: _arith(op, left(row), right(row))


# --------------------------------------------------------------------------
# Positional expression compilation (group context)
# --------------------------------------------------------------------------


def _compile_group(node: Node, layout: _Layout,
                   like_cache: Dict[str, "re.Pattern[str]"]) -> GroupFn:
    """Compile a GROUP BY-context expression over a list of row tuples.

    Mirrors ``_Executor.eval_group``: aggregates fold their argument
    over the group, plain column references read the group's first row,
    row predicates evaluate against the first row, and binary operators
    evaluate both sides eagerly (``eval_group`` does not short-circuit).
    """
    if isinstance(node, FunctionCall) and node.name in AGGREGATE_FUNCTIONS:
        name = node.name
        if node.star:
            return lambda group: call_aggregate(name, [], star=True,
                                                row_count=len(group))
        if len(node.args) != 1:
            raise Unsupported(f"aggregate {name}() arity")
        arg = _compile_row(node.args[0], layout, like_cache)
        distinct = node.distinct
        return lambda group: call_aggregate(
            name, [arg(row) for row in group], distinct=distinct)

    if isinstance(node, Literal):
        value = node.value
        return lambda group: value

    if isinstance(node, ColumnRef):
        position = layout.position(node.name, node.table)
        return lambda group: group[0][position] if group else None

    if isinstance(node, UnaryOp):
        operand = _compile_group(node.operand, layout, like_cache)
        op = node.op
        if op == "not":
            def negate(group):
                value = operand(group)
                return None if value is None else not _truthy(value)
            return negate

        def signed(group):
            value = operand(group)
            if value is None:
                return None
            return -value if op == "-" else value
        return signed

    if isinstance(node, BinaryOp):
        op = node.op
        left = _compile_group(node.left, layout, like_cache)
        right = _compile_group(node.right, layout, like_cache)

        def binary(group):
            lhs = left(group)
            rhs = right(group)
            if op == "and":
                if lhs is not None and not _truthy(lhs):
                    return False
                if rhs is not None and not _truthy(rhs):
                    return False
                if lhs is None or rhs is None:
                    return None
                return True
            if op == "or":
                if (lhs is not None and _truthy(lhs)) \
                        or (rhs is not None and _truthy(rhs)):
                    return True
                if lhs is None or rhs is None:
                    return None
                return False
            if op in ("=", "<>", "<", "<=", ">", ">="):
                return _compare(op, lhs, rhs)
            return _arith(op, lhs, rhs)
        return binary

    if isinstance(node, FunctionCall):
        args = [_compile_group(arg, layout, like_cache)
                for arg in node.args]
        name = node.name
        return lambda group: call_scalar(
            name, [arg(group) for arg in args])

    if isinstance(node, CastExpr):
        operand = _compile_group(node.operand, layout, like_cache)
        target = node.target
        return lambda group: _cast(operand(group), target)

    if isinstance(node, CaseExpr):
        branches = [
            (_compile_group(condition, layout, like_cache),
             _compile_group(result, layout, like_cache))
            for condition, result in node.branches
        ]
        default = (_compile_group(node.default, layout, like_cache)
                   if node.default is not None else None)
        if node.operand is not None:
            operand = _compile_group(node.operand, layout, like_cache)

            def simple_case(group):
                subject = operand(group)
                for match, result in branches:
                    if _compare("=", subject, match(group)):
                        return result(group)
                return default(group) if default is not None else None
            return simple_case

        def searched_case(group):
            for condition, result in branches:
                if _truthy(condition(group)):
                    return result(group)
            return default(group) if default is not None else None
        return searched_case

    if isinstance(node, (InExpr, BetweenExpr, LikeExpr, IsNullExpr)):
        if isinstance(node, InExpr) and node.subquery is not None:
            raise Unsupported("IN (subquery)")
        row_fn = _compile_row(node, layout, like_cache)

        def first_row(group):
            if not group:
                raise SQLExecutionError(
                    "cannot evaluate row predicate over an empty group"
                )
            return row_fn(group[0])
        return first_row

    raise Unsupported(
        f"cannot compile {type(node).__name__} in GROUP BY context"
    )


# --------------------------------------------------------------------------
# Physical operators (explain tree + per-stage closures)
# --------------------------------------------------------------------------


class PhysOp:
    """One node of the compiled operator tree.

    The tree exists for EXPLAIN: execution runs through the closure
    chain compiled alongside it. ``last_rows`` is the row count the
    operator produced on its most recent execution (observability only;
    concurrent executions may interleave writes harmlessly).
    """

    __slots__ = ("name", "detail", "children", "last_rows")

    def __init__(self, name: str, detail: str = "",
                 children: Sequence["PhysOp"] = ()) -> None:
        self.name = name
        self.detail = detail
        self.children = list(children)
        self.last_rows: Optional[int] = None

    def describe(self) -> str:
        return f"{self.name} {self.detail}".strip()

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


#: A source stage: catalog -> list of flat row tuples.
_SourceFn = Callable[[Catalog], List[Tuple[Any, ...]]]


class CompiledPipeline:
    """A deploy-time-compiled, re-executable physical plan.

    ``execute(catalog)`` is the entire per-trigger cost: no parsing, no
    planning, no name resolution — just the operator closures over the
    catalog's current relations. ``signature`` records the scanned
    tables' column layouts; :func:`run_plan` recompiles when a scan's
    relation changes shape (raising :class:`SchemaMismatch` internally).
    """

    __slots__ = ("root", "columns", "signature", "_run")

    def __init__(self, root: PhysOp, columns: Sequence[str],
                 signature: Tuple[Tuple[str, Tuple[str, ...]], ...],
                 run: Callable[[Catalog], Relation]) -> None:
        self.root = root
        self.columns = tuple(columns)
        self.signature = signature
        self._run = run

    def execute(self, catalog: Catalog) -> Relation:
        return self._run(catalog)

    def explain(self) -> str:
        """Indented physical-operator tree with last-run row counts."""
        lines: List[str] = []

        def emit(op: PhysOp, depth: int) -> None:
            note = "" if op.last_rows is None else f"  [rows={op.last_rows}]"
            lines.append("  " * depth + op.describe() + note)
            for child in op.children:
                emit(child, depth + 1)
        emit(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<CompiledPipeline columns={list(self.columns)}>"


class _Compiler:
    """Lowers one SelectPlan; collects the scan signature as it goes."""

    def __init__(self, schemas: Dict[str, Tuple[str, ...]]) -> None:
        self.schemas = {name.lower(): tuple(cols)
                        for name, cols in schemas.items()}
        self.signature: List[Tuple[str, Tuple[str, ...]]] = []
        self.like_cache: Dict[str, "re.Pattern[str]"] = {}

    # -- sources -----------------------------------------------------------

    def compile_source(self, plan: Plan) -> Tuple[_SourceFn, _Layout, PhysOp]:
        if isinstance(plan, ScanPlan):
            table = plan.table.lower()
            columns = self.schemas.get(table)
            if columns is None:
                raise Unsupported(f"no schema for table {plan.table!r}")
            self.signature.append((table, columns))
            layout = _Layout()
            layout.add(plan.binding, columns)
            op = PhysOp("SeqScan", plan.table if plan.binding == plan.table
                        else f"{plan.table} AS {plan.binding}")

            def scan(catalog: Catalog) -> List[Tuple[Any, ...]]:
                relation = catalog.get(table)
                if relation.columns != columns:
                    raise SchemaMismatch(table)
                rows = relation.rows
                op.last_rows = len(rows)
                return rows if isinstance(rows, list) else list(rows)
            return scan, layout, op

        if isinstance(plan, SubqueryScanPlan):
            inner = self.compile_select(plan.plan)
            layout = _Layout()
            layout.add(plan.binding, inner.columns)
            op = PhysOp("DerivedScan", plan.binding,
                        children=[inner.root])

            def derived(catalog: Catalog) -> List[Tuple[Any, ...]]:
                rows = inner.execute(catalog).rows
                op.last_rows = len(rows)
                return rows
            return derived, layout, op

        if isinstance(plan, HashJoinPlan):
            return self._compile_hash_join(plan)

        if isinstance(plan, NestedLoopJoinPlan):
            return self._compile_nested_loop(plan)

        raise Unsupported(f"unknown plan node {type(plan).__name__}")

    def _compile_hash_join(self, plan: HashJoinPlan
                           ) -> Tuple[_SourceFn, _Layout, PhysOp]:
        left_fn, left_layout, left_op = self.compile_source(plan.left)
        right_fn, right_layout, right_op = self.compile_source(plan.right)
        layout = _Layout.merge(left_layout, right_layout)
        left_keys = [self._row(k, left_layout) for k in plan.left_keys]
        right_keys = [self._row(k, right_layout) for k in plan.right_keys]
        residual = (None if plan.residual is None
                    else self._row(plan.residual, layout))
        left_join = plan.kind == "left"
        pad = (None,) * right_layout.width
        op = PhysOp("HashJoin", f"[{plan.kind}]",
                    children=[left_op, right_op])

        def join(catalog: Catalog) -> List[Tuple[Any, ...]]:
            left_rows = left_fn(catalog)
            right_rows = right_fn(catalog)
            table: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
            for rrow in right_rows:
                key = tuple(_hashable(k(rrow)) for k in right_keys)
                if any(part is None for part in key):
                    continue  # NULL keys never join
                table.setdefault(key, []).append(rrow)
            results: List[Tuple[Any, ...]] = []
            for lrow in left_rows:
                key = tuple(_hashable(k(lrow)) for k in left_keys)
                matches: Sequence[Tuple[Any, ...]] = ()
                if not any(part is None for part in key):
                    matches = table.get(key, ())
                matched = False
                for rrow in matches:
                    merged = lrow + rrow
                    if residual is not None \
                            and not _truthy(residual(merged)):
                        continue
                    matched = True
                    results.append(merged)
                if left_join and not matched:
                    results.append(lrow + pad)
            op.last_rows = len(results)
            return results
        return join, layout, op

    def _compile_nested_loop(self, plan: NestedLoopJoinPlan
                             ) -> Tuple[_SourceFn, _Layout, PhysOp]:
        left_fn, left_layout, left_op = self.compile_source(plan.left)
        right_fn, right_layout, right_op = self.compile_source(plan.right)
        layout = _Layout.merge(left_layout, right_layout)
        condition = (None if plan.condition is None
                     else self._row(plan.condition, layout))
        left_join = plan.kind == "left"
        pad = (None,) * right_layout.width
        op = PhysOp("NestedLoop", f"[{plan.kind}]",
                    children=[left_op, right_op])

        def join(catalog: Catalog) -> List[Tuple[Any, ...]]:
            left_rows = left_fn(catalog)
            right_rows = right_fn(catalog)
            results: List[Tuple[Any, ...]] = []
            for lrow in left_rows:
                matched = False
                for rrow in right_rows:
                    merged = lrow + rrow
                    if condition is not None \
                            and not _truthy(condition(merged)):
                        continue
                    matched = True
                    results.append(merged)
                if left_join and not matched:
                    results.append(lrow + pad)
            op.last_rows = len(results)
            return results
        return join, layout, op

    # -- expression helpers -------------------------------------------------

    def _row(self, node: Node, layout: _Layout) -> RowFn:
        if has_subquery(node):
            raise Unsupported("subquery expression")
        return _compile_row(node, layout, self.like_cache)

    def _group(self, node: Node, layout: _Layout) -> GroupFn:
        if has_subquery(node):
            raise Unsupported("subquery expression")
        return _compile_group(node, layout, self.like_cache)

    # -- the SELECT core ----------------------------------------------------

    def compile_select(self, plan: SelectPlan) -> CompiledPipeline:
        if plan.source is None:
            raise Unsupported("constant-source SELECT")
        source_fn, layout, source_op = self.compile_source(plan.source)
        top_op = source_op

        where = (None if plan.where is None
                 else self._row(plan.where, layout))
        if where is not None:
            top_op = PhysOp("Filter", "", children=[top_op])
        filter_op = top_op if where is not None else None

        columns = self._output_columns(plan, layout)

        if plan.is_aggregate:
            stage, top_op = self._compile_aggregate(plan, layout, top_op)
        else:
            stage, top_op = self._compile_project(plan, layout, top_op)

        distinct_op: Optional[PhysOp] = None
        if plan.distinct:
            distinct_op = PhysOp("Distinct", "", children=[top_op])
            top_op = distinct_op

        set_stages = []
        for op_name, all_flag, right_plan in plan.set_operations:
            right = self.compile_select(right_plan)
            if len(right.columns) != len(columns):
                raise Unsupported("set-operation width mismatch")
            set_op = PhysOp("SetOp",
                            op_name.upper() + (" ALL" if all_flag else ""),
                            children=[top_op, right.root])
            set_stages.append((op_name, all_flag, right, set_op))
            top_op = set_op

        order_keys = None
        sort_op: Optional[PhysOp] = None
        if plan.order_by:
            order_keys = self._compile_order(plan, layout, columns)
            sort_op = PhysOp("Sort", ", ".join(
                ("%s" % expression_name(item.expression))
                + ("" if item.ascending else " DESC")
                for item in plan.order_by), children=[top_op])
            top_op = sort_op

        limit_op: Optional[PhysOp] = None
        if plan.limit is not None or plan.offset is not None:
            bits = []
            if plan.limit is not None:
                bits.append(f"LIMIT {plan.limit}")
            if plan.offset is not None:
                bits.append(f"OFFSET {plan.offset}")
            limit_op = PhysOp("Limit", " ".join(bits), children=[top_op])
            top_op = limit_op

        offset, limit = plan.offset, plan.limit
        out_columns = tuple(columns)

        def run(catalog: Catalog) -> Relation:
            rows = source_fn(catalog)
            if where is not None:
                rows = [row for row in rows if _truthy(where(row))]
                filter_op.last_rows = len(rows)
            out_rows, contexts = stage(rows)
            if distinct_op is not None:
                out_rows, contexts = _distinct_rows(out_rows, contexts)
                distinct_op.last_rows = len(out_rows)
            for op_name, all_flag, right, set_op in set_stages:
                right_rows = right.execute(catalog).rows
                out_rows = _apply_set_op(op_name, all_flag,
                                         out_rows, right_rows)
                contexts = [None] * len(out_rows)
                set_op.last_rows = len(out_rows)
            if order_keys is not None:
                out_rows = _sort_rows(out_rows, contexts, order_keys)
                sort_op.last_rows = len(out_rows)
            if offset is not None:
                out_rows = out_rows[offset:]
            if limit is not None:
                out_rows = out_rows[:limit]
            if limit_op is not None:
                limit_op.last_rows = len(out_rows)
            result = Relation(out_columns)
            result.rows = out_rows
            return result

        return CompiledPipeline(top_op, out_columns,
                                tuple(self.signature), run)

    # -- projection ---------------------------------------------------------

    def _output_columns(self, plan: SelectPlan,
                        layout: _Layout) -> List[str]:
        names: List[str] = []
        for item in plan.items:
            expr = item.expression
            if isinstance(expr, Star):
                if expr.table is not None:
                    if expr.table not in layout.segments:
                        raise Unsupported(f"unknown table in {expr.table}.*")
                    names.extend(layout.segments[expr.table][1])
                else:
                    for binding in layout.order:
                        names.extend(layout.segments[binding][1])
            elif item.alias:
                names.append(item.alias)
            else:
                names.append(expression_name(expr))
        return dedupe_columns(names)

    def _compile_project(self, plan: SelectPlan, layout: _Layout,
                         child: PhysOp):
        """Non-aggregate projection; returns (stage, op). The stage maps
        source rows to (output rows, contexts) where each context is the
        source row itself (ORDER BY may evaluate arbitrary expressions
        against it, exactly like the interpreter's env contexts)."""
        parts: List[Tuple[str, Any, Any]] = []
        for item in plan.items:
            expr = item.expression
            if isinstance(expr, Star):
                bindings = ([expr.table] if expr.table is not None
                            else list(layout.order))
                for binding in bindings:
                    if binding not in layout.segments:
                        raise Unsupported(f"unknown table in {binding}.*")
                    offset, cols = layout.segments[binding]
                    parts.append(("slice", offset, offset + len(cols)))
            else:
                parts.append(("expr", self._row(expr, layout), None))
        op = PhysOp("Project", ", ".join(
            item.alias or expression_name(item.expression)
            for item in plan.items), children=[child])

        # The overwhelmingly common shapes get specialized stages.
        if len(parts) == 1 and parts[0][0] == "slice" \
                and parts[0][1] == 0 and parts[0][2] == layout.width:
            def identity_stage(rows):
                op.last_rows = len(rows)
                return list(rows), rows
            return identity_stage, op

        if all(kind == "expr" for kind, __, __ in parts):
            fns = [fn for __, fn, __ in parts]

            def expr_stage(rows):
                out = [tuple(fn(row) for fn in fns) for row in rows]
                op.last_rows = len(out)
                return out, rows
            return expr_stage, op

        def mixed_stage(rows):
            out = []
            for row in rows:
                values: List[Any] = []
                for kind, a, b in parts:
                    if kind == "slice":
                        values.extend(row[a:b])
                    else:
                        values.append(a(row))
                out.append(tuple(values))
            op.last_rows = len(out)
            return out, rows
        return mixed_stage, op

    def _compile_aggregate(self, plan: SelectPlan, layout: _Layout,
                           child: PhysOp):
        """GROUP BY + HashAggregate (or a single whole-input group)."""
        for item in plan.items:
            if isinstance(item.expression, Star):
                # Legacy raises at query time; stay on the interpreter.
                raise Unsupported("SELECT * with aggregation")
        key_fns = [self._row(expr, layout) for expr in plan.group_by]
        item_fns = [self._group(item.expression, layout)
                    for item in plan.items]
        having = (None if plan.having is None
                  else self._group(plan.having, layout))
        grouped = bool(plan.group_by)
        op = PhysOp("HashAggregate",
                    f"keys={len(key_fns)}" if grouped else "plain",
                    children=[child])

        def stage(rows):
            if grouped:
                groups: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
                for row in rows:
                    key = tuple(_hashable(fn(row)) for fn in key_fns)
                    groups.setdefault(key, []).append(row)
                group_list = list(groups.values())
            else:
                group_list = [rows]  # single group, even when empty
            out_rows: List[Tuple[Any, ...]] = []
            contexts: List[Any] = []
            for group in group_list:
                if having is not None and not _truthy(having(group)):
                    continue
                out_rows.append(tuple(fn(group) for fn in item_fns))
                contexts.append(group)
            op.last_rows = len(out_rows)
            return out_rows, contexts
        return stage, op

    # -- ORDER BY -----------------------------------------------------------

    def _compile_order(self, plan: SelectPlan, layout: _Layout,
                       columns: Sequence[str]):
        """Per-item key closures: (row, context) -> raw sort value."""
        aliases = {item.alias: item.expression
                   for item in plan.items if item.alias}
        column_positions = {name: i for i, name in enumerate(columns)}
        width = len(columns)
        keys = []
        for order_item in plan.order_by:
            expr = order_item.expression
            if isinstance(expr, Literal) and isinstance(expr.value, int) \
                    and not isinstance(expr.value, bool):
                position = expr.value - 1
                if not 0 <= position < width:
                    value = expr.value

                    def out_of_range(row, context, value=value):
                        raise SQLExecutionError(
                            f"ORDER BY position {value} out of range"
                        )
                    keys.append((out_of_range, order_item.ascending))
                    continue
                keys.append((
                    lambda row, context, position=position: row[position],
                    order_item.ascending,
                ))
                continue
            if isinstance(expr, ColumnRef) and expr.table is None:
                if expr.name in column_positions:
                    position = column_positions[expr.name]
                    keys.append((
                        lambda row, context, position=position:
                            row[position],
                        order_item.ascending,
                    ))
                    continue
                if expr.name in aliases:
                    expr = aliases[expr.name]
            if plan.is_aggregate:
                fn = self._group(expr, layout)
            else:
                fn = self._row(expr, layout)

            def contextual(row, context, fn=fn):
                if context is None:
                    raise SQLExecutionError(
                        "ORDER BY over a set operation must reference "
                        "output columns"
                    )
                return fn(context)
            keys.append((contextual, order_item.ascending))
        return keys


def _distinct_rows(rows: List[Tuple[Any, ...]], contexts: List[Any]):
    seen = set()
    out_rows = []
    out_contexts = []
    for row, context in zip(rows, contexts):
        key = tuple(_hashable(value) for value in row)
        if key in seen:
            continue
        seen.add(key)
        out_rows.append(row)
        out_contexts.append(context)
    return out_rows, out_contexts


def _sort_rows(rows: List[Tuple[Any, ...]], contexts: List[Any], keys):
    decorated = []
    for index, (row, context) in enumerate(zip(rows, contexts)):
        key = []
        for fn, ascending in keys:
            value = _sort_key(fn(row, context))
            key.append(value if ascending else _Reversed(value))
        decorated.append((tuple(key), index, row))
    decorated.sort(key=lambda entry: (entry[0], entry[1]))
    return [entry[2] for entry in decorated]


# --------------------------------------------------------------------------
# Public API
# --------------------------------------------------------------------------

_UNSET = object()


def try_compile(plan: SelectPlan,
                schemas: Dict[str, Tuple[str, ...]]
                ) -> Optional[CompiledPipeline]:
    """Lower ``plan`` into a compiled pipeline, or ``None``.

    ``schemas`` maps table name (as scanned) to the exact column tuple
    its catalog relation will carry at execution time. ``None`` means
    the shape is out of scope and the caller must keep interpreting —
    which also preserves the interpreter's exact query-time errors for
    invalid queries. The refusal reason is recorded on the plan as
    ``_phys_reason`` for EXPLAIN.
    """
    try:
        pipeline = _Compiler(schemas).compile_select(plan)
    except Unsupported as exc:
        plan._phys_reason = str(exc)  # type: ignore[attr-defined]
        return None
    plan._phys_reason = None  # type: ignore[attr-defined]
    return pipeline


def catalog_schemas(plan: SelectPlan,
                    catalog: Catalog) -> Optional[Dict[str, Tuple[str, ...]]]:
    """The scanned tables' current column layouts, or ``None`` when a
    table is missing (the interpreter raises its unknown-table error)."""
    schemas: Dict[str, Tuple[str, ...]] = {}
    for node in plan.walk():
        if isinstance(node, ScanPlan):
            if node.table not in catalog:
                return None
            schemas[node.table.lower()] = catalog.get(node.table).columns
    return schemas


def run_plan(plan: SelectPlan, catalog: Catalog) -> Tuple[Relation, bool]:
    """Execute ``plan``, compiled when possible.

    Returns ``(relation, compiled)``. The pipeline is compiled lazily on
    first execution against the catalog's current schemas and cached on
    the plan object (plans are per-deployment / plan-cache objects, so
    this is the "compiled once per descriptor" contract); a schema
    change triggers one recompile, and an unsupported shape falls back
    to the interpreter until the schemas change (the failure is cached
    keyed on the schemas it was observed against, so long-lived
    plan-cache entries recover when a table appears or widens).
    """
    from repro.sqlengine.executor import execute_plan

    pipeline = getattr(plan, "_phys", None)
    if pipeline is not None:
        try:
            return pipeline.execute(catalog), True
        except SchemaMismatch:
            pipeline = None
    schemas = catalog_schemas(plan, catalog)
    if schemas is None:
        return execute_plan(plan, catalog), False
    if (getattr(plan, "_phys", _UNSET) is None
            and schemas == getattr(plan, "_phys_failed_schemas", _UNSET)):
        return execute_plan(plan, catalog), False
    compiled = _compile_with_schemas(plan, schemas)
    if compiled is not None:
        return compiled.execute(catalog), True
    return execute_plan(plan, catalog), False


def compile_for_catalog(plan: SelectPlan,
                        catalog: Catalog) -> Optional[CompiledPipeline]:
    """Compile ``plan`` against ``catalog``'s current layouts and cache
    the result (or the failure) on the plan object."""
    schemas = catalog_schemas(plan, catalog)
    if schemas is None:
        plan._phys = None  # type: ignore[attr-defined]
        plan._phys_failed = "missing table"  # type: ignore[attr-defined]
        plan._phys_failed_schemas = None  # type: ignore[attr-defined]
        return None
    return _compile_with_schemas(plan, schemas)


def _compile_with_schemas(plan: SelectPlan,
                          schemas: Dict[str, Tuple[str, ...]]
                          ) -> Optional[CompiledPipeline]:
    pipeline = try_compile(plan, schemas)
    plan._phys = pipeline  # type: ignore[attr-defined]
    if pipeline is None:
        plan._phys_failed = (  # type: ignore[attr-defined]
            getattr(plan, "_phys_reason", None) or "unsupported")
        plan._phys_failed_schemas = schemas  # type: ignore[attr-defined]
    else:
        plan._phys_failed = None  # type: ignore[attr-defined]
        plan._phys_failed_schemas = None  # type: ignore[attr-defined]
    return pipeline


def pipeline_of(plan: SelectPlan) -> Optional[CompiledPipeline]:
    """The pipeline cached on ``plan`` by :func:`run_plan`, if any."""
    return getattr(plan, "_phys", None)
