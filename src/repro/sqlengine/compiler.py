"""Expression compilation.

The tree-walking evaluator re-dispatches on node types for every row.
This module compiles an expression tree once into nested Python closures
— each node becomes one function call instead of an ``isinstance``
ladder — and the executor caches the closures on the (plan-cached) plan
objects, so standing queries pay compilation once, ever.

Compiled functions take ``(executor, env)``: the executor parameter
keeps closures free of per-execution state, which is what makes them
cacheable on plans. Nodes that embed subqueries fall back to the
interpreter (they need the executor's planning machinery anyway).
"""

from __future__ import annotations

from typing import Any, Callable, TYPE_CHECKING

from repro.sqlengine.ast_nodes import (
    AGGREGATE_FUNCTIONS, BetweenExpr, BinaryOp, CaseExpr, CastExpr,
    ColumnRef, ExistsExpr, FunctionCall, InExpr, IsNullExpr, LikeExpr,
    Literal, Node, ScalarSubquery, SelectStatement, UnaryOp,
)
from repro.sqlengine.functions import SCALAR_FUNCTIONS, call_scalar

if TYPE_CHECKING:
    from repro.sqlengine.executor import Env, _Executor

Compiled = Callable[["_Executor", "Env"], Any]


def has_subquery(node: Node) -> bool:
    """Whether the tree embeds a subquery (forces interpreter fallback)."""
    return any(isinstance(child, SelectStatement) for child in node.walk())


def compile_expression(node: Node) -> Compiled:
    """Compile ``node`` into a closure over ``(executor, env)``.

    The result is semantically identical to ``executor.eval(node, env)``
    (the test suite asserts this equivalence property-style).
    """
    # Late imports: the executor module imports this one.
    from repro.sqlengine import executor as _ex

    if isinstance(node, Literal):
        value = node.value
        return lambda ex, env: value

    if isinstance(node, ColumnRef):
        name, table = node.name, node.table
        return lambda ex, env: env.lookup(name, table)

    if isinstance(node, UnaryOp):
        operand = compile_expression(node.operand)
        if node.op == "not":
            def negate(ex, env):
                value = operand(ex, env)
                if value is None:
                    return None
                return not _ex._truthy(value)
            return negate
        if node.op == "-":
            def minus(ex, env):
                value = operand(ex, env)
                if value is None:
                    return None
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool):
                    raise _ex.SQLExecutionError("unary - needs a number")
                return -value
            return minus

        def plus(ex, env):
            value = operand(ex, env)
            if value is None:
                return None
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                raise _ex.SQLExecutionError("unary + needs a number")
            return value
        return plus

    if isinstance(node, BinaryOp):
        return _compile_binary(node)

    if isinstance(node, FunctionCall):
        if node.name in AGGREGATE_FUNCTIONS:
            # Aggregates are illegal in row context; preserve the
            # interpreter's error by deferring to it.
            return lambda ex, env: ex.eval(node, env)
        args = [compile_expression(arg) for arg in node.args]
        func = SCALAR_FUNCTIONS.get(node.name)
        if func is None:
            name = node.name
            return lambda ex, env: call_scalar(
                name, [arg(ex, env) for arg in args])

        name = node.name

        def scalar_call(ex, env):
            try:
                return func(*(arg(ex, env) for arg in args))
            except _ex.SQLExecutionError:
                raise
            except Exception as exc:
                raise _ex.SQLExecutionError(
                    f"{name}() failed: {exc}") from exc
        return scalar_call

    if isinstance(node, InExpr):
        if node.subquery is not None:
            return lambda ex, env: ex.eval(node, env)
        operand = compile_expression(node.operand)
        options = [compile_expression(option)
                   for option in node.options or ()]
        negated = node.negated

        def in_list(ex, env):
            value = operand(ex, env)
            if value is None:
                return None
            saw_null = False
            for option in options:
                candidate = option(ex, env)
                if candidate is None:
                    saw_null = True
                elif _ex._compare("=", value, candidate):
                    return not negated
            if saw_null:
                return None
            return negated
        return in_list

    if isinstance(node, BetweenExpr):
        operand = compile_expression(node.operand)
        low = compile_expression(node.low)
        high = compile_expression(node.high)
        negated = node.negated

        def between(ex, env):
            value = operand(ex, env)
            lower_ok = _ex._compare(">=", value, low(ex, env))
            upper_ok = _ex._compare("<=", value, high(ex, env))
            if lower_ok is False or upper_ok is False:
                result = False
            elif lower_ok is None or upper_ok is None:
                return None
            else:
                result = True
            return not result if negated else result
        return between

    if isinstance(node, LikeExpr):
        return lambda ex, env: ex._eval_like(node, env)

    if isinstance(node, IsNullExpr):
        operand = compile_expression(node.operand)
        negated = node.negated

        def is_null(ex, env):
            result = operand(ex, env) is None
            return not result if negated else result
        return is_null

    if isinstance(node, (ExistsExpr, ScalarSubquery)):
        return lambda ex, env: ex.eval(node, env)

    if isinstance(node, CaseExpr):
        return _compile_case(node)

    if isinstance(node, CastExpr):
        operand = compile_expression(node.operand)
        target = node.target
        return lambda ex, env: _ex._cast(operand(ex, env), target)

    # Unknown node: preserve the interpreter's error message.
    return lambda ex, env: ex.eval(node, env)


def _compile_binary(node: BinaryOp) -> Compiled:
    from repro.sqlengine import executor as _ex

    op = node.op
    left = compile_expression(node.left)
    right = compile_expression(node.right)

    if op == "and":
        def logical_and(ex, env):
            lhs = left(ex, env)
            if lhs is not None and not _ex._truthy(lhs):
                return False
            rhs = right(ex, env)
            if rhs is not None and not _ex._truthy(rhs):
                return False
            if lhs is None or rhs is None:
                return None
            return True
        return logical_and

    if op == "or":
        def logical_or(ex, env):
            lhs = left(ex, env)
            if lhs is not None and _ex._truthy(lhs):
                return True
            rhs = right(ex, env)
            if rhs is not None and _ex._truthy(rhs):
                return True
            if lhs is None or rhs is None:
                return None
            return False
        return logical_or

    if op in ("=", "<>", "<", "<=", ">", ">="):
        compare = _ex._compare
        return lambda ex, env: compare(op, left(ex, env), right(ex, env))

    arith = __import__(
        "repro.sqlengine.executor", fromlist=["_arith"])._arith
    return lambda ex, env: arith(op, left(ex, env), right(ex, env))


def _compile_case(node: CaseExpr) -> Compiled:
    from repro.sqlengine import executor as _ex

    branches = [
        (compile_expression(condition), compile_expression(result))
        for condition, result in node.branches
    ]
    default = (compile_expression(node.default)
               if node.default is not None else None)

    if node.operand is not None:
        operand = compile_expression(node.operand)

        def simple_case(ex, env):
            subject = operand(ex, env)
            for match, result in branches:
                if _ex._compare("=", subject, match(ex, env)):
                    return result(ex, env)
            return default(ex, env) if default is not None else None
        return simple_case

    def searched_case(ex, env):
        for condition, result in branches:
            if _ex._truthy(condition(ex, env)):
                return result(ex, env)
        return default(ex, env) if default is not None else None
    return searched_case
