"""Incremental evaluation of qualifying per-source queries.

The per-source queries of pipeline step 3 are standing queries over a
single window relation. Two common shapes don't need re-execution on
every trigger:

* **identity** — ``select * from wrapper``: the answer *is* the window
  relation, which the incremental pipeline already maintains in place
  (:mod:`repro.streams.materialized`).
* **simple aggregates** — ``select avg(v), count(*) from wrapper
  [where <row predicate>]``: every aggregate in ``count/sum/avg/min/max``
  is maintainable under the window's append/evict deltas with O(1) work
  per element (``min``/``max`` degrade to a rescan only when the current
  extremum is evicted).

:func:`classify` inspects a compiled :class:`SelectPlan` and reports
which shape (if any) applies; :class:`IncrementalAggregateState` is the
running accumulator, fed row deltas by a
:class:`~repro.streams.materialized.WindowRelation`.

Equivalence contract: for every qualifying query the produced relation is
row-for-row identical to executing the plan against a freshly rebuilt
window relation (the property tests assert this). Queries that would
*fail* under the legacy executor (unknown columns, mixed-type sums, …)
must keep failing at query time — accumulators therefore never raise out
of the delta callbacks; they mark themselves unhealthy and the sensor
falls back to the legacy path, which re-raises the legacy error.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import (
    Any, Callable, FrozenSet, List, Optional, Sequence, Tuple, Union,
)

from repro.sqlengine.ast_nodes import (
    ColumnRef, FunctionCall, Node, SelectItem, Star, contains_aggregate,
)
from repro.sqlengine.compiler import compile_expression, has_subquery
from repro.sqlengine.executor import Catalog, Env, LazyRow, _Executor, _truthy
from repro.sqlengine.introspect import (
    dedupe_columns, expression_columns, expression_name,
)
from repro.sqlengine.planner import (
    HashJoinPlan, NestedLoopJoinPlan, ScanPlan, SelectPlan,
    SubqueryScanPlan,
)
from repro.sqlengine.relation import Relation
from repro.streams.materialized import RowListener, WindowRelation

logger = logging.getLogger("repro.sqlengine.incremental")

#: Aggregates maintainable under append/evict deltas.
INCREMENTAL_AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})

# -- ineligibility reason taxonomy ------------------------------------------
#
# Stable strings shared by this runtime classifier and the deploy-time
# plan pass (``repro.analysis.planpass``): keeping them in one place is
# what makes the static verdict and the runtime attachment agree by
# construction. Each names the *first* disqualifying feature found; the
# set doubles as the worklist for extending delta maintenance.

REASON_SET_OPERATION = "set-operation"
REASON_GROUP_BY = "group-by"
REASON_HAVING = "having"
REASON_ORDER_BY = "order-by"
REASON_DISTINCT = "distinct"
REASON_LIMIT_OFFSET = "limit-offset"
REASON_JOIN = "join-shape"
REASON_SUBQUERY = "subquery"
REASON_CONSTANT_SOURCE = "constant-source"
REASON_WHERE = "where-clause"
REASON_PROJECTION = "projection"
REASON_NON_INCREMENTAL_FUNCTION = "non-incremental-function"
REASON_EXPRESSION_ARGUMENT = "expression-argument"
# Reasons only the deploy-time pass can decide (window + schema context):
REASON_TIME_WINDOW = "time-window"
REASON_UNKNOWN_SCHEMA = "unknown-schema"
REASON_UNKNOWN_COLUMN = "unknown-column"
REASON_TYPE_RISK = "type-risk"
REASON_DISABLED = "incremental-disabled"

#: Every reason string the classifier or the plan pass may report.
INELIGIBILITY_REASONS = frozenset({
    REASON_SET_OPERATION, REASON_GROUP_BY, REASON_HAVING, REASON_ORDER_BY,
    REASON_DISTINCT, REASON_LIMIT_OFFSET, REASON_JOIN, REASON_SUBQUERY,
    REASON_CONSTANT_SOURCE, REASON_WHERE, REASON_PROJECTION,
    REASON_NON_INCREMENTAL_FUNCTION, REASON_EXPRESSION_ARGUMENT,
    REASON_TIME_WINDOW, REASON_UNKNOWN_SCHEMA, REASON_UNKNOWN_COLUMN,
    REASON_TYPE_RISK, REASON_DISABLED,
})


@dataclass(frozen=True)
class IdentityQuery:
    """``select * from wrapper`` — answerable by the window relation."""
    binding: str


@dataclass(frozen=True)
class AggregateItem:
    """One select item of a qualifying aggregate query."""
    kind: str                    # "count_star", "count", "sum", "avg", ...
    column: Optional[str]        # argument column name (None for count(*))


@dataclass(frozen=True)
class AggregateQuery:
    """A qualifying single-table aggregate query."""
    binding: str
    items: Tuple[AggregateItem, ...]
    columns: Tuple[str, ...]               # output column names, deduped
    where: Optional[Node]
    referenced: FrozenSet[str]             # every column the query reads


Classified = Union[IdentityQuery, AggregateQuery]


def classify(plan: SelectPlan) -> Optional[Classified]:
    """Decide whether ``plan`` qualifies for an incremental fast path.

    Returns an :class:`IdentityQuery`, an :class:`AggregateQuery`, or
    ``None`` when only the generic executor can answer it. The check is
    deliberately conservative: any feature with semantics the
    accumulators don't replicate exactly (joins, subqueries, DISTINCT,
    GROUP BY, ORDER BY/LIMIT, expressions inside aggregates) disqualifies
    the plan.
    """
    return classify_with_reason(plan)[0]


def classify_with_reason(plan: SelectPlan
                         ) -> Tuple[Optional[Classified], Optional[str]]:
    """:func:`classify` plus the taxonomy reason when disqualified.

    Returns ``(classified, None)`` for qualifying plans and
    ``(None, reason)`` otherwise, where ``reason`` is one of the
    ``REASON_*`` constants naming the first disqualifying feature.
    """
    if not isinstance(plan.source, ScanPlan):
        if isinstance(plan.source, (NestedLoopJoinPlan, HashJoinPlan)):
            return None, REASON_JOIN
        if isinstance(plan.source, SubqueryScanPlan):
            return None, REASON_SUBQUERY
        return None, REASON_CONSTANT_SOURCE
    if plan.set_operations:
        return None, REASON_SET_OPERATION
    if plan.group_by:
        return None, REASON_GROUP_BY
    if plan.having is not None:
        return None, REASON_HAVING
    if plan.order_by:
        return None, REASON_ORDER_BY
    if plan.distinct:
        return None, REASON_DISTINCT
    if plan.limit is not None or plan.offset is not None:
        return None, REASON_LIMIT_OFFSET
    binding = plan.source.binding

    if not plan.is_aggregate:
        return _classify_identity(plan, binding)
    return _classify_aggregate(plan, binding)


def _classify_identity(plan: SelectPlan, binding: str
                       ) -> Tuple[Optional[IdentityQuery], Optional[str]]:
    if plan.where is not None:
        return None, REASON_WHERE
    if len(plan.items) != 1:
        return None, REASON_PROJECTION
    expr = plan.items[0].expression
    if not isinstance(expr, Star):
        return None, REASON_PROJECTION
    if expr.table is not None and expr.table != binding:
        return None, REASON_PROJECTION
    return IdentityQuery(binding), None


def _classify_aggregate(plan: SelectPlan, binding: str
                        ) -> Tuple[Optional[AggregateQuery], Optional[str]]:
    referenced: List[str] = []
    items: List[AggregateItem] = []
    for item in plan.items:
        parsed, reason = _classify_item(item, binding)
        if parsed is None:
            return None, reason
        items.append(parsed)
        if parsed.column is not None:
            referenced.append(parsed.column)

    if plan.where is not None:
        if has_subquery(plan.where):
            return None, REASON_SUBQUERY
        if contains_aggregate(plan.where):
            return None, REASON_WHERE
        for ref in expression_columns(plan.where):
            if ref.table is not None and ref.table != binding:
                return None, REASON_WHERE
            referenced.append(ref.name)

    columns = dedupe_columns([
        item.alias or expression_name(item.expression)
        for item in plan.items
    ])
    return AggregateQuery(
        binding=binding,
        items=tuple(items),
        columns=tuple(columns),
        where=plan.where,
        referenced=frozenset(referenced),
    ), None


def _classify_item(item: SelectItem, binding: str
                   ) -> Tuple[Optional[AggregateItem], Optional[str]]:
    expr = item.expression
    if not isinstance(expr, FunctionCall):
        return None, REASON_PROJECTION
    if expr.distinct:
        return None, REASON_DISTINCT
    if expr.name not in INCREMENTAL_AGGREGATES:
        return None, REASON_NON_INCREMENTAL_FUNCTION
    if expr.star:
        # Only count(*) is legal SQL; anything else must keep raising
        # through the generic path.
        if expr.name != "count":
            return None, REASON_EXPRESSION_ARGUMENT
        return AggregateItem("count_star", None), None
    if len(expr.args) != 1:
        return None, REASON_EXPRESSION_ARGUMENT
    arg = expr.args[0]
    if not isinstance(arg, ColumnRef):
        return None, REASON_EXPRESSION_ARGUMENT
    if arg.table is not None and arg.table != binding:
        return None, REASON_EXPRESSION_ARGUMENT
    return AggregateItem(expr.name, arg.name), None


# --------------------------------------------------------------------------
# Running accumulators
# --------------------------------------------------------------------------


class _ItemState:
    """Mutable accumulator for one :class:`AggregateItem`."""

    __slots__ = ("kind", "position", "nonnull", "total", "extremum", "dirty")

    def __init__(self, kind: str, position: Optional[int]) -> None:
        self.kind = kind
        self.position = position          # column position in the relation
        self.nonnull = 0                  # non-null inputs currently included
        self.total: Any = 0               # running sum (sum/avg)
        self.extremum: Any = None         # current min/max
        self.dirty = False                # extremum evicted: rescan needed


class IncrementalAggregateState(RowListener):
    """Maintains one qualifying aggregate query under window deltas.

    Attached as a listener to the source's :class:`WindowRelation`; all
    callbacks run inside the owning SourceRuntime's lock, so no locking
    happens here. If any delta update fails (mixed-type arithmetic, a
    predicate raising, …) the state poisons itself (``healthy = False``)
    and stays poisoned: the sensor then routes the query through the
    legacy executor, which surfaces the same error at query time exactly
    like the non-incremental pipeline would.
    """

    def __init__(self, spec: AggregateQuery,
                 relation: WindowRelation,
                 label: str = "",
                 on_poison: Optional[Callable[[BaseException], None]] = None
                 ) -> None:
        self.spec = spec
        self.relation = relation
        self.healthy = True
        self.label = label                # query text, for the poison log
        self._on_poison = on_poison
        self.poison_cause: Optional[BaseException] = None
        self.updates = 0                  # delta applications (observability)
        self._included = 0                # rows passing WHERE
        self._binding = spec.binding
        self._index = relation._index
        # WHERE is compiled once; LIKE needs a live executor for its
        # pattern cache, hence the private throwaway instance.
        self._executor = _Executor(Catalog())
        self._where = (compile_expression(spec.where)
                       if spec.where is not None else None)
        self._items = [
            _ItemState(item.kind,
                       None if item.column is None
                       else self._index[item.column])
            for item in spec.items
        ]
        self.rows_reset(list(relation.rows))

    # -- RowListener protocol ----------------------------------------------

    def row_appended(self, row: Tuple[Any, ...]) -> None:
        if not self.healthy:
            return
        try:
            if self._passes(row):
                self._include(row)
            self.updates += 1
        except Exception as exc:
            self._poison(exc)

    def row_evicted(self, row: Tuple[Any, ...]) -> None:
        if not self.healthy:
            return
        try:
            if self._passes(row):
                self._exclude(row)
            self.updates += 1
        except Exception as exc:
            self._poison(exc)

    def rows_reset(self, rows: Sequence[Tuple[Any, ...]]) -> None:
        if not self.healthy:
            return
        try:
            self._included = 0
            for state in self._items:
                state.nonnull = 0
                state.total = 0
                state.extremum = None
                state.dirty = False
            for row in rows:
                if self._passes(row):
                    self._include(row)
            self.updates += 1
        except Exception as exc:
            self._poison(exc)

    def _poison(self, exc: BaseException) -> None:
        """Flip to the legacy path, loudly.

        The fallback itself is by design (the legacy executor re-raises
        the real error at query time), but it must be *observable*: the
        triggering query is logged exactly once per accumulator and the
        owner's ``fastpath_poisoned_total`` counter is bumped through
        ``on_poison`` — a silently swallowed poisoning reads as "the
        optimization is on" while every query runs the slow path.
        """
        if not self.healthy:
            return
        self.healthy = False
        self.poison_cause = exc
        logger.warning(
            "incremental accumulator poisoned; falling back to the legacy "
            "executor for %s (%s: %s)",
            self.label or "<unlabeled query>", type(exc).__name__, exc,
        )
        if self._on_poison is not None:
            try:
                self._on_poison(exc)
            except Exception:
                # The counter callback must never mask the original
                # poisoning (which is already logged above).
                logger.exception("on_poison callback failed")

    # -- delta application --------------------------------------------------

    def _passes(self, row: Tuple[Any, ...]) -> bool:
        if self._where is None:
            return True
        env = Env.root({self._binding: LazyRow(self._index, row)})
        return _truthy(self._where(self._executor, env))

    def _include(self, row: Tuple[Any, ...]) -> None:
        self._included += 1
        for state in self._items:
            if state.kind == "count_star":
                continue
            value = row[state.position]
            if value is None:
                continue
            state.nonnull += 1
            if state.kind in ("sum", "avg"):
                # Always fold into the 0-seeded total: sum() over
                # non-numeric values must raise exactly like the legacy
                # aggregate does.
                state.total = state.total + value
            elif not state.dirty:
                if state.nonnull == 1:
                    state.extremum = value
                elif state.kind == "min":
                    if value < state.extremum:
                        state.extremum = value
                elif value > state.extremum:
                    state.extremum = value

    def _exclude(self, row: Tuple[Any, ...]) -> None:
        self._included -= 1
        for state in self._items:
            if state.kind == "count_star":
                continue
            value = row[state.position]
            if value is None:
                continue
            state.nonnull -= 1
            if state.kind in ("sum", "avg"):
                state.total = state.total - value if state.nonnull else 0
            elif state.nonnull == 0:
                state.extremum = None
                state.dirty = False
            elif not state.dirty and value == state.extremum:
                # The extremum left the window; only a rescan of the
                # retained rows can find the runner-up.
                state.dirty = True

    # -- result ------------------------------------------------------------

    def snapshot(self) -> Relation:
        """The query's current answer as a single-row relation.

        May raise (a ``min``/``max`` rescan inherits the executor's
        mixed-type comparison errors); callers must treat a raising
        snapshot as poisoning and fall back to the legacy path.
        """
        values: List[Any] = []
        for state in self._items:
            values.append(self._value_of(state))
        return Relation(self.spec.columns, [tuple(values)])

    def _value_of(self, state: _ItemState) -> Any:
        if state.kind == "count_star":
            return self._included
        if state.kind == "count":
            return state.nonnull
        if state.nonnull == 0:
            return None
        if state.kind == "sum":
            return state.total
        if state.kind == "avg":
            return state.total / state.nonnull
        if state.dirty:
            self._rescan(state)
        return state.extremum

    def _rescan(self, state: _ItemState) -> None:
        best: Any = None
        for row in self.relation.rows:
            if not self._passes(row):
                continue
            value = row[state.position]
            if value is None:
                continue
            if best is None:
                best = value
            elif state.kind == "min":
                if value < best:
                    best = value
            elif value > best:
                best = value
        state.extremum = best
        state.dirty = False

    def __repr__(self) -> str:
        return (f"IncrementalAggregateState({self.spec.columns}, "
                f"included={self._included}, healthy={self.healthy})")
