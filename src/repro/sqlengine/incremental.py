"""Incremental evaluation of qualifying per-source queries.

The per-source queries of pipeline step 3 are standing queries over a
single window relation. Two common shapes don't need re-execution on
every trigger:

* **identity** — ``select * from wrapper``: the answer *is* the window
  relation, which the incremental pipeline already maintains in place
  (:mod:`repro.streams.materialized`).
* **simple aggregates** — ``select avg(v), count(*) from wrapper
  [where <row predicate>]``: every aggregate in ``count/sum/avg/min/max``
  is maintainable under the window's append/evict deltas with O(1) work
  per element (``min``/``max`` degrade to a rescan only when the current
  extremum is evicted).

:func:`classify` inspects a compiled :class:`SelectPlan` and reports
which shape (if any) applies; :class:`IncrementalAggregateState` is the
running accumulator, fed row deltas by a
:class:`~repro.streams.materialized.WindowRelation`.

Equivalence contract: for every qualifying query the produced relation is
row-for-row identical to executing the plan against a freshly rebuilt
window relation (the property tests assert this). Queries that would
*fail* under the legacy executor (unknown columns, mixed-type sums, …)
must keep failing at query time — accumulators therefore never raise out
of the delta callbacks; they mark themselves unhealthy and the sensor
falls back to the legacy path, which re-raises the legacy error.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import (
    Any, Callable, FrozenSet, List, Optional, Sequence, Tuple, Union,
)

from repro.sqlengine.ast_nodes import (
    ColumnRef, FunctionCall, Node, SelectItem, Star, contains_aggregate,
)
from repro.sqlengine.compiler import compile_expression, has_subquery
from repro.sqlengine.executor import Catalog, Env, LazyRow, _Executor, _truthy
from repro.sqlengine.introspect import (
    dedupe_columns, expression_columns, expression_name,
)
from repro.sqlengine.planner import ScanPlan, SelectPlan
from repro.sqlengine.relation import Relation
from repro.streams.materialized import RowListener, WindowRelation

logger = logging.getLogger("repro.sqlengine.incremental")

#: Aggregates maintainable under append/evict deltas.
INCREMENTAL_AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})


@dataclass(frozen=True)
class IdentityQuery:
    """``select * from wrapper`` — answerable by the window relation."""
    binding: str


@dataclass(frozen=True)
class AggregateItem:
    """One select item of a qualifying aggregate query."""
    kind: str                    # "count_star", "count", "sum", "avg", ...
    column: Optional[str]        # argument column name (None for count(*))


@dataclass(frozen=True)
class AggregateQuery:
    """A qualifying single-table aggregate query."""
    binding: str
    items: Tuple[AggregateItem, ...]
    columns: Tuple[str, ...]               # output column names, deduped
    where: Optional[Node]
    referenced: FrozenSet[str]             # every column the query reads


Classified = Union[IdentityQuery, AggregateQuery]


def classify(plan: SelectPlan) -> Optional[Classified]:
    """Decide whether ``plan`` qualifies for an incremental fast path.

    Returns an :class:`IdentityQuery`, an :class:`AggregateQuery`, or
    ``None`` when only the generic executor can answer it. The check is
    deliberately conservative: any feature with semantics the
    accumulators don't replicate exactly (joins, subqueries, DISTINCT,
    GROUP BY, ORDER BY/LIMIT, expressions inside aggregates) disqualifies
    the plan.
    """
    if not isinstance(plan.source, ScanPlan):
        return None
    if plan.set_operations or plan.group_by or plan.having is not None \
            or plan.order_by or plan.distinct \
            or plan.limit is not None or plan.offset is not None:
        return None
    binding = plan.source.binding

    if not plan.is_aggregate:
        return _classify_identity(plan, binding)
    return _classify_aggregate(plan, binding)


def _classify_identity(plan: SelectPlan,
                       binding: str) -> Optional[IdentityQuery]:
    if plan.where is not None or len(plan.items) != 1:
        return None
    expr = plan.items[0].expression
    if not isinstance(expr, Star):
        return None
    if expr.table is not None and expr.table != binding:
        return None
    return IdentityQuery(binding)


def _classify_aggregate(plan: SelectPlan,
                        binding: str) -> Optional[AggregateQuery]:
    referenced: List[str] = []
    items: List[AggregateItem] = []
    for item in plan.items:
        parsed = _classify_item(item, binding)
        if parsed is None:
            return None
        items.append(parsed)
        if parsed.column is not None:
            referenced.append(parsed.column)

    if plan.where is not None:
        if has_subquery(plan.where) or contains_aggregate(plan.where):
            return None
        for ref in expression_columns(plan.where):
            if ref.table is not None and ref.table != binding:
                return None
            referenced.append(ref.name)

    columns = dedupe_columns([
        item.alias or expression_name(item.expression)
        for item in plan.items
    ])
    return AggregateQuery(
        binding=binding,
        items=tuple(items),
        columns=tuple(columns),
        where=plan.where,
        referenced=frozenset(referenced),
    )


def _classify_item(item: SelectItem,
                   binding: str) -> Optional[AggregateItem]:
    expr = item.expression
    if not isinstance(expr, FunctionCall) or expr.distinct:
        return None
    if expr.name not in INCREMENTAL_AGGREGATES:
        return None
    if expr.star:
        # Only count(*) is legal SQL; anything else must keep raising
        # through the generic path.
        if expr.name != "count":
            return None
        return AggregateItem("count_star", None)
    if len(expr.args) != 1:
        return None
    arg = expr.args[0]
    if not isinstance(arg, ColumnRef):
        return None
    if arg.table is not None and arg.table != binding:
        return None
    return AggregateItem(expr.name, arg.name)


# --------------------------------------------------------------------------
# Running accumulators
# --------------------------------------------------------------------------


class _ItemState:
    """Mutable accumulator for one :class:`AggregateItem`."""

    __slots__ = ("kind", "position", "nonnull", "total", "extremum", "dirty")

    def __init__(self, kind: str, position: Optional[int]) -> None:
        self.kind = kind
        self.position = position          # column position in the relation
        self.nonnull = 0                  # non-null inputs currently included
        self.total: Any = 0               # running sum (sum/avg)
        self.extremum: Any = None         # current min/max
        self.dirty = False                # extremum evicted: rescan needed


class IncrementalAggregateState(RowListener):
    """Maintains one qualifying aggregate query under window deltas.

    Attached as a listener to the source's :class:`WindowRelation`; all
    callbacks run inside the owning SourceRuntime's lock, so no locking
    happens here. If any delta update fails (mixed-type arithmetic, a
    predicate raising, …) the state poisons itself (``healthy = False``)
    and stays poisoned: the sensor then routes the query through the
    legacy executor, which surfaces the same error at query time exactly
    like the non-incremental pipeline would.
    """

    def __init__(self, spec: AggregateQuery,
                 relation: WindowRelation,
                 label: str = "",
                 on_poison: Optional[Callable[[BaseException], None]] = None
                 ) -> None:
        self.spec = spec
        self.relation = relation
        self.healthy = True
        self.label = label                # query text, for the poison log
        self._on_poison = on_poison
        self.poison_cause: Optional[BaseException] = None
        self.updates = 0                  # delta applications (observability)
        self._included = 0                # rows passing WHERE
        self._binding = spec.binding
        self._index = relation._index
        # WHERE is compiled once; LIKE needs a live executor for its
        # pattern cache, hence the private throwaway instance.
        self._executor = _Executor(Catalog())
        self._where = (compile_expression(spec.where)
                       if spec.where is not None else None)
        self._items = [
            _ItemState(item.kind,
                       None if item.column is None
                       else self._index[item.column])
            for item in spec.items
        ]
        self.rows_reset(list(relation.rows))

    # -- RowListener protocol ----------------------------------------------

    def row_appended(self, row: Tuple[Any, ...]) -> None:
        if not self.healthy:
            return
        try:
            if self._passes(row):
                self._include(row)
            self.updates += 1
        except Exception as exc:
            self._poison(exc)

    def row_evicted(self, row: Tuple[Any, ...]) -> None:
        if not self.healthy:
            return
        try:
            if self._passes(row):
                self._exclude(row)
            self.updates += 1
        except Exception as exc:
            self._poison(exc)

    def rows_reset(self, rows: Sequence[Tuple[Any, ...]]) -> None:
        if not self.healthy:
            return
        try:
            self._included = 0
            for state in self._items:
                state.nonnull = 0
                state.total = 0
                state.extremum = None
                state.dirty = False
            for row in rows:
                if self._passes(row):
                    self._include(row)
            self.updates += 1
        except Exception as exc:
            self._poison(exc)

    def _poison(self, exc: BaseException) -> None:
        """Flip to the legacy path, loudly.

        The fallback itself is by design (the legacy executor re-raises
        the real error at query time), but it must be *observable*: the
        triggering query is logged exactly once per accumulator and the
        owner's ``fastpath_poisoned_total`` counter is bumped through
        ``on_poison`` — a silently swallowed poisoning reads as "the
        optimization is on" while every query runs the slow path.
        """
        if not self.healthy:
            return
        self.healthy = False
        self.poison_cause = exc
        logger.warning(
            "incremental accumulator poisoned; falling back to the legacy "
            "executor for %s (%s: %s)",
            self.label or "<unlabeled query>", type(exc).__name__, exc,
        )
        if self._on_poison is not None:
            try:
                self._on_poison(exc)
            except Exception:
                # The counter callback must never mask the original
                # poisoning (which is already logged above).
                logger.exception("on_poison callback failed")

    # -- delta application --------------------------------------------------

    def _passes(self, row: Tuple[Any, ...]) -> bool:
        if self._where is None:
            return True
        env = Env.root({self._binding: LazyRow(self._index, row)})
        return _truthy(self._where(self._executor, env))

    def _include(self, row: Tuple[Any, ...]) -> None:
        self._included += 1
        for state in self._items:
            if state.kind == "count_star":
                continue
            value = row[state.position]
            if value is None:
                continue
            state.nonnull += 1
            if state.kind in ("sum", "avg"):
                # Always fold into the 0-seeded total: sum() over
                # non-numeric values must raise exactly like the legacy
                # aggregate does.
                state.total = state.total + value
            elif not state.dirty:
                if state.nonnull == 1:
                    state.extremum = value
                elif state.kind == "min":
                    if value < state.extremum:
                        state.extremum = value
                elif value > state.extremum:
                    state.extremum = value

    def _exclude(self, row: Tuple[Any, ...]) -> None:
        self._included -= 1
        for state in self._items:
            if state.kind == "count_star":
                continue
            value = row[state.position]
            if value is None:
                continue
            state.nonnull -= 1
            if state.kind in ("sum", "avg"):
                state.total = state.total - value if state.nonnull else 0
            elif state.nonnull == 0:
                state.extremum = None
                state.dirty = False
            elif not state.dirty and value == state.extremum:
                # The extremum left the window; only a rescan of the
                # retained rows can find the runner-up.
                state.dirty = True

    # -- result ------------------------------------------------------------

    def snapshot(self) -> Relation:
        """The query's current answer as a single-row relation.

        May raise (a ``min``/``max`` rescan inherits the executor's
        mixed-type comparison errors); callers must treat a raising
        snapshot as poisoning and fall back to the legacy path.
        """
        values: List[Any] = []
        for state in self._items:
            values.append(self._value_of(state))
        return Relation(self.spec.columns, [tuple(values)])

    def _value_of(self, state: _ItemState) -> Any:
        if state.kind == "count_star":
            return self._included
        if state.kind == "count":
            return state.nonnull
        if state.nonnull == 0:
            return None
        if state.kind == "sum":
            return state.total
        if state.kind == "avg":
            return state.total / state.nonnull
        if state.dirty:
            self._rescan(state)
        return state.extremum

    def _rescan(self, state: _ItemState) -> None:
        best: Any = None
        for row in self.relation.rows:
            if not self._passes(row):
                continue
            value = row[state.position]
            if value is None:
                continue
            if best is None:
                best = value
            elif state.kind == "min":
                if value < best:
                    best = value
            elif value > best:
                best = value
        state.extremum = best
        state.dirty = False

    def __repr__(self) -> str:
        return (f"IncrementalAggregateState({self.spec.columns}, "
                f"included={self._included}, healthy={self.healthy})")
